"""Table 6: SympleGraph communication breakdown, normalized to Gemini.

Expected shape: total communication below Gemini's for BFS / K-core /
MIS / K-means (dependency messages are one bit per vertex), while
sampling's float-per-vertex dependency payload pushes its total to
around or above Gemini's — the paper's one adverse case.
"""

from __future__ import annotations

import pytest

from _shared import PAPER_ALGORITHMS, PAPER_DATASETS, cached_run, emit
from repro.bench import format_table, geomean


def build_table6():
    rows = []
    cells = {}
    for algo in PAPER_ALGORITHMS:
        for ds in PAPER_DATASETS:
            gem = cached_run("gemini", ds, algo)
            sym = cached_run("symple", ds, algo)
            base = max(gem.total_bytes, 1)
            upd = sym.non_dep_bytes / base
            dep = sym.dep_bytes / base
            total = sym.total_bytes / base
            cells[(algo, ds)] = (upd, dep, total)
            rows.append(
                [algo, ds, f"{upd:.4f}", f"{dep:.4f}", f"{total:.4f}"]
            )
    return rows, cells


@pytest.mark.benchmark(group="table6")
def test_table6_communication_breakdown(benchmark):
    rows, cells = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    totals = [t for (_, _, t) in cells.values()]
    text = format_table(
        "Table 6: SympleGraph communication (normalized to Gemini total)",
        ["App", "Graph", "SymG.upt", "SymG.dep", "SymG"],
        rows,
        note=(
            f"geomean total vs Gemini: {geomean(totals):.2f} "
            "(paper: 40.95% average reduction; sampling can exceed 1.0)"
        ),
    )
    emit("table6", text)

    for algo in ("bfs", "kcore", "mis", "kmeans"):
        for ds in PAPER_DATASETS:
            upd, dep, total = cells[(algo, ds)]
            assert total < 1.0, f"{algo}/{ds}: {total:.2f}"
            assert dep < 0.08, f"{algo}/{ds} dep share: {dep:.3f}"
    # sampling: dependency data dominates its own traffic
    for ds in PAPER_DATASETS:
        upd, dep, total = cells[("sampling", ds)]
        assert dep > upd, f"sampling/{ds}"
        assert total > 0.5
