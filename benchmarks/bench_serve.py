"""Closed-loop load generator for the ``repro.serve`` query service.

Starts the server twice against the same graph and workload — once
with the batching coalescer, once request-at-a-time — and drives both
with ``--clients`` closed-loop HTTP clients (each keeps exactly one
request in flight, the standard closed-loop load model).  The workload
is a hot-query mix: every request is single-source BFS with the source
drawn round-robin from a small popular pool, the shape a serving
workload actually has and the one the coalescer exists for — queued
same-config requests merge into one multi-source batched run, and
repeats of an identical query dedup into the same execution.

Reports QPS, exact p50/p99 latency, and mean batch size per mode, and
enforces two gates (exit 1 on violation, the CI ``serve-smoke`` job):

* **digest equivalence** — every response's ``digest`` must equal the
  digest of a direct ``Session.run`` of the response's
  ``executed_config`` on the same graph, coalesced batches included;
* **coalescing speedup** (``--smoke`` / ``--gate``) — batched QPS must
  be >= 2x unbatched QPS.

Writes ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import threading
import time
from typing import Dict, List

from repro.api import RunConfig, Session
from repro.serve import GraphRegistry, ServeApp, ServerThread
from repro.serve.metrics import percentile
from repro.serve.registry import parse_graph_spec

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ClosedLoopClient(threading.Thread):
    """One closed-loop client: POST, wait, record, repeat."""

    def __init__(self, port: int, graph: str, base_config: Dict,
                 sources: List[int], requests: int, offset: int) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.graph = graph
        self.base_config = base_config
        self.sources = sources
        self.requests = requests
        self.offset = offset
        self.latencies: List[float] = []
        self.responses: List[Dict] = []
        self.errors: List[str] = []

    def run(self) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=60)
        try:
            for i in range(self.requests):
                source = self.sources[(self.offset + i) % len(self.sources)]
                body = dict(self.base_config)
                body["graph"] = self.graph
                body["sources"] = [source]
                t0 = time.perf_counter()
                while True:
                    conn.request(
                        "POST", "/query", body=json.dumps(body),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    if response.status == 429:
                        # admission control pushed back: honor it
                        time.sleep(0.02)
                        continue
                    break
                if response.status != 200:
                    self.errors.append(
                        f"HTTP {response.status}: {payload.get('error')}"
                    )
                    return
                self.latencies.append(time.perf_counter() - t0)
                self.responses.append(payload)
        except Exception as exc:  # noqa: BLE001 - report, don't hang
            self.errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            conn.close()


def drive(port: int, graph: str, base_config: Dict, sources: List[int],
          clients: int, requests: int) -> Dict:
    """Run the closed loop; returns aggregate stats + raw responses."""
    pool = [
        ClosedLoopClient(port, graph, base_config, sources, requests,
                         offset=i)
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for client in pool:
        client.start()
    for client in pool:
        client.join()
    elapsed = time.perf_counter() - t0
    errors = [e for c in pool for e in c.errors]
    if errors:
        raise RuntimeError(f"client failures: {errors[:3]}")
    latencies = [lat for c in pool for lat in c.latencies]
    responses = [r for c in pool for r in c.responses]
    batch_sizes = [r["batch_size"] for r in responses]
    return {
        "qps": len(responses) / elapsed,
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
        "mean_batch": sum(batch_sizes) / len(batch_sizes),
        "coalesced_share": (
            sum(1 for r in responses if r["coalesced"]) / len(responses)
        ),
        "requests": len(responses),
        "elapsed_s": elapsed,
        "responses": responses,
    }


def probe(port: int) -> None:
    """Assert /healthz and /metrics respond sanely (CI smoke check)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200 and payload["status"] == "ok", payload
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        assert response.status == 200, text[:200]
        assert "repro_serve_requests_total" in text, text[:200]
        assert "# TYPE repro_serve_latency_seconds histogram" in text, \
            text[:200]
    finally:
        conn.close()


def check_digests(spec: str, responses: List[Dict]) -> int:
    """Replay every distinct executed config directly; compare digests.

    Returns the number of distinct configs replayed.  Raises
    ``AssertionError`` on the first mismatch — a served digest that a
    direct ``Session.run`` cannot reproduce bit for bit.
    """
    by_config: Dict[str, str] = {}
    for response in responses:
        key = json.dumps(response["executed_config"], sort_keys=True)
        seen = by_config.setdefault(key, response["digest"])
        assert seen == response["digest"], (
            "one executed config served two digests: "
            f"{seen} vs {response['digest']}"
        )
    graph = parse_graph_spec(spec)
    with Session(graph) as session:
        for key, digest in by_config.items():
            config = RunConfig.from_dict(json.loads(key))
            direct = session.run(config).digest()
            assert direct == digest, (
                f"digest mismatch for {key}: served {digest}, "
                f"direct {direct}"
            )
    return len(by_config)


def run_mode(batching: bool, spec: str, base_config: Dict,
             sources: List[int], clients: int, requests: int,
             max_depth: int) -> Dict:
    registry = GraphRegistry()
    registry.load("bench", spec)
    app = ServeApp(registry, max_depth=max_depth, batching=batching,
                   request_timeout=120.0)
    with ServerThread(app) as server:
        probe(server.port)
        stats = drive(server.port, "bench", base_config, sources,
                      clients, requests)
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, few requests, gates armed "
                        "(the CI serve-smoke configuration)")
    parser.add_argument("--gate", action="store_true",
                        help="arm the >= 2x coalescing gate outside "
                        "--smoke")
    parser.add_argument("--scale", type=int, default=None,
                        help="rmat scale (default: 10, smoke: 7)")
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default: 40, "
                        "smoke: 16)")
    parser.add_argument("--pool", type=int, default=3,
                        help="hot-source pool size (default: 3)")
    parser.add_argument("--max-depth", type=int, default=256)
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (7 if args.smoke else 10)
    requests = (
        args.requests if args.requests is not None
        else (16 if args.smoke else 40)
    )
    spec = f"rmat:scale={scale},edge_factor=8,seed=3"
    base_config = {
        "engine": "symple",
        "algorithm": "bfs",
        "machines": args.machines,
        "seed": 0,
    }
    graph = parse_graph_spec(spec)
    degrees = graph.out_degrees()
    sources = [int(v) for v in range(graph.num_vertices)
               if degrees[v] > 0][: args.pool]
    total = args.clients * requests
    print(
        f"workload: {total} x single-source BFS over a {args.pool}-hot "
        f"source pool, {args.clients} closed-loop clients, {spec}, "
        f"machines={args.machines}"
    )

    report = {}
    for label, batching in (("unbatched", False), ("batched", True)):
        stats = run_mode(batching, spec, base_config, sources,
                         args.clients, requests, args.max_depth)
        replayed = check_digests(spec, stats.pop("responses"))
        stats["distinct_configs_replayed"] = replayed
        report[label] = stats
        print(
            f"{label:>10}: {stats['qps']:7.1f} QPS   "
            f"p50 {stats['p50_ms']:7.1f} ms   "
            f"p99 {stats['p99_ms']:7.1f} ms   "
            f"mean batch {stats['mean_batch']:.2f}   "
            f"({replayed} configs digest-replayed OK)"
        )

    ratio = report["batched"]["qps"] / report["unbatched"]["qps"]
    report["speedup"] = ratio
    print(f"coalescing speedup: {ratio:.2f}x "
          f"(batched vs request-at-a-time)")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_serve.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {path}")

    if (args.smoke or args.gate) and ratio < 2.0:
        print(
            f"FAIL: coalescing speedup {ratio:.2f}x below the 2x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
