"""Section 7.4's COST metric (McSherry et al.): how many machines a
distributed system needs to outperform a lean single-thread baseline.

Paper: COST of Gemini and SympleGraph is 4 (MIS on s27 vs Galois);
SympleGraph's BFS COST on tw is 3 (vs GAPBS).  D-Galois' COST is 64.
Expected shape here: SympleGraph's COST <= Gemini's COST, both small;
D-Galois' much larger.
"""

from __future__ import annotations

import pytest

from _shared import cached_run, emit
from repro.bench import format_table

SWEEP = (1, 2, 3, 4, 6, 8, 12, 16, 32, 64, 128)


def cost_of(engine: str, dataset_name: str, algorithm: str, baseline: float):
    for p in SWEEP:
        run = cached_run(engine, dataset_name, algorithm, num_machines=p)
        if run.simulated_time < baseline:
            return p
    return None


def build_cost():
    single = cached_run("single", "s27", "mis", num_machines=1)
    baseline = single.simulated_time
    rows = []
    costs = {}
    for engine in ("gemini", "symple", "dgalois"):
        cost = cost_of(engine, "s27", "mis", baseline)
        costs[engine] = cost
        rows.append([engine, "MIS/s27", str(cost) if cost else f">{SWEEP[-1]}"])

    bfs_single = cached_run("single", "s27", "bfs", num_machines=1)
    bfs_cost = cost_of("symple", "s27", "bfs", bfs_single.simulated_time)
    costs["symple_bfs"] = bfs_cost
    rows.append(
        ["symple", "BFS/s27", str(bfs_cost) if bfs_cost else f">{SWEEP[-1]}"]
    )
    return rows, costs


@pytest.mark.benchmark(group="cost")
def test_cost_metric(benchmark):
    rows, costs = benchmark.pedantic(build_cost, rounds=1, iterations=1)
    text = format_table(
        "COST metric: machines needed to beat the single-thread baseline",
        ["System", "Workload", "COST"],
        rows,
        note="paper: Gemini/SympleGraph COST = 4 (MIS/s27), "
        "SympleGraph BFS/tw COST = 3, D-Galois COST = 64",
    )
    emit("cost", text)

    assert costs["symple"] is not None and costs["symple"] <= 8
    assert costs["gemini"] is not None and costs["gemini"] <= 8
    assert costs["symple"] <= costs["gemini"]
    # D-Galois pays a much higher entry fee (or never gets there).
    assert costs["dgalois"] is None or costs["dgalois"] >= 2 * costs["gemini"]
