"""Ablation: the differentiated-propagation degree threshold.

The paper tunes the threshold by sweeping powers of two and settles on
32 for its billion-edge graphs (Section 6).  This bench repeats the
sweep at reproduction scale; DESIGN.md documents that the sweep picks a
proportionally smaller default here.  Expected shape: a shallow optimum
— small thresholds keep nearly all of the dependency savings, very
large thresholds degrade toward the no-propagation behaviour.
"""

from __future__ import annotations

import pytest

from _shared import cached_run, emit
from repro.bench import format_table, geomean
from repro.engine.symple import DEFAULT_DEGREE_THRESHOLD
from repro.engine import SympleOptions
from repro.api import RunConfig, Session
from repro.bench import dataset

THRESHOLDS = (2, 4, 8, 16, 32, 64)
ALGOS = ("mis", "kcore")
DATASET = "s28"


def build_sweep():
    base = RunConfig(engine="symple", machines=16, kcore_k=2, seed=1)
    times = {}
    with Session(dataset(DATASET), base) as session:
        for th in THRESHOLDS:
            options = SympleOptions(degree_threshold=th)
            times[th] = [
                session.run(algorithm=algo, options=options).simulated_time
                for algo in ALGOS
            ]
    return times


@pytest.mark.benchmark(group="ablation-threshold")
def test_threshold_sweep(benchmark):
    times = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    base = times[THRESHOLDS[0]]
    rows = [
        [th] + [f"{t:,.0f}" for t in times[th]]
        + [f"{geomean([t / b for t, b in zip(times[th], base)]):.3f}"]
        for th in THRESHOLDS
    ]
    text = format_table(
        f"Ablation: degree threshold sweep ({DATASET}, 16 machines)",
        ["threshold", "MIS", "K-core", "vs th=2"],
        rows,
        note=(
            f"repo default: {DEFAULT_DEGREE_THRESHOLD} "
            "(paper picked 32 at 1000x larger scale by the same sweep)"
        ),
    )
    emit("ablation_threshold", text)

    geo = {
        th: geomean([t / b for t, b in zip(times[th], base)])
        for th in THRESHOLDS
    }
    # the default must be within a few percent of the sweep's best
    best = min(geo.values())
    assert geo[DEFAULT_DEGREE_THRESHOLD] <= best + 0.05
    # the largest threshold is measurably worse than the best
    assert geo[THRESHOLDS[-1]] > best + 0.05
