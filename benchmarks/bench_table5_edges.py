"""Table 5: number of edges traversed, normalized to |E|.

Expected shape: SympleGraph traverses strictly fewer edges than Gemini
for every (algorithm, graph) pair — 66.91% average reduction in the
paper — and the reduction deepens with the graph's average degree
(s27 > s28 > s29, Section 7.3).
"""

from __future__ import annotations

import pytest

from _shared import PAPER_ALGORITHMS, PAPER_DATASETS, cached_run, emit
from repro.bench import dataset, format_table, geomean


def build_table5():
    rows = []
    ratios = {}
    for algo in PAPER_ALGORITHMS:
        for ds in PAPER_DATASETS:
            edges = dataset(ds).num_edges
            gem = cached_run("gemini", ds, algo)
            sym = cached_run("symple", ds, algo)
            ratio = sym.edges_traversed / max(gem.edges_traversed, 1)
            ratios[(algo, ds)] = ratio
            rows.append(
                [
                    algo,
                    ds,
                    f"{gem.edges_traversed / edges:.4f}",
                    f"{sym.edges_traversed / edges:.4f}",
                    f"{ratio:.4f}",
                ]
            )
    return rows, ratios


@pytest.mark.benchmark(group="table5")
def test_table5_edges_traversed(benchmark):
    rows, ratios = benchmark.pedantic(build_table5, rounds=1, iterations=1)
    mean_reduction = 1.0 - geomean(list(ratios.values()))
    text = format_table(
        "Table 5: Edges traversed (normalized to |E|)",
        ["App", "Graph", "Gemini", "SympG.", "SympG./Gemini"],
        rows,
        note=(
            f"geomean traversal reduction: {mean_reduction:.1%} "
            "(paper: 66.91% average)"
        ),
    )
    emit("table5", text)

    # Strict subset property on every cell.
    for (algo, ds), ratio in ratios.items():
        assert ratio <= 1.0, f"{algo}/{ds}: {ratio:.3f}"
    # Aggregate reduction is substantial.
    assert mean_reduction > 0.25
    # Denser graphs save more (edge-factor ordering, Section 7.3).
    for algo in ("mis", "sampling", "kcore"):
        assert ratios[(algo, "s27")] < ratios[(algo, "s29")] + 0.02, algo
