"""Table 7: best-performing machine counts — D-Galois needs two orders
of magnitude more machines.

Paper (Stampede2): D-Galois reaches its best MIS time at 128 nodes;
SympleGraph matches or beats it with 2-4 nodes.  We sweep both systems
over machine counts and compare the optima.
"""

from __future__ import annotations

import pytest

from _shared import cached_run, emit
from repro.bench import format_table

SYMPLE_SWEEP = (2, 4, 8, 16)
DGALOIS_SWEEP = (8, 16, 32, 64, 128)
GRAPHS = ("tw", "fr", "s27")


def build_table7():
    rows = []
    data = {}
    for ds in GRAPHS:
        dg_times = {
            p: cached_run("dgalois", ds, "mis", num_machines=p).simulated_time
            for p in DGALOIS_SWEEP
        }
        sym_times = {
            p: cached_run("symple", ds, "mis", num_machines=p).simulated_time
            for p in SYMPLE_SWEEP
        }
        dg_best = min(dg_times, key=dg_times.get)
        sym_best = min(sym_times, key=sym_times.get)
        data[ds] = (dg_times, dg_best, sym_times, sym_best)
        rows.append(
            [
                ds,
                f"{dg_times[dg_best]:,.0f} ({dg_best})",
                f"{sym_times[sym_best]:,.0f} ({sym_best})",
            ]
        )
    return rows, data


@pytest.mark.benchmark(group="table7")
def test_table7_best_node_counts(benchmark):
    rows, data = benchmark.pedantic(build_table7, rounds=1, iterations=1)
    text = format_table(
        "Table 7: MIS best time (best-performing machine count)",
        ["Graph", "D-Galois", "SympleGraph"],
        rows,
        note=(
            "paper: D-Galois best at 128 nodes, SympleGraph best at 2-4; "
            "a small SympleGraph cluster does the work of a large "
            "D-Galois allocation"
        ),
    )
    emit("table7", text)

    for ds in GRAPHS:
        dg_times, dg_best, sym_times, sym_best = data[ds]
        # D-Galois needs more machines to reach its optimum...
        assert dg_best >= 2 * sym_best
        # ...and even then a smaller SympleGraph cluster matches or
        # beats it (the paper's 4-node-vs-128-node headline, with the
        # gap compressed at simulation scale).
        assert sym_times[sym_best] <= dg_times[dg_best] * 1.1
