"""Ablation: where the simulated time goes.

Decomposes each engine's MIS/s28 run into compute, communication,
framework overhead, and (for SympleGraph) dependency-wait.  The design
claims this supports: SympleGraph trades a small dependency-wait term
for large compute+communication savings, and double buffering is what
keeps that wait small.
"""

from __future__ import annotations

import pytest

from _shared import cached_run, emit, export_metrics, options_key
from repro.bench import dataset, format_table
from repro.engine import GeminiEngine, SympleGraphEngine, SympleOptions
from repro.obs import MetricsRegistry, fill_run_metrics, registry_breakdown
from repro.partition import OutgoingEdgeCut
from repro.runtime import DGALOIS_COST, GEMINI_COST, SYMPLE_COST


def _priced(engine, cost_model, kind, double_buffering=True):
    """Breakdown via the observability registry (the exported view)."""
    registry = MetricsRegistry()
    fill_run_metrics(
        registry,
        engine.counters,
        cost_model=cost_model,
        engine_kind=kind,
        double_buffering=double_buffering,
    )
    return registry, registry_breakdown(registry)


def build_breakdown():
    from repro.algorithms import mis

    g = dataset("s28")
    rows = []
    data = {}

    gemini = GeminiEngine(OutgoingEdgeCut().partition(g, 16))
    mis(gemini, seed=1)
    registry, b = _priced(gemini, GEMINI_COST, "gemini")
    export_metrics("breakdown_gemini", registry)
    data["gemini"] = b
    rows.append(_row("gemini", b))

    for label, db in (("symple (DB)", True), ("symple (no DB)", False)):
        engine = SympleGraphEngine(
            OutgoingEdgeCut().partition(g, 16),
            options=SympleOptions(double_buffering=db),
        )
        mis(engine, seed=1)
        registry, b = _priced(engine, SYMPLE_COST, "symple",
                              double_buffering=db)
        if db:
            export_metrics("breakdown_symple", registry)
        data[label] = b
        rows.append(_row(label, b))
    return rows, data


def _row(label, b):
    return [
        label,
        f"{b['total']:,.0f}",
        f"{b['compute']:,.0f}",
        f"{b['communication']:,.0f}",
        f"{b['overhead']:,.0f}",
        f"{b['dependency_wait']:,.0f}",
    ]


@pytest.mark.benchmark(group="breakdown")
def test_time_breakdown(benchmark):
    rows, data = benchmark.pedantic(build_breakdown, rounds=1, iterations=1)
    text = format_table(
        "Time breakdown: MIS/s28, 16 machines",
        ["engine", "total", "compute", "comm", "overhead", "dep-wait"],
        rows,
        note="SympleGraph's compute+comm drop below Gemini's; double "
        "buffering keeps the dependency wait small",
    )
    emit("breakdown", text)

    gem = data["gemini"]
    db = data["symple (DB)"]
    nodb = data["symple (no DB)"]
    assert db["compute"] < gem["compute"]
    assert db["communication"] < gem["communication"]
    assert db["dependency_wait"] <= nodb["dependency_wait"]
    assert db["total"] < gem["total"]
