"""Table 4: overall execution time — Gemini, D-Galois, SympleGraph.

Paper: 5 algorithms x {tw, fr, s27, s28, s29}, 16 machines.  Expected
shape: SympleGraph fastest on the dependency algorithms (speedup over
the best baseline roughly 1.2-2.3x), D-Galois slowest at this machine
count, sampling N/A on D-Galois, and the parenthesized K-core numbers
(linear peel) beating the iterative algorithm on the social graphs
only.
"""

from __future__ import annotations

import pytest

from _shared import PAPER_ALGORITHMS, PAPER_DATASETS, KCORE_K, cached_run, emit
from repro.algorithms import kcore_peel
from repro.bench import dataset, format_table, geomean, speedup
from repro.runtime import SINGLE_THREAD_COST


def build_table4():
    rows = []
    speedups = []
    for algo in PAPER_ALGORITHMS:
        for ds in PAPER_DATASETS:
            gem = cached_run("gemini", ds, algo)
            sym = cached_run("symple", ds, algo)
            if algo == "sampling":
                dg_text = "N/A"
            else:
                dg = cached_run("dgalois", ds, algo)
                dg_text = f"{dg.simulated_time:,.0f}"
            gem_text = f"{gem.simulated_time:,.0f}"
            if algo == "kcore":
                peel = kcore_peel(dataset(ds), KCORE_K, SINGLE_THREAD_COST)
                gem_text += f" ({peel.simulated_time:,.0f})"
            sp = speedup(gem, sym)
            speedups.append(sp)
            rows.append(
                [
                    algo,
                    ds,
                    gem_text,
                    dg_text,
                    f"{sym.simulated_time:,.0f}",
                    f"{sp:.2f}",
                ]
            )
    return rows, speedups


@pytest.mark.benchmark(group="table4")
def test_table4_overall_performance(benchmark):
    rows, speedups = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    text = format_table(
        "Table 4: Execution time (simulated units), 16 machines",
        ["App", "Graph", "Gemini", "D-Galois", "SympleG.", "Speedup"],
        rows,
        note=(
            f"geomean SympleGraph speedup over Gemini: "
            f"{geomean(speedups):.2f}x  (paper: 1.42x avg, up to 2.30x; "
            "K-core parenthesis = linear peel baseline)"
        ),
    )
    emit("table4", text)

    # Shape assertions: SympleGraph wins on dependency algorithms.
    gm = geomean(speedups)
    assert 1.05 < gm < 2.5
    # D-Galois never beats SympleGraph at 16 machines.
    for algo in ("bfs", "kcore", "mis", "kmeans"):
        for ds in PAPER_DATASETS:
            dg = cached_run("dgalois", ds, algo)
            sym = cached_run("symple", ds, algo)
            assert dg.simulated_time > sym.simulated_time
