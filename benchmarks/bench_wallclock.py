"""Real wall-clock speedup of the batched kernel layer.

Unlike the paper-table benches (which report *simulated* cost-model
time), this bench times the Python process itself: the same algorithm
on the same partition with ``use_kernels`` on vs off, asserting along
the way that results, per-iteration counters, and network traffic are
bit-identical — the kernel layer is only allowed to change how fast the
answer appears, never the answer.

Default configuration is the acceptance microbench: bottom-up BFS on a
100k-vertex random undirected graph over 4 machines (target: >= 5x).
``--all`` times all five classified algorithms; ``--smoke`` runs a
small graph and exits nonzero if the kernel path is slower than the
interpreter or any equivalence check fails (the CI perf gate).

``--executors`` sweeps the executor backends instead: the same run
under serial, thread, and process, verifying bit-identical results and
reporting the wall-clock ratio against serial.  Each backend reuses
ONE executor instance: the first run is reported as *cold* (pool
spawn + topology publish included) and the median of the ``--repeats``
subsequent runs as *warm* (steady state of a long-lived Session).  The
>= 1.5x process-vs-serial floor is armed **unconditionally** on the
warm numbers — warm-pool reuse is the whole point of the process
backend, and a regression should fail CI regardless of core count.

Writes ``benchmarks/results/BENCH_wallclock.json``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time

import numpy as np

from repro.engine.symple import SympleGraphEngine, SympleOptions
from repro.graph.generators import erdos_renyi
from repro.graph.transform import to_undirected
from repro.partition.edge_cut import OutgoingEdgeCut

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# package __init__ re-exports shadow the submodules, so import by path
bfs_mod = importlib.import_module("repro.algorithms.bfs")
cc_mod = importlib.import_module("repro.algorithms.cc")
kcore_mod = importlib.import_module("repro.algorithms.kcore")
mis_mod = importlib.import_module("repro.algorithms.mis")
pr_mod = importlib.import_module("repro.algorithms.pagerank")

ALGORITHMS = {
    "bfs_bottomup": lambda eng: bfs_mod.bfs(eng, 0, mode="bottomup"),
    "mis": lambda eng: mis_mod.mis(eng, seed=3),
    "kcore": lambda eng: kcore_mod.kcore(eng, 3),
    "pagerank": lambda eng: pr_mod.pagerank(eng, iterations=10),
    "cc": lambda eng: cc_mod.connected_components(eng),
}


def _result_arrays(result) -> dict:
    """Every ndarray field of a result dataclass, for bit-comparison."""
    return {
        name: value
        for name, value in vars(result).items()
        if isinstance(value, np.ndarray)
    }


def _identical(eng_a, res_a, eng_b, res_b) -> dict:
    arrays_a = _result_arrays(res_a)
    arrays_b = _result_arrays(res_b)
    return {
        "results": all(
            np.array_equal(arrays_a[k], arrays_b[k]) for k in arrays_a
        )
        and arrays_a.keys() == arrays_b.keys(),
        "counters": eng_a.counters.summary() == eng_b.counters.summary(),
        "traffic": all(
            np.array_equal(eng_a.network.traffic[t], eng_b.network.traffic[t])
            for t in eng_a.network.traffic
        ),
        "messages": all(
            np.array_equal(
                eng_a.network.message_counts[t],
                eng_b.network.message_counts[t],
            )
            for t in eng_a.network.message_counts
        ),
    }


def bench_one(partition, algorithm: str, repeats: int) -> dict:
    """Time one algorithm with kernels on vs off; verify equivalence."""
    run = ALGORITHMS[algorithm]

    def timed(use_kernels: bool):
        best = float("inf")
        engine = result = None
        for _ in range(repeats):
            engine = SympleGraphEngine(
                partition, SympleOptions(use_kernels=use_kernels)
            )
            t0 = time.perf_counter()
            result = run(engine)
            best = min(best, time.perf_counter() - t0)
        return best, engine, result

    t_kernel, eng_k, res_k = timed(True)
    t_interp, eng_i, res_i = timed(False)
    checks = _identical(eng_k, res_k, eng_i, res_i)
    return {
        "algorithm": algorithm,
        "seconds_kernel": t_kernel,
        "seconds_interpreter": t_interp,
        "speedup": t_interp / t_kernel if t_kernel > 0 else float("inf"),
        "identical": checks,
    }


EXECUTORS = ("serial", "thread", "process")


def true_cores() -> int:
    """CPUs actually schedulable for this process, not the machine's."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_executors(partition, algorithm: str, repeats: int,
                    workers: int) -> dict:
    """Time one algorithm per executor backend; verify equivalence.

    One executor instance per backend, reused across ``1 + repeats``
    runs: run 0 is the cold time (pool spawn + topology publish for the
    process backend), the median of the rest is the warm steady state —
    what a long-lived Session (or ``repro serve``) actually pays.
    """
    run = ALGORITHMS[algorithm]

    def timed(executor):
        from repro.exec import make_executor

        ex = make_executor(
            executor, workers=None if executor == "serial" else workers
        )
        engine = result = None
        times = []
        for _ in range(1 + repeats):
            engine = SympleGraphEngine(
                partition, SympleOptions(), executor=ex
            )
            t0 = time.perf_counter()
            result = run(engine)
            times.append(time.perf_counter() - t0)
        stats = ex.stats()
        ex.close()
        cold = times[0]
        warm = float(np.median(times[1:])) if repeats else cold
        return cold, warm, engine, result, stats

    _, w_serial, eng_s, res_s, _ = timed("serial")
    row = {
        "algorithm": algorithm,
        "workers": workers,
        "repeats": repeats,
        "seconds_cold": {},
        "seconds_warm": {"serial": w_serial},
        "speedup_vs_serial": {"serial": 1.0},
        "identical": {},
    }
    for backend in ("thread", "process"):
        cold, warm, eng, res, stats = timed(backend)
        checks = _identical(eng_s, res_s, eng, res)
        row["seconds_cold"][backend] = cold
        row["seconds_warm"][backend] = warm
        row["speedup_vs_serial"][backend] = (
            w_serial / warm if warm > 0 else float("inf")
        )
        row["identical"][backend] = checks
        if backend == "process":
            # arena traffic: publish bytes are cumulative over all
            # 1 + repeats runs; spawns > 1 would mean the pool died
            row["process_stats"] = stats
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=100_000)
    parser.add_argument("--avg-degree", type=int, default=8)
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--all", action="store_true",
        help="time all five classified algorithms, not just bottom-up BFS",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI gate: fail if kernels are slower or not equivalent",
    )
    parser.add_argument(
        "--executors", action="store_true",
        help="sweep executor backends (serial/thread/process) instead "
        "of the kernel on/off comparison",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the thread/process backends (default: 4)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.vertices = min(args.vertices, 8_000)

    graph = to_undirected(
        erdos_renyi(args.vertices, args.avg_degree * args.vertices, args.seed)
    )
    partition = OutgoingEdgeCut().partition(graph, args.machines)
    algorithms = list(ALGORITHMS) if args.all else ["bfs_bottomup"]

    rows = []
    failed = False
    if args.executors:
        # the 1.5x warm-run floor is armed unconditionally: warm-pool
        # reuse must win even on modest runners, and a regression
        # should fail CI rather than hide behind a core-count check
        cores = true_cores()
        floor_algorithms = {"bfs_bottomup", "cc"}
        for algorithm in algorithms:
            row = bench_executors(
                partition, algorithm, args.repeats, args.workers
            )
            rows.append(row)
            ok = all(
                all(checks.values()) for checks in row["identical"].values()
            )
            failed |= not ok
            line = f"{algorithm:>14}:"
            for backend in EXECUTORS:
                warm = row["seconds_warm"][backend]
                line += (
                    f"  {backend} {warm:7.3f}s"
                    f" ({row['speedup_vs_serial'][backend]:4.2f}x)"
                )
            cold = row["seconds_cold"].get("process")
            print(
                line
                + f"  cold(process) {cold:7.3f}s"
                + f"  identical={'yes' if ok else 'NO'}"
            )
            if (
                algorithm in floor_algorithms
                and row["speedup_vs_serial"]["process"] < 1.5
            ):
                print(
                    f"{algorithm}: warm process backend below the 1.5x "
                    f"floor on {cores} cores "
                    f"({row['speedup_vs_serial']['process']:.2f}x)"
                )
                failed = True
    else:
        for algorithm in algorithms:
            row = bench_one(partition, algorithm, args.repeats)
            rows.append(row)
            ok = all(row["identical"].values())
            failed |= not ok
            print(
                f"{algorithm:>14}: interpreter "
                f"{row['seconds_interpreter']:8.3f}s"
                f"  kernels {row['seconds_kernel']:8.3f}s"
                f"  speedup {row['speedup']:6.2f}x"
                f"  identical={'yes' if ok else 'NO'}"
            )
            if args.smoke and row["speedup"] < 1.0:
                print(f"{algorithm}: kernel path slower than the interpreter")
                failed = True

    payload = {
        "config": {
            "vertices": args.vertices,
            "avg_degree": args.avg_degree,
            "machines": args.machines,
            "seed": args.seed,
            "repeats": args.repeats,
            "smoke": args.smoke,
            "mode": "executors" if args.executors else "kernels",
            "workers": args.workers if args.executors else None,
            "cores": true_cores(),
            "cores_machine": os.cpu_count(),
        },
        "rows": rows,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_wallclock.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
