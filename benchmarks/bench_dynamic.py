"""Dynamic graphs: incremental recomputation vs from-scratch reruns.

Streams a schedule of mutation batches (symmetric edge inserts,
deletes of live edges, occasional vertex growth) into a long-lived
:class:`~repro.api.Session` and measures, per batch:

* ``Session.mutate`` itself — delta-overlay apply + incremental
  partition refresh (frozen masters, touched machines only);
* the incremental repair of BFS depths and CC labels
  (affected-subgraph reseeding) and, on deletion-only batches,
  incremental k-core peeling;
* the from-scratch baseline: a fresh session on the equivalent static
  snapshot recomputing the same answers.

The **metamorphic gate** is armed on every batch, not sampled: the
incremental digests must equal the from-scratch digests bit for bit,
and the run exits nonzero on the first mismatch.  ``--smoke`` is the
CI entry point: a small graph, a short schedule, gate on, and the
JSON report written for the artifact upload.

Writes ``benchmarks/results/BENCH_dynamic.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.api import RunConfig, Session
from repro.algorithms import (
    IncrementalBFS,
    IncrementalCC,
    IncrementalKCore,
)
from repro.graph.dynamic import DynamicGraph, MutationBatch
from repro.graph.generators import rmat
from repro.graph.transform import to_undirected
from repro.obs import ObsHub, Tracer, validate_events

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# -- mutation stream ---------------------------------------------------------


def make_schedule(graph, num_batches, batch_size, grow_every, seed):
    """Symmetric mutation batches valid against ``graph``, in order.

    A shadow :class:`DynamicGraph` tracks the live edge set so deletes
    always name live pairs.  Each batch mixes inserts and deletes
    roughly 2:1 (streams grow in practice); every ``grow_every``-th
    batch also appends a vertex wired to a random existing one.
    """
    rng = np.random.default_rng(seed)
    shadow = DynamicGraph(graph, compact_min=10**9)
    batches = []
    for b in range(num_batches):
        n = shadow.num_vertices
        ins_pairs = []
        n_ins = max(1, (2 * batch_size) // 3)
        for _ in range(n_ins):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                v = (u + 1) % n
            ins_pairs += [(u, v), (v, u)]

        del_pairs = []
        n_del = batch_size - n_ins
        if n_del > 0:
            src, dst = shadow.snapshot().edge_array()
            candidates = np.flatnonzero(src < dst)  # one per direction pair
            if candidates.size:
                picks = rng.choice(
                    candidates,
                    size=min(n_del, candidates.size),
                    replace=False,
                )
                for e in picks:
                    u, v = int(src[e]), int(dst[e])
                    if (u, v) in ins_pairs or (v, u) in ins_pairs:
                        continue  # keep batches insert/delete-disjoint
                    del_pairs += [(u, v), (v, u)]

        add = 0
        if grow_every and (b + 1) % grow_every == 0:
            u = int(rng.integers(0, n))
            ins_pairs += [(u, n), (n, u)]
            add = 1

        batch = MutationBatch(
            insert_src=[p[0] for p in ins_pairs],
            insert_dst=[p[1] for p in ins_pairs],
            delete_src=[p[0] for p in del_pairs],
            delete_dst=[p[1] for p in del_pairs],
            add_vertices=add,
        )
        shadow.apply(batch)
        batches.append(batch)
    return batches


# -- the bench ---------------------------------------------------------------


def scratch_reference(snapshot, config, root, k):
    """From-scratch digests + per-algorithm wall time on the
    equivalent static graph."""
    digests = {}
    times = {}
    with Session(snapshot, config) as fresh:
        for name, handle in (
            ("bfs", IncrementalBFS(fresh, root=root)),
            ("cc", IncrementalCC(fresh)),
            ("kcore", IncrementalKCore(fresh, k=k)),
        ):
            t0 = time.perf_counter()
            digests[name] = handle.refresh().digest()
            times[name] = time.perf_counter() - t0
    return digests, times


def run_stream(args):
    graph = to_undirected(
        rmat(scale=args.scale, edge_factor=args.edge_factor, seed=args.seed)
    )
    if args.root < 0:
        args.root = int(np.argmax(graph.out_degrees()))
    config = RunConfig(
        machines=args.machines,
        executor=args.executor,
        workers=args.workers,
        bfs_roots=1,
    )
    batches = make_schedule(
        graph, args.batches, args.batch_size, args.grow_every, args.seed
    )
    hub = ObsHub(tracer=Tracer())

    rows = []
    failures = []
    with Session(graph, config) as session:
        bfs = IncrementalBFS(session, root=args.root)
        cc = IncrementalCC(session)
        kcore = IncrementalKCore(session, k=args.k)

        t0 = time.perf_counter()
        bfs.refresh()
        cc.refresh()
        kcore.refresh()
        initial = time.perf_counter() - t0

        for i, batch in enumerate(batches):
            t0 = time.perf_counter()
            stats = session.mutate(batch, obs=hub)
            mutate_s = time.perf_counter() - t0

            inc_times = {}
            t0 = time.perf_counter()
            r_bfs = bfs.refresh()
            inc_times["bfs"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            r_cc = cc.refresh()
            inc_times["cc"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            r_kcore = kcore.refresh()
            inc_times["kcore"] = time.perf_counter() - t0
            refresh_s = sum(inc_times.values())

            snapshot, version = session._graph_snapshot()
            expected, scr_times = scratch_reference(
                snapshot, config, args.root, args.k
            )
            scratch_s = sum(scr_times.values())
            got = {
                "bfs": r_bfs.digest(),
                "cc": r_cc.digest(),
                "kcore": r_kcore.digest(),
            }
            ok = got == expected
            if not ok:
                failures.append({
                    "batch": i, "version": version,
                    "got": got, "expected": expected,
                })

            rows.append({
                "batch": i,
                "version": stats.version,
                "inserts": stats.inserts,
                "deletes": stats.deletes,
                "removed_copies": stats.removed_copies,
                "add_vertices": stats.add_vertices,
                "num_edges": stats.num_edges,
                "overlay_edges": stats.overlay_edges,
                "compacted": stats.compacted,
                "modes": {
                    "bfs": r_bfs.mode,
                    "cc": r_cc.mode,
                    "kcore": r_kcore.mode,
                },
                "iterations": {
                    "bfs": r_bfs.iterations,
                    "cc": r_cc.iterations,
                },
                "mutate_seconds": mutate_s,
                "incremental_seconds": refresh_s,
                "scratch_seconds": scratch_s,
                "incremental_breakdown": inc_times,
                "scratch_breakdown": scr_times,
                "speedup": scratch_s / refresh_s if refresh_s > 0 else None,
                "gate": "ok" if ok else "MISMATCH",
            })

    events = list(hub.tracer.events)
    problems = validate_events(events)
    refresh_events = [e for e in events if e["kind"] == "partition_refresh"]
    total_cells = sum(e["schedule_cells"] for e in refresh_events)

    inc_total = sum(r["incremental_seconds"] for r in rows)
    scr_total = sum(r["scratch_seconds"] for r in rows)
    per_algorithm = {}
    for name in ("bfs", "cc", "kcore"):
        inc = sum(r["incremental_breakdown"][name] for r in rows)
        scr = sum(r["scratch_breakdown"][name] for r in rows)
        per_algorithm[name] = {
            "incremental_seconds": inc,
            "scratch_seconds": scr,
            "speedup": scr / inc if inc > 0 else None,
        }
    report = {
        "bench": "dynamic",
        "graph": {
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": args.seed,
        },
        "config": {
            "machines": args.machines,
            "executor": args.executor,
            "workers": args.workers,
            "batches": args.batches,
            "batch_size": args.batch_size,
            "k": args.k,
        },
        "initial_compute_seconds": initial,
        "incremental_seconds_total": inc_total,
        "scratch_seconds_total": scr_total,
        "stream_speedup": scr_total / inc_total if inc_total > 0 else None,
        "per_algorithm": per_algorithm,
        "partition_refreshes": len(refresh_events),
        "schedule_cells_invalidated": total_cells,
        "trace_problems": problems,
        "metamorphic_gate": "ok" if not failures else "FAILED",
        "failures": failures,
        "rows": rows,
    }
    return report


def print_table(report):
    print(
        f"dynamic stream on |V|={report['graph']['num_vertices']} "
        f"|E|={report['graph']['num_edges']} "
        f"({report['config']['executor']} executor, "
        f"{report['config']['machines']} machines)"
    )
    header = (
        f"{'batch':>5} {'ver':>4} {'+e':>5} {'-e':>5} {'edges':>8} "
        f"{'overlay':>7} {'cmp':>3} {'mutate':>9} {'incr':>9} "
        f"{'scratch':>9} {'speedup':>8} {'gate':>8}"
    )
    print(header)
    print("-" * len(header))
    for r in report["rows"]:
        speedup = f"{r['speedup']:.1f}x" if r["speedup"] else "-"
        print(
            f"{r['batch']:>5} {r['version']:>4} {r['inserts']:>5} "
            f"{r['removed_copies']:>5} {r['num_edges']:>8} "
            f"{r['overlay_edges']:>7} {'y' if r['compacted'] else 'n':>3} "
            f"{r['mutate_seconds']*1e3:>8.2f}m "
            f"{r['incremental_seconds']*1e3:>8.2f}m "
            f"{r['scratch_seconds']*1e3:>8.2f}m "
            f"{speedup:>8} {r['gate']:>8}"
        )
    print("-" * len(header))
    speedup = report["stream_speedup"]
    print(
        f"stream total: incremental {report['incremental_seconds_total']:.3f}s "
        f"vs scratch {report['scratch_seconds_total']:.3f}s "
        f"({speedup:.1f}x)" if speedup else "stream total: n/a"
    )
    for name, row in report["per_algorithm"].items():
        speedup = row["speedup"]
        print(
            f"  {name:>6}: incremental {row['incremental_seconds']:.3f}s "
            f"vs scratch {row['scratch_seconds']:.3f}s"
            + (f" ({speedup:.1f}x)" if speedup else "")
        )
    print(
        f"partition refreshes: {report['partition_refreshes']}, "
        f"circulant cells invalidated: "
        f"{report['schedule_cells_invalidated']}"
    )
    print(f"metamorphic gate: {report['metamorphic_gate']}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=13,
                        help="rmat scale (default 13)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--batches", type=int, default=12,
                        help="mutation batches to stream")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="edge mutations per batch (pre-symmetrization)")
    parser.add_argument("--grow-every", type=int, default=4,
                        help="add a vertex every N batches (0 disables)")
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--root", type=int, default=-1,
                        help="BFS root vertex (-1: highest-degree vertex)")
    parser.add_argument("--k", type=int, default=3, help="k-core k")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration, gate armed")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 9)
        args.batches = min(args.batches, 6)
        args.batch_size = min(args.batch_size, 24)

    report = run_stream(args)
    print_table(report)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_dynamic.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")

    if report["metamorphic_gate"] != "ok":
        print("FAIL: incremental results diverged from scratch",
              file=sys.stderr)
        return 1
    if report["trace_problems"]:
        print(f"FAIL: trace problems {report['trace_problems']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
