"""Figure 10: scalability of MIS on s27, 1-16 machines, three systems.

Expected shape: Gemini and SympleGraph reach their best time around 8
machines, with Gemini flat-to-worse at 16 while SympleGraph degrades
less (its communication reduction defers the bandwidth wall); D-Galois
sits well above both but keeps improving through 16.
"""

from __future__ import annotations

import pytest

from _shared import cached_run, emit
from repro.bench import format_table

MACHINES = (1, 2, 4, 8, 16)


def build_fig10():
    series = {}
    for engine in ("gemini", "symple", "dgalois"):
        series[engine] = {
            p: cached_run(engine, "s27", "mis", num_machines=p).simulated_time
            for p in MACHINES
        }
    return series


@pytest.mark.benchmark(group="fig10")
def test_fig10_scalability(benchmark):
    series = benchmark.pedantic(build_fig10, rounds=1, iterations=1)
    norm = series["symple"][16]
    rows = [
        [
            p,
            f"{series['gemini'][p] / norm:.2f}",
            f"{series['symple'][p] / norm:.2f}",
            f"{series['dgalois'][p] / norm:.2f}",
        ]
        for p in MACHINES
    ]
    text = format_table(
        "Figure 10: MIS/s27 runtime (normalized to SympleGraph @ 16)",
        ["#nodes", "Gemini", "SympleG.", "D-Galois"],
        rows,
        note=(
            "paper shape: Gemini/SympleGraph bottom out ~8 nodes; "
            "SympleGraph consistently below Gemini; D-Galois above both, "
            "still improving at 16"
        ),
    )
    emit("fig10", text)

    gem, sym, dg = series["gemini"], series["symple"], series["dgalois"]
    # SympleGraph below Gemini at every multi-machine point.
    for p in (2, 4, 8, 16):
        assert sym[p] < gem[p]
    # Gemini's scaling stalls 8 -> 16.
    assert gem[16] >= gem[8] * 0.98
    # SympleGraph degrades less over the same span.
    assert sym[16] / sym[8] < gem[16] / gem[8]
    # D-Galois is the slowest system at every point but keeps scaling.
    for p in MACHINES:
        assert dg[p] > gem[p]
    assert dg[16] < dg[4]
