"""Table 3: the two large web graphs (gsh, cl), Gemini vs SympleGraph.

Expected shape (paper): solid speedups on MIS / K-core / sampling for
both graphs; BFS shows *no* improvement on cl because the adaptive
switch rarely selects the bottom-up direction there, and K-means on cl
is a wash.
"""

from __future__ import annotations

import pytest

from _shared import PAPER_ALGORITHMS, cached_run, emit
from repro.bench import format_table, speedup


def build_table3():
    rows = []
    sps = {}
    for ds in ("gsh", "cl"):
        for algo in PAPER_ALGORITHMS:
            gem = cached_run("gemini", ds, algo, num_machines=10)
            sym = cached_run("symple", ds, algo, num_machines=10)
            sp = speedup(gem, sym)
            sps[(ds, algo)] = sp
            rows.append(
                [
                    ds,
                    algo,
                    f"{gem.simulated_time:,.0f}",
                    f"{sym.simulated_time:,.0f}",
                    f"{sp:.2f}",
                ]
            )
    return rows, sps


@pytest.mark.benchmark(group="table3")
def test_table3_large_graphs(benchmark):
    rows, sps = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    text = format_table(
        "Table 3: Large web graphs, 10 machines (simulated units)",
        ["Graph", "App", "Gemini", "SympleG.", "Speedup"],
        rows,
        note=(
            "paper: MIS/K-core ~1.75x, sampling 1.25-1.34x, "
            "BFS on cl 1.00x (bottom-up rarely chosen)"
        ),
    )
    emit("table3", text)

    # Dependency-heavy pull algorithms win on both graphs.
    for ds in ("gsh", "cl"):
        assert sps[(ds, "mis")] > 1.05
        assert sps[(ds, "kcore")] > 1.05
    # BFS on cl: the chain-dominated structure keeps the frontier thin,
    # so the bottom-up optimization barely engages (paper: 1.00x).
    assert sps[("cl", "bfs")] < sps[("gsh", "mis")]
    assert sps[("cl", "bfs")] < 1.3
