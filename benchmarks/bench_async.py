"""Async priority-bucket scheduler vs the synchronous supersteps.

Runs the async-capable algorithms on a skewed R-MAT under both
execution modes and reports what the redesign promises:

* **equivalence** — BFS, SSSP, and CC are monotone, so the async
  fixpoint digest must equal the synchronous one bit for bit; the run
  exits nonzero on the first mismatch;
* **selective activation** — delta-PageRank at matched accuracy
  (sync power iteration to ``--pr-tolerance``, async residual push to
  the matching ``stop_mass``) must spend *fewer* vertex activations
  than the power iteration, and its L1 distance to a high-precision
  reference must stay within the documented
  :attr:`~repro.engine.async_mode.AsyncPageRankResult.epsilon` bound;
* **determinism** — one seeded async run per executor kind, digests
  compared bit for bit.

``--smoke`` is the CI entry point: a small graph, every gate armed,
and the JSON report written for the artifact upload.

Writes ``benchmarks/results/BENCH_async.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.api import RunConfig, Session
from repro.algorithms import pagerank
from repro.engine import make_engine
from repro.engine.async_mode import async_pagerank
from repro.graph.generators import random_weights, rmat

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: the monotone algorithms whose async fixpoint must match sync's
EXACT_ALGORITHMS = ("bfs", "cc", "sssp")


def run_mode(graph, algorithm, mode, args, executor="serial"):
    config = RunConfig(
        engine=args.engine,
        algorithm=algorithm,
        machines=args.machines,
        mode=mode,
        seed=args.seed,
        sources=(args.root,) if algorithm in ("bfs", "sssp") else None,
        executor=executor,
        workers=args.workers,
    )
    t0 = time.perf_counter()
    with Session(graph, config) as session:
        result = session.run()
    return result, time.perf_counter() - t0


def bench_exact(graph, weighted, args):
    """Sync-vs-async rows for the bit-identical algorithms."""
    rows = []
    failures = []
    for algorithm in EXACT_ALGORITHMS:
        g = weighted if algorithm == "sssp" else graph
        sync, sync_wall = run_mode(g, algorithm, "sync", args)
        awr, async_wall = run_mode(g, algorithm, "async", args)
        ok = awr.fixpoint == sync.fixpoint
        if not ok:
            failures.append({
                "algorithm": algorithm,
                "sync_fixpoint": sync.fixpoint,
                "async_fixpoint": awr.fixpoint,
            })
        rows.append({
            "algorithm": algorithm,
            "fixpoint_match": ok,
            "sync_simulated_time": sync.simulated_time,
            "async_simulated_time": awr.simulated_time,
            "sync_wall_seconds": sync_wall,
            "async_wall_seconds": async_wall,
            "async_buckets": awr.extra["async_buckets"],
            "async_waves": awr.extra["async_waves"],
            "async_activations": awr.extra["activations"],
        })
    return rows, failures


def bench_pagerank(graph, args):
    """Matched-accuracy activation economics for delta-PageRank."""
    engine = make_engine(args.engine, graph, args.machines)
    reference = pagerank(engine, iterations=2000, tolerance=1e-15)

    engine = make_engine(args.engine, graph, args.machines)
    t0 = time.perf_counter()
    sync = pagerank(engine, iterations=1000, tolerance=args.pr_tolerance)
    sync_wall = time.perf_counter() - t0
    n_active = int((graph.in_degrees() > 0).sum())
    sync_activations = sync.iterations * n_active
    sync_l1 = float(np.abs(sync.rank - reference.rank).sum())

    engine = make_engine(args.engine, graph, args.machines)
    t0 = time.perf_counter()
    awr = async_pagerank(
        engine, seed=args.seed, stop_mass=args.pr_tolerance
    )
    async_wall = time.perf_counter() - t0
    async_l1 = float(np.abs(awr.rank - reference.rank).sum())

    return {
        "n_active": n_active,
        "pr_tolerance": args.pr_tolerance,
        "sync_iterations": sync.iterations,
        "sync_activations": sync_activations,
        "sync_l1_error": sync_l1,
        "sync_wall_seconds": sync_wall,
        "async_buckets": awr.buckets,
        "async_waves": awr.waves,
        "async_activations": awr.activations,
        "async_l1_error": async_l1,
        "async_epsilon_bound": awr.epsilon,
        "async_wall_seconds": async_wall,
        "activation_ratio": awr.activations / sync_activations,
        "fewer_activations": awr.activations < sync_activations,
        "within_epsilon": async_l1 <= awr.epsilon,
    }


def bench_determinism(graph, args):
    """Seeded async digests across executors, compared bit for bit."""
    digests = {}
    for executor in args.executors:
        result, _ = run_mode(
            graph, "cc", "async", args, executor=executor
        )
        digests[executor] = result.digest()
    return {
        "algorithm": "cc",
        "digests": digests,
        "identical": len(set(digests.values())) == 1,
    }


def print_report(report):
    graph = report["graph"]
    print(
        f"async scheduler on skewed R-MAT |V|={graph['num_vertices']} "
        f"|E|={graph['num_edges']} "
        f"(a={graph['a']}, {report['config']['machines']} machines)"
    )
    header = (
        f"{'algorithm':>10} {'fixpoint':>9} {'buckets':>8} {'waves':>7} "
        f"{'activations':>12} {'t_sync':>9} {'t_async':>9}"
    )
    print(header)
    print("-" * len(header))
    for r in report["exact"]:
        print(
            f"{r['algorithm']:>10} "
            f"{'match' if r['fixpoint_match'] else 'DIVERGED':>9} "
            f"{int(r['async_buckets']):>8} {int(r['async_waves']):>7} "
            f"{int(r['async_activations']):>12} "
            f"{r['sync_simulated_time']:>9.1f} "
            f"{r['async_simulated_time']:>9.1f}"
        )
    pr = report["pagerank"]
    print("-" * len(header))
    print(
        f"pagerank: sync {pr['sync_activations']} activations "
        f"({pr['sync_iterations']} sweeps x {pr['n_active']} active) "
        f"vs async {pr['async_activations']} "
        f"({pr['activation_ratio']:.2f}x)"
    )
    print(
        f"pagerank error: sync L1 {pr['sync_l1_error']:.2e}, "
        f"async L1 {pr['async_l1_error']:.2e} "
        f"(bound {pr['async_epsilon_bound']:.2e})"
    )
    det = report["determinism"]
    print(
        f"determinism ({'/'.join(det['digests'])}): "
        f"{'identical' if det['identical'] else 'DIVERGED'}"
    )
    print(f"gate: {report['gate']}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=12,
                        help="rmat scale (default 12)")
    parser.add_argument("--edge-factor", type=int, default=4)
    parser.add_argument("--skew", type=float, default=0.7,
                        help="rmat 'a' parameter (default 0.7)")
    parser.add_argument("--engine", default="symple",
                        choices=("symple", "gemini", "single"))
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--executors", nargs="+",
                        default=("serial", "thread", "process"))
    parser.add_argument("--root", type=int, default=-1,
                        help="BFS/SSSP root (-1: highest-degree vertex)")
    parser.add_argument("--pr-tolerance", type=float, default=1e-6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration, every gate armed")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale = min(args.scale, 10)
        args.executors = ("serial", "thread")

    side = (1.0 - args.skew) / 3.0
    graph = rmat(
        scale=args.scale, edge_factor=args.edge_factor,
        a=args.skew, b=side, c=side, seed=args.seed,
    )
    weighted = random_weights(graph, seed=args.seed)
    if args.root < 0 or graph.out_degrees()[args.root] == 0:
        args.root = int(np.argmax(graph.out_degrees()))

    exact_rows, failures = bench_exact(graph, weighted, args)
    pr = bench_pagerank(graph, args)
    det = bench_determinism(graph, args)

    ok = (
        not failures
        and pr["fewer_activations"]
        and pr["within_epsilon"]
        and det["identical"]
    )
    report = {
        "bench": "async",
        "graph": {
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "a": args.skew,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": args.seed,
        },
        "config": {
            "engine": args.engine,
            "machines": args.machines,
            "seed": args.seed,
            "root": args.root,
        },
        "exact": exact_rows,
        "pagerank": pr,
        "determinism": det,
        "failures": failures,
        "gate": "ok" if ok else "FAILED",
    }
    print_report(report)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_async.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")

    if not ok:
        print("FAIL: async gates did not hold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
