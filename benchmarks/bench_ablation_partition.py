"""Ablation: partition strategy sweep (the paper's D-Galois protocol).

Section 7.1: "We follow the optimization instructions in D-Galois by
running all partition strategies provided and report the best one as
the baseline."  This bench runs that sweep for the D-Galois engine and
also reports SympleGraph over its canonical edge-cut against the
alternative partitions — demonstrating the paper's claim that the
dependency technique applies to vertex-cut too (Section 2.2).
"""

from __future__ import annotations

import pytest

from _shared import emit
from repro.bench import dataset, format_table
from repro.engine import DGaloisEngine, SympleGraphEngine, SympleOptions
from repro.partition import (
    CartesianVertexCut,
    HashVertexCut,
    HybridCut,
    OutgoingEdgeCut,
)

STRATEGIES = {
    "cartesian-vc": CartesianVertexCut(),
    "hash-vc": HashVertexCut(),
    "outgoing-ec": OutgoingEdgeCut(),
    "hybrid": HybridCut(threshold=8),
}


def build_sweep():
    from repro.algorithms import mis

    g = dataset("s27")
    rows = []
    times = {}
    for name, strategy in STRATEGIES.items():
        part_d = strategy.partition(g, 16)
        dgalois = DGaloisEngine(part_d)
        mis(dgalois, seed=1)
        t_d = dgalois.execution_time()

        part_s = strategy.partition(g, 16)
        symple = SympleGraphEngine(
            part_s, options=SympleOptions(degree_threshold=4)
        )
        mis(symple, seed=1)
        t_s = symple.execution_time()

        times[name] = (t_d, t_s)
        rows.append([name, f"{t_d:,.0f}", f"{t_s:,.0f}"])
    return rows, times


@pytest.mark.benchmark(group="ablation-partition")
def test_partition_sweep(benchmark):
    rows, times = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    best_d = min(times.values(), key=lambda t: t[0])[0]
    text = format_table(
        "Ablation: partition strategies, MIS/s27, 16 machines",
        ["partition", "D-Galois", "SympleGraph"],
        rows,
        note=(
            "D-Galois baseline = best partition (the paper's protocol); "
            "SympleGraph's dependency propagation works on every strategy"
        ),
    )
    emit("ablation_partition", text)

    # SympleGraph beats D-Galois' best partition on each strategy.
    for name, (t_d, t_s) in times.items():
        assert t_s < t_d, name
    # ...and even against D-Galois' best overall.
    assert min(t_s for _, t_s in times.values()) < best_d
