"""Micro-benchmarks of the library itself (wall-clock, not simulated).

Unlike the paper-table benches — which report *simulated* time — these
measure the Python implementation's real throughput: graph
construction, partitioning, one dense pull per engine, and UDF
instrumentation.  Useful for tracking performance regressions of the
reproduction code itself.
"""

from __future__ import annotations

import pytest

from repro.algorithms.bfs import bottom_up_signal
from repro.analysis import instrument_signal
from repro.engine import GeminiEngine, SympleGraphEngine, SympleOptions
from repro.graph import rmat, to_undirected
from repro.partition import OutgoingEdgeCut

SCALE = 10
MACHINES = 8


@pytest.fixture(scope="module")
def graph():
    return to_undirected(rmat(scale=SCALE, edge_factor=16, seed=7))


@pytest.fixture(scope="module")
def partition(graph):
    return OutgoingEdgeCut().partition(graph, MACHINES)


def _pull_once(engine_cls, partition, **kwargs):
    import numpy as np

    engine = engine_cls(partition, **kwargs)
    s = engine.new_state()
    s.add_array("frontier", bool, True)
    s.add_array("parent", np.int64, -1)

    def slot(v, value, st):
        if st.parent[v] < 0:
            st.parent[v] = value
            return True
        return False

    active = partition.graph.in_degrees() > 0
    engine.pull(bottom_up_signal, slot, s, active, sync_bytes=0)
    return engine.counters.edges_traversed


@pytest.mark.benchmark(group="micro")
def test_micro_graph_generation(benchmark):
    graph = benchmark(lambda: rmat(scale=SCALE, edge_factor=16, seed=7))
    assert graph.num_vertices == 1 << SCALE


@pytest.mark.benchmark(group="micro")
def test_micro_partitioning(benchmark, graph):
    part = benchmark(lambda: OutgoingEdgeCut().partition(graph, MACHINES))
    assert part.num_machines == MACHINES


@pytest.mark.benchmark(group="micro")
def test_micro_gemini_pull(benchmark, partition):
    edges = benchmark.pedantic(
        lambda: _pull_once(GeminiEngine, partition), rounds=3, iterations=1
    )
    assert edges > 0


@pytest.mark.benchmark(group="micro")
def test_micro_symple_pull(benchmark, partition):
    edges = benchmark.pedantic(
        lambda: _pull_once(
            SympleGraphEngine,
            partition,
            options=SympleOptions(degree_threshold=0),
        ),
        rounds=3,
        iterations=1,
    )
    assert edges > 0


@pytest.mark.benchmark(group="micro")
def test_micro_instrumentation(benchmark):
    analyzed = benchmark(lambda: instrument_signal(bottom_up_signal))
    assert analyzed.instrumented is not None
