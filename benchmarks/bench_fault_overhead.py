"""Fault-tolerance overhead sweep: checkpoint interval x crash schedule.

For each checkpoint interval the sweep runs K-core and BFS on the
SympleGraph engine under an injected machine crash, and reports the
simulated-time overhead against the fault-free run, the checkpoint
traffic, and the recovery work.  Every faulted run is asserted to be
result-identical to its fault-free twin — the recovery guarantee the
unit suite checks in miniature, exercised here at benchmark scale.

Usage::

    python benchmarks/bench_fault_overhead.py            # full sweep
    python benchmarks/bench_fault_overhead.py --smoke    # CI-sized

Also runnable under pytest (``pytest benchmarks/bench_fault_overhead.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from _shared import emit
from repro.api import Checkpointing, RunConfig, Session
from repro.bench import dataset, format_table
from repro.fault import CrashFault, FaultPlan

FULL = {
    "dataset": "s27",
    "intervals": (0, 1, 4, 16),
    "crash_iteration": 1,  # kcore/s27 converges in 2 rounds; crash in round 2
    "kcore_k": 2,
}
SMOKE = {
    "dataset": "tw",
    "intervals": (0, 2),
    "crash_iteration": 2,
    "kcore_k": 2,
}


def _run(algorithm: str, config: dict, plan: Optional[FaultPlan],
         interval: int):
    run_config = RunConfig(
        engine="symple",
        algorithm=algorithm,
        machines=8,
        seed=1,
        bfs_roots=1,
        kcore_k=config["kcore_k"],
        faults=plan,
        checkpointing=Checkpointing(interval=interval),
    )
    with Session(dataset(config["dataset"]), run_config) as session:
        return session.run()


def build_sweep(config: dict):
    rows: List[List[object]] = []
    checks: List[bool] = []
    for algorithm in ("kcore", "bfs"):
        baseline = _run(algorithm, config, None, 0)
        # kcore's pull is circulant: crash mid-circulation (step 1);
        # BFS alternates push/pull, so crash at the phase boundary.
        step = 1 if algorithm == "kcore" else None
        plan = FaultPlan(
            seed=7,
            crashes=(
                CrashFault(
                    machine=1, iteration=config["crash_iteration"], step=step
                ),
            ),
        )
        for interval in config["intervals"]:
            run = _run(algorithm, config, plan, interval)
            overhead = run.simulated_time / baseline.simulated_time - 1.0
            ckpt_bytes = run.total_bytes - baseline.total_bytes
            checks.append(_same_result(algorithm, baseline, run))
            rows.append(
                [
                    algorithm,
                    interval or "off",
                    f"{int(run.extra.get('fault_recoveries', 0))}",
                    f"{int(run.extra.get('fault_replayed_supersteps', 0))}",
                    f"{ckpt_bytes:,}",
                    f"{overhead * 100.0:+.1f}%",
                ]
            )
    return rows, checks


def _same_result(algorithm: str, baseline, run) -> bool:
    """Faulted and fault-free runs must agree on the algorithm output."""
    if algorithm == "kcore":
        keys = ("core_size", "rounds")
    else:
        keys = ("avg_reached",)
    return all(baseline.extra[k] == run.extra[k] for k in keys)


def run_bench(config: dict) -> int:
    rows, checks = build_sweep(config)
    text = format_table(
        f"Fault-tolerance overhead ({config['dataset']}, 8 machines, "
        f"crash at iteration {config['crash_iteration']})",
        ["algorithm", "ckpt.every", "recoveries", "replayed", "extra.bytes",
         "time.overhead"],
        rows,
        note="interval 'off' recovers by restart-from-scratch; "
        "results are identical to the fault-free run in every row",
    )
    emit("fault_overhead", text)
    if not all(checks):
        print("ERROR: a faulted run diverged from the fault-free result")
        return 1
    return 0


def test_fault_overhead_sweep():
    """Pytest entry point (smoke-sized so suites stay fast)."""
    assert run_bench(SMOKE) == 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dataset and fewer intervals (CI-sized)",
    )
    args = parser.parse_args(argv)
    return run_bench(SMOKE if args.smoke else FULL)


if __name__ == "__main__":
    sys.exit(main())
