"""Figure 11: piecewise contribution of the two optimizations.

Four SympleGraph variants over circulant scheduling: none (baseline),
double buffering (DB), differentiated propagation (DP), and DB+DP.
Expected shape (paper): DB alone helps everywhere; DP alone is roughly
neutral (synchronization still bottlenecks); DB+DP is the best.
Normalized per graph to the circulant-only baseline; geomean over the
dependency algorithms.
"""

from __future__ import annotations

import pytest

from _shared import PAPER_DATASETS, cached_run, emit, options_key
from repro.bench import format_table, geomean

ALGOS = ("bfs", "kcore", "mis")

VARIANTS = {
    "base": options_key(differentiated=False, double_buffering=False),
    "DB": options_key(differentiated=False, double_buffering=True),
    "DP": options_key(differentiated=True, double_buffering=False),
    "DB+DP": options_key(differentiated=True, double_buffering=True),
}


def build_fig11():
    table = {}
    for ds in PAPER_DATASETS:
        base_times = {
            algo: cached_run(
                "symple", ds, algo, options_key=VARIANTS["base"]
            ).simulated_time
            for algo in ALGOS
        }
        for name, key in VARIANTS.items():
            if name == "base":
                continue
            normalized = []
            for algo in ALGOS:
                t = cached_run(
                    "symple", ds, algo, options_key=key
                ).simulated_time
                normalized.append(t / base_times[algo])
            table[(ds, name)] = geomean(normalized)
    return table


@pytest.mark.benchmark(group="fig11")
def test_fig11_optimization_breakdown(benchmark):
    table = benchmark.pedantic(build_fig11, rounds=1, iterations=1)
    rows = [
        [
            ds,
            f"{table[(ds, 'DB')]:.3f}",
            f"{table[(ds, 'DP')]:.3f}",
            f"{table[(ds, 'DB+DP')]:.3f}",
        ]
        for ds in PAPER_DATASETS
    ]
    text = format_table(
        "Figure 11: runtime normalized to circulant-only SympleGraph",
        ["Graph", "DB", "DP", "DB+DP"],
        rows,
        note=(
            "paper shape: DB < 1 everywhere, DP alone ~1, "
            "DB+DP best overall"
        ),
    )
    emit("fig11", text)

    for ds in PAPER_DATASETS:
        db = table[(ds, "DB")]
        dp = table[(ds, "DP")]
        both = table[(ds, "DB+DP")]
        assert db < 1.0, f"{ds}: DB {db:.3f}"
        assert dp < 1.05, f"{ds}: DP {dp:.3f}"  # ~neutral, never much worse
        assert both <= db + 0.03, f"{ds}: DB+DP {both:.3f} vs DB {db:.3f}"
        assert both < 1.0
