"""Shared infrastructure for the paper-table benchmarks.

Expensive (engine, algorithm, dataset) runs are cached per process so
Tables 4, 5 and 6 — which report different columns of the same
experiment matrix — only execute it once.  Every bench prints a
paper-style table and appends it to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional, Tuple

from repro.api import RunConfig, Session
from repro.bench import RunResult, dataset
from repro.engine import SympleOptions

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

PAPER_DATASETS = ("tw", "fr", "s27", "s28", "s29")
PAPER_ALGORITHMS = ("bfs", "kcore", "mis", "kmeans", "sampling")

# Experiment protocol, scaled down from the paper's 64 roots / 20 reps.
BFS_ROOTS = 2
KMEANS_ROUNDS = 1
KCORE_K = 2  # 2-core, the SCC subroutine the paper highlights


@lru_cache(maxsize=None)
def cached_run(
    engine: str,
    dataset_name: str,
    algorithm: str,
    num_machines: int = 16,
    options_key: Optional[Tuple] = None,
    seed: int = 1,
    kcore_k: int = KCORE_K,
) -> RunResult:
    """Run one experiment, memoized on its full configuration."""
    options = None
    if options_key is not None:
        differentiated, double_buffering, schedule = options_key
        options = SympleOptions(
            differentiated=differentiated,
            double_buffering=double_buffering,
            schedule=schedule,
        )
    config = RunConfig(
        engine=engine,
        algorithm=algorithm,
        machines=num_machines,
        seed=seed,
        options=options,
        bfs_roots=BFS_ROOTS,
        kcore_k=kcore_k,
        kmeans_rounds=KMEANS_ROUNDS,
    )
    with Session(dataset(dataset_name), config) as session:
        return session.run()


def options_key(
    differentiated: bool = True,
    double_buffering: bool = True,
    schedule: str = "circulant",
) -> Tuple:
    return (differentiated, double_buffering, schedule)


def emit(table_name: str, text: str) -> None:
    """Print a table and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{table_name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


def export_metrics(name: str, registry) -> str:
    """Persist a metric registry as JSON next to the bench tables.

    Returns the path written, so CI can pick the file up as an
    artifact alongside ``BENCH_wallclock.json``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}_metrics.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(registry.export_json_str() + "\n")
    return path
