"""Table 2: K-core runtime for K in {4, 8, 16, 32, 64} on tw and fr.

Expected shape: SympleGraph's speedup over Gemini is consistent across
K (paper: 1.38x-1.62x regardless of K).
"""

from __future__ import annotations

import pytest

from _shared import cached_run, emit
from repro.bench import format_table, geomean, speedup

KS = (4, 8, 16, 32, 64)


def build_table2():
    rows = []
    speedups = []
    for ds in ("tw", "fr"):
        for k in KS:
            gem = cached_run("gemini", ds, "kcore", num_machines=8, kcore_k=k)
            sym = cached_run("symple", ds, "kcore", num_machines=8, kcore_k=k)
            sp = speedup(gem, sym)
            speedups.append(sp)
            rows.append(
                [
                    ds,
                    k,
                    f"{gem.simulated_time:,.0f}",
                    f"{sym.simulated_time:,.0f}",
                    f"{sp:.2f}",
                ]
            )
    return rows, speedups


@pytest.mark.benchmark(group="table2")
def test_table2_kcore_vs_k(benchmark):
    rows, speedups = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    text = format_table(
        "Table 2: K-core runtime vs K (8 machines, simulated units)",
        ["Graph", "K", "Gemini", "SympleG.", "Speedup"],
        rows,
        note=(
            f"geomean speedup: {geomean(speedups):.2f}x "
            "(paper: 1.42-1.62x, consistent across K)"
        ),
    )
    emit("table2", text)

    # Consistency: SympleGraph wins for every K.
    assert all(sp > 1.0 for sp in speedups)
    # ...and the spread is modest (no K where the technique collapses).
    assert max(speedups) / min(speedups) < 2.5
