#!/usr/bin/env python
"""Web-graph structure analysis: SCC bow-tie, coreness, and PageRank.

The classic web-graph pipeline (and the paper's SCC motivation for
K-core, Section 7.1): find the giant strongly connected component,
rank pages, and measure the engagement core — all on the simulated
distributed engines.

Run:  python examples/web_graph_structure.py
"""

import numpy as np

from repro import coreness, make_engine, pagerank, scc
from repro.graph import rmat, to_undirected


def main() -> None:
    # A directed web-like graph (links are one-way).
    web = rmat(scale=10, edge_factor=12, seed=71)
    print(f"web graph: {web.num_vertices} pages, {web.num_edges} links")

    # 1. Strongly connected components (FW-BW-Trim on two engines;
    #    reachability sweeps are dependency-accelerated bottom-up BFS).
    metrics = make_engine("gemini", web, 8)
    result = scc(web, engine_kind="symple", num_machines=8,
                 collect_metrics=metrics)
    sizes = np.bincount(
        np.unique(result.component, return_inverse=True)[1]
    )
    giant = int(sizes.max())
    print(
        f"SCCs: {result.num_components} components; giant SCC has "
        f"{giant} pages ({giant / web.num_vertices:.0%} of the web)"
    )
    print(
        f"  reachability work: {metrics.counters.edges_traversed:,} "
        f"edges scanned, {metrics.counters.total_bytes:,} bytes moved"
    )

    # 2. PageRank over the full link graph.
    engine = make_engine("symple", web, 8)
    ranks = pagerank(engine, iterations=15)
    top = np.argsort(ranks.rank)[-5:][::-1]
    print(f"top pages by rank: {top.tolist()}")

    # 3. Engagement cores on the symmetrized graph.
    core_numbers = coreness(to_undirected(web))
    print(
        f"coreness: max core {core_numbers.max()}, "
        f"{int((core_numbers >= 8).sum())} pages in the 8-core"
    )

    # Pages that are both high-rank and deep-core are the durable hubs.
    hubs = [int(v) for v in top if core_numbers[v] >= 8]
    print(f"high-rank deep-core hubs: {hubs}")


if __name__ == "__main__":
    main()
