#!/usr/bin/env python
"""DeepWalk-style random walks built on weighted neighbor sampling.

Graph sampling is the paper's Figure 3d workload: it powers graph
machine-learning pipelines (DeepWalk, node2vec, GCNs).  Each walk step
is one distributed sampling pass — the prefix-sum scan whose
loop-carried *data* dependency SympleGraph propagates as a float per
vertex.  This example generates walk corpora and shows the per-step
cost difference against the Gemini two-phase implementation.

Run:  python examples/random_walks.py
"""

import numpy as np

from repro import make_engine, sample_neighbors
from repro.graph import rmat, to_undirected, with_vertex_weights


def walk_corpus(engine_kind: str, graph, walk_length: int, seed: int):
    """One walk per vertex: each sampling pass advances every walker by
    one hop (a "pull" formulation of simultaneous random walks)."""
    weights = with_vertex_weights(graph.num_vertices, seed=seed)
    walks = [np.arange(graph.num_vertices)]
    edges = 0
    dep_bytes = 0
    total_bytes = 0
    for step in range(walk_length):
        engine = make_engine(engine_kind, graph, num_machines=8)
        result = sample_neighbors(engine, vertex_weights=weights, seed=seed + step)
        edges += engine.counters.edges_traversed
        dep_bytes += engine.counters.dep_bytes
        total_bytes += engine.counters.total_bytes
        # walker at v moves to the sampled in-neighbor (or stays put)
        current = walks[-1]
        nxt = result.select[current]
        nxt = np.where(nxt >= 0, nxt, current)
        walks.append(nxt)
    corpus = np.stack(walks, axis=1)
    return corpus, edges, dep_bytes, total_bytes


def main() -> None:
    graph = to_undirected(rmat(scale=10, edge_factor=16, seed=99))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    walk_length = 4

    for kind in ("gemini", "symple"):
        corpus, edges, dep, total = walk_corpus(kind, graph, walk_length, seed=5)
        print(
            f"{kind:>7}: corpus {corpus.shape[0]} walks x "
            f"{corpus.shape[1]} hops | edges scanned {edges:,} | "
            f"dep bytes {dep:,} | total bytes {total:,}"
        )

    print()
    print("SympleGraph scans a fraction of the edges (it stops at the")
    print("prefix-sum crossing) but ships a float of dependency state per")
    print("vertex per step — the one workload where its total traffic can")
    print("exceed Gemini's (paper Table 6).")

    # Show a couple of walks.
    corpus, *_ = walk_corpus("symple", graph, walk_length, seed=5)
    print()
    for v in (0, 1, 2):
        print(f"walk from {v}: {' -> '.join(map(str, corpus[v]))}")


if __name__ == "__main__":
    main()
