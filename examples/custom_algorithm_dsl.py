#!/usr/bin/env python
"""Writing a new dependency-aware algorithm two ways.

The paper offers two authoring paths (Section 4.3): write a plain
signal UDF with a ``break`` and let the analyzer instrument it, or
express the fold explicitly with the ``fold_while`` DSL.  This example
implements *threshold influence probing* — "does vertex v have at
least T active in-neighbors?" (a building block of influence
maximization) — both ways, and shows they run identically.

Run:  python examples/custom_algorithm_dsl.py
"""

import numpy as np

from repro import fold_while, make_engine
from repro.analysis import explain_signal
from repro.graph import rmat, to_undirected

THRESHOLD = 5


# -- path 1: plain Python UDF; the analyzer finds `hits` + break -------

def influence_signal(v, nbrs, s, emit):
    hits = 0
    start = hits
    for u in nbrs:
        if s.active[u]:
            hits += 1
            if hits >= s.t:
                break
    if hits > start:
        emit(hits - start)


# -- path 2: the fold_while DSL ----------------------------------------

def influence_fold():
    return fold_while(
        initial=0,
        compose=lambda acc, u, v, s: acc + (1 if s.active[u] else 0),
        exit_when=lambda acc, u, v, s: acc >= s.t,
        on_exit=lambda acc, u, v, s, emit: emit(acc),
        on_finish=lambda acc, v, s, emit: emit(acc) if acc else None,
    )


def count_slot(v, value, s):
    s.count[v] += int(value)
    return False


def run(engine, signal, graph, seed=3):
    rng = np.random.default_rng(seed)
    s = engine.new_state()
    s.set("active", rng.random(graph.num_vertices) < 0.4)
    s.add_array("count", np.int64, 0)
    s.add_scalar("t", THRESHOLD)
    active_dst = graph.in_degrees() > 0
    engine.pull(signal, count_slot, s, active_dst, update_bytes=8,
                sync_bytes=0)
    return (s.count >= THRESHOLD), engine.counters.edges_traversed


def main() -> None:
    graph = to_undirected(rmat(scale=10, edge_factor=16, seed=17))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print()
    print(explain_signal(influence_signal))
    print()

    results = {}
    for name, signal in (("udf", influence_signal), ("dsl", influence_fold())):
        for kind in ("gemini", "symple"):
            engine = make_engine(kind, graph, num_machines=8)
            influential, edges = run(engine, signal, graph)
            results[(name, kind)] = influential
            print(
                f"{name}/{kind:>7}: {int(influential.sum())} vertices have "
                f">= {THRESHOLD} active in-neighbors | edges scanned {edges:,}"
            )

    same = all(
        np.array_equal(results[("udf", "gemini")], r)
        for r in results.values()
    )
    print()
    print(f"all four runs agree: {same}")


if __name__ == "__main__":
    main()
