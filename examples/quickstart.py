#!/usr/bin/env python
"""Quickstart: run direction-optimizing BFS on a simulated 16-machine
cluster with SympleGraph's precise loop-carried dependency, and compare
against the Gemini baseline.

Run:  python examples/quickstart.py
"""

from repro import bfs, make_engine, rmat
from repro.analysis import explain_signal
from repro.algorithms.bfs import bottom_up_signal
from repro.graph import to_undirected


def main() -> None:
    # 1. Build a skewed Graph500-style graph (~4k vertices, ~100k edges).
    graph = to_undirected(rmat(scale=12, edge_factor=16, seed=7))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. What does the SympleGraph analyzer see in the bottom-up BFS UDF?
    print()
    print(explain_signal(bottom_up_signal))

    # 3. Run BFS on both engines over the same 16-machine partition.
    print()
    results = {}
    for kind in ("gemini", "symple"):
        engine = make_engine(kind, graph, num_machines=16)
        result = bfs(engine, root=0)
        results[kind] = engine
        print(
            f"{kind:>7}: reached {result.reached} vertices in "
            f"{result.iterations} iterations "
            f"(directions: {' '.join(result.directions)})"
        )

    # 4. Compare the costs the paper's evaluation reports.
    gem, sym = results["gemini"].counters, results["symple"].counters
    print()
    print(f"edges traversed : gemini {gem.edges_traversed:,} -> "
          f"symple {sym.edges_traversed:,} "
          f"({sym.edges_traversed / gem.edges_traversed:.0%})")
    print(f"update bytes    : gemini {gem.update_bytes:,} -> "
          f"symple {sym.update_bytes:,}")
    print(f"dependency bytes: symple {sym.dep_bytes:,} "
          "(does not exist in Gemini)")
    t_gem = results["gemini"].execution_time()
    t_sym = results["symple"].execution_time()
    print(f"simulated time  : gemini {t_gem:,.0f} -> symple {t_sym:,.0f} "
          f"(speedup {t_gem / t_sym:.2f}x)")


if __name__ == "__main__":
    main()
