#!/usr/bin/env python
"""Inspect what the SympleGraph analyzer does to each paper UDF.

Prints, for all five evaluation algorithms plus the two no-dependency
controls, the analyzer verdict (control/data dependency, carried
variables) and the generated dependency-aware source — the Python
analogue of the clang source-to-source output in the paper's Figure 5.

Run:  python examples/compiler_inspection.py
"""

from repro.algorithms.bfs import bottom_up_signal
from repro.algorithms.cc import cc_signal
from repro.algorithms.kcore import kcore_signal
from repro.algorithms.kmeans import kmeans_signal
from repro.algorithms.mis import mis_signal
from repro.algorithms.pagerank import pagerank_signal
from repro.algorithms.sampling import sampling_signal
from repro.analysis import explain_signal

UDFS = [
    ("bottom-up BFS (Figure 1)", bottom_up_signal),
    ("MIS (Figure 3a)", mis_signal),
    ("K-core (Figure 3b)", kcore_signal),
    ("K-means (Figure 3c)", kmeans_signal),
    ("graph sampling (Figure 3d)", sampling_signal),
    ("connected components (control)", cc_signal),
    ("PageRank (control)", pagerank_signal),
]


def main() -> None:
    for title, udf in UDFS:
        banner = f"=== {title} " + "=" * max(0, 60 - len(title))
        print(banner)
        print(explain_signal(udf))
        print()


if __name__ == "__main__":
    main()
