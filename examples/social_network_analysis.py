#!/usr/bin/env python
"""Social-network analysis workload: community seeds via MIS and
engagement cores via K-core decomposition — the workloads the paper's
introduction motivates (social influence analysis, clustering).

Runs both on a Twitter-like graph (skewed core + long chain tail) on a
simulated 8-machine cluster and reports what SympleGraph's dependency
propagation saves.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import kcore, kcore_peel, make_engine, mis
from repro.bench import format_table
from repro.graph import attach_chain, degree_summary, rmat, to_undirected


def build_social_graph():
    core = to_undirected(rmat(scale=11, edge_factor=24, seed=2024))
    return attach_chain(core, chain_length=64)


def main() -> None:
    graph = build_social_graph()
    stats = degree_summary(graph, "in")
    print(
        f"social graph: {graph.num_vertices} users, {graph.num_edges} "
        f"follow-edges, max degree {stats.maximum}, median {stats.median:.0f}"
    )

    rows = []
    for kind in ("gemini", "symple"):
        engine = make_engine(kind, graph, num_machines=8)
        seeds = mis(engine, seed=1)
        mis_metrics = engine.counters.summary()
        mis_time = engine.execution_time()

        engine = make_engine(kind, graph, num_machines=8)
        core = kcore(engine, k=8)
        core_time = engine.execution_time()
        rows.append(
            [
                kind,
                seeds.size,
                core.size,
                f"{mis_metrics['edges_traversed']:,}",
                f"{mis_time:,.0f}",
                f"{core_time:,.0f}",
            ]
        )

    print()
    print(
        format_table(
            "Community seeds (MIS) and 8-core, 8 simulated machines",
            ["engine", "seeds", "core", "MIS edges", "MIS time", "core time"],
            rows,
            note="identical outputs; SympleGraph does strictly less work",
        )
    )

    # The linear peel baseline the paper compares in Table 2/4: on
    # social graphs with chain structure it beats the iterative
    # algorithm outright.
    peel = kcore_peel(graph, 8)
    print()
    print(
        f"linear peel (single thread): core={peel.size}, "
        f"simulated time {peel.simulated_time:,.0f} — "
        "the paper's parenthesized comparison"
    )

    # Who are the influencers? Top-degree members of the 8-core.
    engine = make_engine("symple", graph, num_machines=8)
    core = kcore(engine, k=8)
    members = np.flatnonzero(core.in_core)
    top = members[np.argsort(graph.in_degrees()[members])[-5:]][::-1]
    print(f"top core influencers by degree: {top.tolist()}")


if __name__ == "__main__":
    main()
