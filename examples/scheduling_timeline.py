#!/usr/bin/env python
"""Visualize circulant scheduling and the double-buffering overlap.

Prints the Figure 7 machine x step matrix, then replays one MIS pull
iteration through the cost model's discrete-event recursion and shows
each machine's step timeline with and without double buffering — the
latency that Figure 9's optimization hides.

Run:  python examples/scheduling_timeline.py
"""

import numpy as np

from repro.algorithms import mis
from repro.engine import SympleGraphEngine, SympleOptions
from repro.graph import rmat, to_undirected
from repro.partition import OutgoingEdgeCut
from repro.runtime import CostModel
from repro.runtime.trace import render_schedule, step_timeline

MACHINES = 4


def main() -> None:
    print("Circulant schedule (Figure 7): which partition each machine")
    print("processes at each step — columns and rows are permutations.\n")
    print(render_schedule(MACHINES))

    graph = to_undirected(rmat(scale=10, edge_factor=16, seed=33))
    engine = SympleGraphEngine(
        OutgoingEdgeCut().partition(graph, MACHINES),
        options=SympleOptions(degree_threshold=0),
    )
    mis(engine, seed=1)
    pull = next(
        rec
        for rec in engine.counters.iterations
        if rec.mode == "pull" and len(rec.steps) == MACHINES
    )

    # Exaggerate network latency so the overlap is visible.
    model = CostModel(latency=400.0)
    for db in (False, True):
        timeline = step_timeline(pull, model, double_buffering=db)
        label = "with" if db else "without"
        print(f"\nStep timeline {label} double buffering "
              f"(makespan {timeline.makespan:,.0f}):")
        for m in range(MACHINES):
            bars = "  ".join(
                f"s{s}:[{timeline.start[s, m]:7.0f} ->"
                f"{timeline.finish[s, m]:7.0f}]"
                for s in range(MACHINES)
            )
            print(f"  M{m}  {bars}")
        waits = timeline.wait_time()
        print(f"  idle time per machine: "
              f"{np.array2string(waits, precision=0)}")

    print()
    print("Double buffering ships each step's dependency in two halves,")
    print("so the receiver starts on group A while group B is still in")
    print("flight — the gaps between steps shrink (Figure 9).")


if __name__ == "__main__":
    main()
