"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs to build an editable wheel; when that is
unavailable offline, `python setup.py develop` installs the same
editable package using only setuptools.
"""

from setuptools import setup

setup()
