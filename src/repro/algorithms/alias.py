"""Alias-method weighted sampling (Walker/Vose).

The paper's footnote 3: "There are other sampling algorithms, such as
the alias method.  It builds [an] alias table ... to exhibit a similar
pattern that searches [the] prefix-sum array."  This module provides
the comparator: O(degree) table construction per vertex, O(1) draws —
the right tool when many samples are drawn per vertex, whereas the
paper's prefix-sum scan (one pass, break at the crossing) wins for the
single-sample-per-vertex workload the evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["AliasTable", "build_alias_tables", "sample_neighbors_alias"]


@dataclass
class AliasTable:
    """Vose alias table over an item set with given weights."""

    items: np.ndarray
    prob: np.ndarray  # acceptance probability per slot
    alias: np.ndarray  # fallback item index per slot

    @classmethod
    def build(cls, items: Sequence[int], weights: Sequence[float]) -> "AliasTable":
        items = np.asarray(items, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if items.size != weights.size:
            raise GraphError("items and weights must be parallel")
        if items.size == 0:
            raise GraphError("cannot build an alias table over nothing")
        if np.any(weights <= 0):
            raise GraphError("alias weights must be strictly positive")

        n = items.size
        scaled = weights * n / weights.sum()
        prob = np.ones(n)
        alias = np.arange(n)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        for i in small + large:
            prob[i] = 1.0
        return cls(items=items, prob=prob, alias=alias)

    def draw(self, rng: np.random.Generator) -> int:
        """One O(1) weighted draw."""
        slot = int(rng.integers(0, self.items.size))
        if rng.random() < self.prob[slot]:
            return int(self.items[slot])
        return int(self.items[self.alias[slot]])

    def draw_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        slots = rng.integers(0, self.items.size, size=count)
        accept = rng.random(count) < self.prob[slots]
        chosen = np.where(accept, slots, self.alias[slots])
        return self.items[chosen]


def build_alias_tables(
    graph: CSRGraph, vertex_weights: np.ndarray
) -> dict[int, AliasTable]:
    """One alias table per vertex with in-edges (the construction step
    whose prefix-sum search shares the paper's code pattern)."""
    weights = np.asarray(vertex_weights, dtype=np.float64)
    tables: dict[int, AliasTable] = {}
    for v in range(graph.num_vertices):
        nbrs = graph.in_neighbors(v)
        if nbrs.size:
            tables[v] = AliasTable.build(nbrs, weights[nbrs])
    return tables


def sample_neighbors_alias(
    graph: CSRGraph,
    vertex_weights: np.ndarray,
    seed: int = 0,
    draws_per_vertex: int = 1,
) -> np.ndarray:
    """Single-machine comparator for :func:`repro.sample_neighbors`.

    Returns an array of shape ``(num_vertices, draws_per_vertex)`` with
    -1 for vertices without in-edges.
    """
    rng = np.random.default_rng(seed)
    tables = build_alias_tables(graph, vertex_weights)
    out = np.full((graph.num_vertices, draws_per_vertex), -1, dtype=np.int64)
    for v, table in tables.items():
        out[v] = table.draw_many(rng, draws_per_vertex)
    return out
