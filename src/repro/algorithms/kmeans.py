"""Graph-based K-means clustering (paper Figure 3c).

Distances are unweighted shortest-path lengths, so the assignment step
is a multi-source BFS: an unassigned vertex adopts the cluster of the
first assigned neighbor it finds — the loop-carried dependency.  The
paper's four-step loop (choose centers, assign, score, repeat) is
reproduced; re-centering uses the highest-degree member as the new
center, a deterministic 1-median stand-in documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.engine.base import BaseEngine
from repro.errors import ConvergenceError

__all__ = ["kmeans", "kmeans_signal", "KMeansResult"]


def kmeans_signal(v, nbrs, s, emit):
    """Adopt the cluster of the first assigned neighbor."""
    for u in nbrs:
        if s.assigned[u]:
            emit(s.cluster[u])
            break


def _assign_slot(v, value, s):
    if s.assigned[v]:
        return False
    s.assigned[v] = True
    s.cluster[v] = int(value)
    s.dist[v] = s.level
    return True


@dataclass
class KMeansResult:
    """Output of a graph K-means run."""

    cluster: np.ndarray
    distance: np.ndarray
    centers: np.ndarray
    rounds: int
    cost_history: List[float] = field(default_factory=list)

    @property
    def assigned_count(self) -> int:
        return int((self.cluster >= 0).sum())


def kmeans(
    engine: BaseEngine,
    num_clusters: int | None = None,
    rounds: int = 4,
    seed: int = 0,
) -> KMeansResult:
    """Run graph K-means for a fixed number of rounds.

    ``num_clusters`` defaults to ``sqrt(|V|)`` as in the evaluation
    (Section 7.1).
    """
    graph = engine.graph
    n = graph.num_vertices
    if n == 0:
        raise ValueError("cannot cluster an empty graph")
    c = num_clusters if num_clusters is not None else max(1, int(np.sqrt(n)))
    if not 1 <= c <= n:
        raise ValueError("num_clusters must be in [1, num_vertices]")

    rng = np.random.default_rng(seed)
    centers = rng.choice(n, size=c, replace=False)
    degrees = graph.in_degrees()

    s = engine.new_state()
    s.add_array("assigned", bool, False)
    s.add_array("cluster", np.int64, -1)
    s.add_array("dist", np.int64, -1)
    s.add_scalar("level", 0)

    cost_history: List[float] = []
    for _ in range(rounds):
        s.assigned[:] = False
        s.cluster[:] = -1
        s.dist[:] = -1
        s.assigned[centers] = True
        s.cluster[centers] = np.arange(c)
        s.dist[centers] = 0
        s.level = 0
        engine.sync_state(centers, sync_bytes=8)

        # Assignment: multi-source BFS layers until no vertex adopts.
        for _layer in range(n + 1):
            s.level = s.level + 1
            active = ~s.assigned
            if not active.any():
                break
            result = engine.pull(
                kmeans_signal,
                _assign_slot,
                s,
                active,
                update_bytes=8,
                sync_bytes=4,
            )
            if not result.any_changed:
                break
        else:  # pragma: no cover - defensive
            raise ConvergenceError("K-means assignment failed to converge")

        cost_history.append(float(s.dist[s.dist >= 0].sum()))

        # Re-center: highest-degree member (deterministic 1-median proxy).
        new_centers = centers.copy()
        for cid in range(c):
            members = np.flatnonzero(s.cluster == cid)
            if members.size == 0:
                continue
            best = members[np.argmax(degrees[members])]
            new_centers[cid] = best
        # Small all-reduce to agree on the new centers.
        engine.sync_state(new_centers, sync_bytes=8)
        centers = new_centers

    return KMeansResult(
        cluster=s.cluster.copy(),
        distance=s.dist.copy(),
        centers=centers,
        rounds=rounds,
        cost_history=cost_history,
    )
