"""Weighted neighbor sampling (paper Figure 3d).

For every vertex, pick one incoming neighbor with probability
proportional to the neighbor's weight, by scanning the neighbor
sequence and stopping where the running prefix sum crosses a uniform
random threshold.  The prefix sum is loop-carried *data* dependency —
4 bytes per vertex of dependency traffic, which is why sampling is the
one algorithm whose total communication can exceed Gemini's (Table 6).

Engines without dependency propagation cannot break early (a machine
never knows the weight mass accumulated on earlier machines), so the
Gemini path scans everything, ships per-machine partial sums to the
master, and pays a second targeted scan on the machine that owns the
crossing — the reference two-phase implementation.  D-Galois has no
reference implementation (Table 4 reports N/A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.base import BaseEngine
from repro.engine.single_thread import SingleThreadEngine
from repro.errors import UnsupportedAlgorithmError
from repro.graph.transform import with_vertex_weights
from repro.runtime.counters import IterationRecord, StepRecord

__all__ = ["sample_neighbors", "sampling_signal", "SamplingResult"]


def sampling_signal(v, nbrs, s, emit):
    """Stop where the prefix sum of weights crosses the threshold."""
    weight = 0.0
    for u in nbrs:
        weight += s.weight[u]
        if weight >= s.r[v]:
            emit(u)
            break


def _scan_all_signal(v, nbrs, s, emit):
    """Gemini phase 1: full local scan, emit the local weight mass.

    Delta-style (emit what this scan added) so the mass is not
    re-reported if a machine ever resumes from carried state.
    """
    total = 0.0
    start = total
    for u in nbrs:
        total += s.weight[u]
    emit(total - start)


def _select_slot(v, value, s):
    if s.select[v] >= 0:
        return False
    s.select[v] = int(value)
    return True


@dataclass
class SamplingResult:
    """Output of one sampling pass."""

    select: np.ndarray  # chosen in-neighbor per vertex, -1 if none
    thresholds: np.ndarray

    @property
    def sampled_count(self) -> int:
        return int((self.select >= 0).sum())


def sample_neighbors(
    engine: BaseEngine,
    vertex_weights: np.ndarray | None = None,
    seed: int = 0,
) -> SamplingResult:
    """Sample one weighted in-neighbor for every vertex with in-edges."""
    if engine.kind == "dgalois":
        raise UnsupportedAlgorithmError(
            "graph sampling has no D-Galois reference implementation"
        )
    graph = engine.graph
    n = graph.num_vertices
    weights = (
        vertex_weights
        if vertex_weights is not None
        else with_vertex_weights(n, seed=seed)
    )
    if np.any(weights <= 0):
        raise ValueError("vertex weights must be strictly positive")

    # Total in-weight per vertex and the per-vertex uniform threshold.
    in_deg = graph.in_degrees()
    totals = np.zeros(n, dtype=np.float64)
    has_in = in_deg > 0
    if graph.num_edges:
        sums = np.add.reduceat(weights[graph.in_indices], graph.in_indptr[:-1][has_in])
        totals[has_in] = sums
    rng = np.random.default_rng(seed + 1)
    # Keep strictly below the total so the crossing always exists even
    # under floating-point reassociation across machines.
    r = rng.uniform(0.0, 1.0, size=n) * totals * (1.0 - 1e-12)

    s = engine.new_state()
    s.set("weight", np.asarray(weights, dtype=np.float64))
    s.set("r", r)
    s.add_array("select", np.int64, -1)

    active = has_in.copy()
    if engine.supports_dependency or isinstance(engine, SingleThreadEngine) or engine.num_machines == 1:
        engine.pull(
            sampling_signal,
            _select_slot,
            s,
            active,
            update_bytes=8,
            sync_bytes=0,
            dep_data_bytes=4,
            allow_differentiated=False,
        )
    else:
        _gemini_two_phase(engine, s, active)

    return SamplingResult(select=s.select.copy(), thresholds=r)


def _gemini_two_phase(engine: BaseEngine, s, active: np.ndarray) -> None:
    """Scan-all + targeted rescan, with exact cost accounting."""
    segments: dict[int, list[float]] = {}

    def collect_slot(v, value, s):
        segments.setdefault(v, []).append(float(value))
        return False

    engine.pull(
        _scan_all_signal,
        collect_slot,
        s,
        active,
        update_bytes=8,
        sync_bytes=0,
    )

    # Phase 2: the master locates the crossing machine from the partial
    # sums (machine segments arrive in ascending machine order), sends
    # it the residual threshold, and that machine rescans its local
    # neighbors to the crossing point.
    partition = engine.partition
    master_of = partition.master_of
    record = IterationRecord(mode="pull")
    step = StepRecord(engine.num_machines)
    for v, sums in segments.items():
        holders = np.flatnonzero(partition._has_in[:, v])
        target = float(s.r[v])
        running = 0.0
        owner = None
        for machine, local_sum in zip(holders, sums):
            if running + local_sum >= target:
                owner = int(machine)
                break
            running += local_sum
        if owner is None:  # numeric guard: fall back to the last holder
            owner = int(holders[-1])
        master = int(master_of[v])
        if master != owner:
            engine.network.send(master, owner, "update", 8)
            step.update_bytes[master] += 8
        residual = target - running
        prefix = 0.0
        chosen = -1
        for u in partition.local_in(owner).neighbors(v):
            u = int(u)
            step.high_edges[owner] += 1
            prefix += float(s.weight[u])
            if prefix >= residual:
                chosen = u
                break
        if chosen < 0:
            # float guard: keep the heaviest local neighbor
            local = partition.local_in(owner).neighbors(v)
            chosen = int(local[-1])
        if owner != master:
            engine.network.send(owner, master, "update", 8)
            step.update_bytes[owner] += 8
        s.select[v] = chosen
        step.high_vertices[owner] += 1

    record.steps = [step]
    engine.counters.add_iteration(record)
    engine.counters.add_edges(int(step.high_edges.sum()))
    engine.counters.add_vertices(int(step.high_vertices.sum()))
