"""Strongly connected components on directed graphs.

The paper motivates K-core as "a subroutine widely used in strongly
connected component algorithms" (Section 7.1, citing Hong et al.).
This module closes the loop: a distributed Forward-Backward SCC with
trimming, whose reachability phases are bottom-up pulls with a
loop-carried ``break`` — i.e. the paper's optimization accelerates SCC
detection end to end.

Algorithm (FW-BW-Trim):

1. *Trim* — an active vertex with no active in-neighbor or no active
   out-neighbor is a singleton SCC; repeat until stable.
2. Pick a pivot from the largest remaining active set; compute the
   forward reachable set F (BFS over out-edges) and backward reachable
   set B (BFS over the transpose).  F intersect B is one SCC.
3. Recurse on the three carve-outs F\\B, B\\F and the untouched rest.

Both BFS phases run on distributed engines (forward on the graph,
backward on its transpose) so every scan and byte is metered; the
transpose engine's counters are merged into the primary engine's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.engine import make_engine
from repro.engine.base import BaseEngine
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph

__all__ = ["scc", "scc_reach_signal", "SCCResult"]


def scc_reach_signal(v, nbrs, s, emit):
    """Bottom-up reachability step restricted to the current subset."""
    for u in nbrs:
        if s.reached[u] and s.subset[u]:
            emit(u)
            break


def _reach_slot(v, value, s):
    if s.reached[v]:
        return False
    s.reached[v] = True
    return True


@dataclass
class SCCResult:
    """Output of an SCC run."""

    component: np.ndarray  # representative vertex id per vertex
    rounds: int

    @property
    def num_components(self) -> int:
        return int(np.unique(self.component).size)


def _reachable(
    engine: BaseEngine, pivot: int, subset: np.ndarray
) -> np.ndarray:
    """Vertices in ``subset`` reachable from ``pivot`` along the
    engine's in-edges reversed — i.e. bottom-up BFS layers."""
    graph = engine.graph
    s = engine.new_state()
    s.set("subset", subset)
    s.add_array("reached", bool, False)
    s.reached[pivot] = True
    engine.sync_state(np.asarray([pivot]), sync_bytes=4)

    while True:
        active = subset & ~s.reached
        if not active.any():
            break
        result = engine.pull(
            scc_reach_signal,
            _reach_slot,
            s,
            active,
            update_bytes=8,
            sync_bytes=4,
        )
        if not result.any_changed:
            break
    return s.reached & subset


def scc(
    graph: CSRGraph,
    engine_kind: str = "symple",
    num_machines: int = 8,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    collect_metrics: Optional[BaseEngine] = None,
) -> SCCResult:
    """Compute SCCs of a directed graph on simulated engines.

    Returns a component array where each vertex maps to its component's
    representative (the smallest member id).  Pass ``collect_metrics``
    (any engine) to merge all traversal/communication counters into it.
    """
    n = graph.num_vertices
    limit = max_rounds if max_rounds is not None else n + 1

    src, dst = graph.edge_array()
    transpose = CSRGraph(n, dst, src)
    fwd = make_engine(engine_kind, transpose, num_machines)
    # Forward reachability follows OUT-edges of the original graph; the
    # engine pulls along in-edges, so the forward engine runs on the
    # transpose and the backward engine on the original.
    bwd = make_engine(engine_kind, graph, num_machines)

    component = np.full(n, -1, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rng = np.random.default_rng(seed)

    rounds = 0
    worklist: List[np.ndarray] = [active]
    while worklist:
        if rounds >= limit:
            raise ConvergenceError("SCC exceeded its round budget")
        rounds += 1
        subset = worklist.pop()
        subset = subset & (component < 0)
        if not subset.any():
            continue

        # 1. Trim trivial SCCs until stable.
        while True:
            members = np.flatnonzero(subset)
            if members.size == 0:
                break
            has_in = np.array(
                [subset[graph.in_neighbors(int(v))].any() for v in members]
            )
            has_out = np.array(
                [subset[graph.out_neighbors(int(v))].any() for v in members]
            )
            trivial = members[~(has_in & has_out)]
            if trivial.size == 0:
                break
            component[trivial] = trivial
            subset[trivial] = False
        members = np.flatnonzero(subset)
        if members.size == 0:
            continue
        if members.size == 1:
            component[members] = members
            continue

        # 2. Pivot and the two reachability sweeps.
        pivot = int(rng.choice(members))
        forward = _reachable(fwd, pivot, subset)
        backward = _reachable(bwd, pivot, subset)
        core = forward & backward
        rep = int(np.flatnonzero(core).min())
        component[core] = rep

        # 3. Recurse on the three remainders.
        for remainder in (forward & ~core, backward & ~core, subset & ~forward & ~backward):
            if remainder.any():
                worklist.append(remainder)

    if collect_metrics is not None:
        collect_metrics.counters.merge(fwd.counters)
        collect_metrics.counters.merge(bwd.counters)

    return SCCResult(component=component, rounds=rounds)
