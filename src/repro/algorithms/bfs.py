"""Breadth-first search: top-down, bottom-up, and direction-optimizing.

Bottom-up BFS (Beamer et al.) is the paper's flagship loop-carried
dependency example (Figure 1): an unvisited vertex scans its incoming
neighbors and stops at the *first* one found in the frontier.  The
evaluation runs the adaptive direction-switching variant (Section 7.1),
reproduced here with the standard alpha/beta heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.engine.base import BaseEngine
from repro.errors import ConvergenceError

__all__ = ["bfs", "bottom_up_signal", "BFSResult"]


def bottom_up_signal(v, nbrs, s, emit):
    """Bottom-up step: stop at the first in-neighbor in the frontier."""
    for u in nbrs:
        if s.frontier[u]:
            emit(u)
            break


def _visit_slot(v, parent, s):
    """Master-side visit: first update wins."""
    if s.visited[v]:
        return False
    s.visited[v] = True
    s.parent[v] = parent
    s.depth[v] = s.level
    s.next_frontier[v] = True
    return True


def _push_signal(u, v, s):
    """Top-down step: offer u as parent to each unvisited out-neighbor."""
    if s.visited[v]:
        return None
    return u


@dataclass
class BFSResult:
    """Output of a BFS run."""

    parent: np.ndarray
    depth: np.ndarray
    visited: np.ndarray
    iterations: int
    directions: List[str] = field(default_factory=list)

    @property
    def reached(self) -> int:
        return int(self.visited.sum())


def bfs(
    engine: BaseEngine,
    root: int,
    mode: str = "adaptive",
    alpha: float = 15.0,
    beta: float = 18.0,
    max_iterations: Optional[int] = None,
) -> BFSResult:
    """Run BFS from ``root`` on a distributed engine.

    ``mode`` is ``"adaptive"`` (direction-optimizing, the evaluation's
    configuration), ``"topdown"``, or ``"bottomup"``.
    """
    if mode not in ("adaptive", "topdown", "bottomup"):
        raise ValueError(f"unknown BFS mode {mode!r}")
    graph = engine.graph
    n = graph.num_vertices
    limit = max_iterations if max_iterations is not None else n + 1

    s = engine.new_state()
    s.add_array("visited", bool, False)
    s.add_array("frontier", bool, False)
    s.add_array("next_frontier", bool, False)
    s.add_array("parent", np.int64, -1)
    s.add_array("depth", np.int64, -1)
    s.add_scalar("level", 0)

    s.visited[root] = True
    s.frontier[root] = True
    s.parent[root] = root
    s.depth[root] = 0
    engine.sync_state(np.asarray([root]), sync_bytes=4)

    out_degrees = graph.out_degrees()
    directions: List[str] = []
    running_pull = False
    iterations = 0

    while s.frontier.any():
        if iterations >= limit:
            raise ConvergenceError("BFS exceeded its iteration budget")
        s.level = s.level + 1

        direction = _pick_direction(mode, s, out_degrees, alpha, beta, running_pull)
        running_pull = direction == "pull"
        directions.append(direction)

        if direction == "pull":
            active = ~s.visited
            result = engine.pull(
                bottom_up_signal,
                _visit_slot,
                s,
                active,
                update_bytes=8,
                sync_bytes=4,
            )
        else:
            result = engine.push(
                _push_signal,
                _visit_slot,
                s,
                s.frontier,
                update_bytes=8,
                sync_bytes=4,
            )

        s.frontier[:] = s.next_frontier
        s.next_frontier[:] = False
        iterations += 1
        if not result.any_changed:
            break

    return BFSResult(
        parent=s.parent.copy(),
        depth=s.depth.copy(),
        visited=s.visited.copy(),
        iterations=iterations,
        directions=directions,
    )


def _pick_direction(
    mode: str,
    s,
    out_degrees: np.ndarray,
    alpha: float,
    beta: float,
    running_pull: bool,
) -> str:
    """Beamer's direction heuristic."""
    if mode == "topdown":
        return "push"
    if mode == "bottomup":
        return "pull"
    n = len(out_degrees)
    frontier_idx = np.flatnonzero(s.frontier)
    m_f = int(out_degrees[frontier_idx].sum())
    unvisited = ~s.visited
    m_u = int(out_degrees[unvisited].sum())
    n_f = frontier_idx.size
    if not running_pull:
        return "pull" if m_f > m_u / alpha else "push"
    return "push" if n_f < n / beta else "pull"
