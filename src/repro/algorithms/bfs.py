"""Breadth-first search: top-down, bottom-up, and direction-optimizing.

Bottom-up BFS (Beamer et al.) is the paper's flagship loop-carried
dependency example (Figure 1): an unvisited vertex scans its incoming
neighbors and stops at the *first* one found in the frontier.  The
evaluation runs the adaptive direction-switching variant (Section 7.1),
reproduced here with the standard alpha/beta heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.engine.base import BaseEngine
from repro.engine.state import StateStore
from repro.errors import ConvergenceError
from repro.fault.program import VertexProgram, run_program

__all__ = ["bfs", "bfs_multi", "bottom_up_signal", "BFSResult", "BFSProgram"]


def bottom_up_signal(v, nbrs, s, emit):
    """Bottom-up step: stop at the first in-neighbor in the frontier."""
    for u in nbrs:
        if s.frontier[u]:
            emit(u)
            break


def _visit_slot(v, parent, s):
    """Master-side visit: first update wins."""
    if s.visited[v]:
        return False
    s.visited[v] = True
    s.parent[v] = parent
    s.depth[v] = s.level
    s.next_frontier[v] = True
    return True


def _push_signal(u, v, s):
    """Top-down step: offer u as parent to each unvisited out-neighbor."""
    if s.visited[v]:
        return None
    return u


@dataclass
class BFSResult:
    """Output of a BFS run."""

    parent: np.ndarray
    depth: np.ndarray
    visited: np.ndarray
    iterations: int
    directions: List[str] = field(default_factory=list)

    @property
    def reached(self) -> int:
        return int(self.visited.sum())


class BFSProgram(VertexProgram):
    """Direction-optimizing BFS as a resumable superstep loop.

    Everything mutable lives in the :class:`StateStore` or ``ctx``
    (``iterations``, ``directions``, ``running_pull``, ``limit``) so a
    checkpoint captures the full loop state; the instance itself holds
    only configuration and the read-only out-degree array.
    """

    name = "bfs"

    def __init__(
        self,
        root: int,
        mode: str = "adaptive",
        alpha: float = 15.0,
        beta: float = 18.0,
        max_iterations: Optional[int] = None,
    ) -> None:
        if mode not in ("adaptive", "topdown", "bottomup"):
            raise ValueError(f"unknown BFS mode {mode!r}")
        self.root = int(root)
        self.mode = mode
        self.alpha = alpha
        self.beta = beta
        self.max_iterations = max_iterations
        self._out_degrees: Optional[np.ndarray] = None

    def setup(self, engine: BaseEngine, ctx: Dict[str, Any]) -> StateStore:
        graph = engine.graph
        n = graph.num_vertices
        self._out_degrees = graph.out_degrees()
        ctx["limit"] = (
            self.max_iterations if self.max_iterations is not None else n + 1
        )
        ctx["iterations"] = 0
        ctx["directions"] = []
        ctx["running_pull"] = False

        s = engine.new_state()
        s.add_array("visited", bool, False)
        s.add_array("frontier", bool, False)
        s.add_array("next_frontier", bool, False)
        s.add_array("parent", np.int64, -1)
        s.add_array("depth", np.int64, -1)
        s.add_scalar("level", 0)

        s.visited[self.root] = True
        s.frontier[self.root] = True
        s.parent[self.root] = self.root
        s.depth[self.root] = 0
        engine.sync_state(np.asarray([self.root]), sync_bytes=4)
        return s

    def step(
        self, engine: BaseEngine, s: StateStore, ctx: Dict[str, Any]
    ) -> bool:
        if not s.frontier.any():
            return False
        if ctx["iterations"] >= ctx["limit"]:
            raise ConvergenceError("BFS exceeded its iteration budget")
        s.level = s.level + 1

        direction = _pick_direction(
            self.mode,
            s,
            self._out_degrees,
            self.alpha,
            self.beta,
            ctx["running_pull"],
        )
        ctx["running_pull"] = direction == "pull"
        ctx["directions"].append(direction)

        if direction == "pull":
            active = ~s.visited
            result = engine.pull(
                bottom_up_signal,
                _visit_slot,
                s,
                active,
                update_bytes=8,
                sync_bytes=4,
            )
        else:
            result = engine.push(
                _push_signal,
                _visit_slot,
                s,
                s.frontier,
                update_bytes=8,
                sync_bytes=4,
            )

        s.frontier[:] = s.next_frontier
        s.next_frontier[:] = False
        ctx["iterations"] += 1
        return bool(result.any_changed)

    def result(
        self, engine: BaseEngine, s: StateStore, ctx: Dict[str, Any]
    ) -> BFSResult:
        return BFSResult(
            parent=s.parent.copy(),
            depth=s.depth.copy(),
            visited=s.visited.copy(),
            iterations=ctx["iterations"],
            directions=list(ctx["directions"]),
        )


def bfs(
    engine: BaseEngine,
    root: int,
    mode: str = "adaptive",
    alpha: float = 15.0,
    beta: float = 18.0,
    max_iterations: Optional[int] = None,
) -> BFSResult:
    """Run BFS from ``root`` on a distributed engine.

    ``mode`` is ``"adaptive"`` (direction-optimizing, the evaluation's
    configuration), ``"topdown"``, or ``"bottomup"``.
    """
    return run_program(
        BFSProgram(root, mode, alpha, beta, max_iterations), engine
    )


def bfs_multi(
    engine: BaseEngine,
    roots: List[int],
    mode: str = "adaptive",
    alpha: float = 15.0,
    beta: float = 18.0,
    max_iterations: Optional[int] = None,
) -> List[BFSResult]:
    """Run BFS from many roots on one prepared engine, in order.

    The multi-source batch entry: every root reuses the engine's
    partition, executor bind, and compiled kernels, so a batch pays the
    per-run setup once.  Each traversal is a fresh program on a fresh
    state store, which keeps every per-root result bit-identical to a
    standalone :func:`bfs` of that root — counters accumulate across
    the batch exactly as the harness's multi-root protocol expects.
    """
    return [
        run_program(
            BFSProgram(int(root), mode, alpha, beta, max_iterations), engine
        )
        for root in roots
    ]


def _pick_direction(
    mode: str,
    s,
    out_degrees: np.ndarray,
    alpha: float,
    beta: float,
    running_pull: bool,
) -> str:
    """Beamer's direction heuristic."""
    if mode == "topdown":
        return "push"
    if mode == "bottomup":
        return "pull"
    n = len(out_degrees)
    frontier_idx = np.flatnonzero(s.frontier)
    m_f = int(out_degrees[frontier_idx].sum())
    unvisited = ~s.visited
    m_u = int(out_degrees[unvisited].sum())
    n_f = frontier_idx.size
    if not running_pull:
        return "pull" if m_f > m_u / alpha else "push"
    return "push" if n_f < n / beta else "pull"
