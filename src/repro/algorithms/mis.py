"""Maximal Independent Set via the coloring heuristic (paper Figure 3a).

Each vertex gets a distinct random color.  Per round, an active vertex
joins the MIS if no *active* neighbor has a smaller color — the scan
breaks as soon as one is found (loop-carried control dependency).  New
members then deactivate themselves and their neighbors.  Requires a
symmetric (undirected) graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.engine.base import BaseEngine
from repro.engine.state import StateStore
from repro.errors import ConvergenceError
from repro.fault.program import VertexProgram, run_program

__all__ = ["mis", "mis_signal", "MISResult", "MISProgram"]


def mis_signal(v, nbrs, s, emit):
    """Break on the first active neighbor with a smaller color."""
    for u in nbrs:
        if s.active[u] and s.color[u] < s.color[v]:
            emit(False)
            break


def _not_minimum_slot(v, value, s):
    """An active smaller-colored neighbor exists: v is not a candidate."""
    if s.candidate[v]:
        s.candidate[v] = False
    return False  # candidate flags are master-local; no sync needed


def _deactivate_push_signal(u, v, s):
    return True if s.active[v] else None


def _deactivate_slot(v, value, s):
    if not s.active[v]:
        return False
    s.active[v] = False
    return True


@dataclass
class MISResult:
    """Output of an MIS run."""

    in_mis: np.ndarray
    rounds: int

    @property
    def size(self) -> int:
        return int(self.in_mis.sum())


class MISProgram(VertexProgram):
    """Coloring-heuristic MIS as a resumable superstep loop.

    Randomness (the color permutation) is drawn only in :meth:`setup`
    from the fixed seed, so restart-from-scratch recovery replays the
    identical coloring.
    """

    name = "mis"

    def __init__(self, seed: int = 0, max_rounds: int | None = None) -> None:
        self.seed = int(seed)
        self.max_rounds = max_rounds

    def setup(self, engine: BaseEngine, ctx: Dict[str, Any]) -> StateStore:
        n = engine.graph.num_vertices
        ctx["limit"] = (
            self.max_rounds if self.max_rounds is not None else n + 1
        )
        ctx["rounds"] = 0
        rng = np.random.default_rng(self.seed)
        s = engine.new_state()
        s.add_array("active", bool, True)
        s.add_array("candidate", bool, True)
        s.add_array("is_mis", bool, False)
        s.set("color", rng.permutation(n).astype(np.int64))
        return s

    def step(
        self, engine: BaseEngine, s: StateStore, ctx: Dict[str, Any]
    ) -> bool:
        if not s.active.any():
            return False
        if ctx["rounds"] >= ctx["limit"]:
            raise ConvergenceError("MIS exceeded its round budget")
        s.candidate[:] = s.active
        engine.pull(
            mis_signal,
            _not_minimum_slot,
            s,
            s.active.copy(),
            update_bytes=8,
            sync_bytes=0,
        )

        new_mis = np.flatnonzero(s.candidate & s.active)
        s.is_mis[new_mis] = True
        s.active[new_mis] = False
        engine.sync_state(new_mis, sync_bytes=4)

        if new_mis.size:
            engine.push(
                _deactivate_push_signal,
                _deactivate_slot,
                s,
                new_mis,
                update_bytes=8,
                sync_bytes=4,
            )
        ctx["rounds"] += 1
        return True

    def result(
        self, engine: BaseEngine, s: StateStore, ctx: Dict[str, Any]
    ) -> MISResult:
        return MISResult(in_mis=s.is_mis.copy(), rounds=ctx["rounds"])


def mis(
    engine: BaseEngine,
    seed: int = 0,
    max_rounds: int | None = None,
) -> MISResult:
    """Compute a maximal independent set on a symmetric graph."""
    return run_program(MISProgram(seed, max_rounds), engine)
