"""Maximal Independent Set via the coloring heuristic (paper Figure 3a).

Each vertex gets a distinct random color.  Per round, an active vertex
joins the MIS if no *active* neighbor has a smaller color — the scan
breaks as soon as one is found (loop-carried control dependency).  New
members then deactivate themselves and their neighbors.  Requires a
symmetric (undirected) graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.base import BaseEngine
from repro.errors import ConvergenceError

__all__ = ["mis", "mis_signal", "MISResult"]


def mis_signal(v, nbrs, s, emit):
    """Break on the first active neighbor with a smaller color."""
    for u in nbrs:
        if s.active[u] and s.color[u] < s.color[v]:
            emit(False)
            break


def _not_minimum_slot(v, value, s):
    """An active smaller-colored neighbor exists: v is not a candidate."""
    if s.candidate[v]:
        s.candidate[v] = False
    return False  # candidate flags are master-local; no sync needed


def _deactivate_push_signal(u, v, s):
    return True if s.active[v] else None


def _deactivate_slot(v, value, s):
    if not s.active[v]:
        return False
    s.active[v] = False
    return True


@dataclass
class MISResult:
    """Output of an MIS run."""

    in_mis: np.ndarray
    rounds: int

    @property
    def size(self) -> int:
        return int(self.in_mis.sum())


def mis(
    engine: BaseEngine,
    seed: int = 0,
    max_rounds: int | None = None,
) -> MISResult:
    """Compute a maximal independent set on a symmetric graph."""
    graph = engine.graph
    n = graph.num_vertices
    limit = max_rounds if max_rounds is not None else n + 1

    rng = np.random.default_rng(seed)
    s = engine.new_state()
    s.add_array("active", bool, True)
    s.add_array("candidate", bool, True)
    s.add_array("is_mis", bool, False)
    s.set("color", rng.permutation(n).astype(np.int64))

    rounds = 0
    while s.active.any():
        if rounds >= limit:
            raise ConvergenceError("MIS exceeded its round budget")
        s.candidate[:] = s.active
        engine.pull(
            mis_signal,
            _not_minimum_slot,
            s,
            s.active.copy(),
            update_bytes=8,
            sync_bytes=0,
        )

        new_mis = np.flatnonzero(s.candidate & s.active)
        s.is_mis[new_mis] = True
        s.active[new_mis] = False
        engine.sync_state(new_mis, sync_bytes=4)

        if new_mis.size:
            engine.push(
                _deactivate_push_signal,
                _deactivate_slot,
                s,
                new_mis,
                update_bytes=8,
                sync_bytes=4,
            )
        rounds += 1

    return MISResult(in_mis=s.is_mis.copy(), rounds=rounds)
