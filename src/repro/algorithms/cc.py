"""Connected components by label propagation.

A *control* algorithm with no loop-carried dependency: every neighbor
must be examined to compute the local minimum label, so the analyzer
finds nothing to instrument and SympleGraph automatically degenerates
to Gemini's schedule (Section 5.1: "Gemini can be considered as a
special case without dependency communication").  Used by tests to
verify the no-dependency fall-back path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.base import BaseEngine
from repro.errors import ConvergenceError

__all__ = ["connected_components", "cc_signal", "CCResult"]


def cc_signal(v, nbrs, s, emit):
    """Emit the smallest neighbor label if it beats the current one."""
    best = s.label[v]
    for u in nbrs:
        if s.label[u] < best:
            best = s.label[u]
    if best < s.label[v]:
        # min-fold into an idempotent min-slot: re-delivering the same
        # label is harmless, so the double-count hazard does not apply.
        emit(best)  # repro: noqa[cumulative-emit]


def _min_slot(v, value, s):
    if value < s.label[v]:
        s.label[v] = value
        return True
    return False


@dataclass
class CCResult:
    """Output of a connected-components run."""

    label: np.ndarray
    iterations: int

    @property
    def num_components(self) -> int:
        return int(np.unique(self.label).size)


def connected_components(
    engine: BaseEngine, max_iterations: int | None = None
) -> CCResult:
    """Label propagation to fixpoint on a symmetric graph."""
    graph = engine.graph
    n = graph.num_vertices
    limit = max_iterations if max_iterations is not None else n + 1

    s = engine.new_state()
    s.set("label", np.arange(n, dtype=np.int64))

    active = graph.in_degrees() > 0
    iterations = 0
    while active.any():
        if iterations >= limit:
            raise ConvergenceError("CC exceeded its iteration budget")
        result = engine.pull(
            cc_signal, _min_slot, s, active, update_bytes=8, sync_bytes=8
        )
        iterations += 1
        if not result.any_changed:
            break
        # Only vertices adjacent to a changed label can improve next round.
        active = np.zeros(n, dtype=bool)
        for v in result.changed:
            active[graph.out_neighbors(int(v))] = True
        active &= graph.in_degrees() > 0

    return CCResult(label=s.label.copy(), iterations=iterations)
