"""Incremental BFS / CC / k-core over a mutating :class:`Session` graph.

Each handle computes once from scratch, then — after the session's
graph mutates — repairs only the *affected subgraph* instead of
re-running the whole algorithm:

* **inserts** seed the relaxation at the inserted edges' destinations
  (a new edge can only improve a monotone quantity downstream of it);
* **deletes** conservatively invalidate every vertex whose current
  value could have been *derived through* a deleted edge: a reverse
  of the value-derivation chains (``depth[w] == depth[x] + 1`` for
  BFS, ``label[w] == label[x]`` for CC), walked forward from the
  deleted edges' destinations; invalidated vertices reset to their
  identity value and re-relax against the untouched boundary.

Both algorithms are monotone min-folds with canonical fixpoints
(shortest hop count; minimum reaching vertex id), so the repaired
state is **bit-identical** to a from-scratch run on the equivalent
static graph — the metamorphic gate the dynamic-graph test suite and
``bench_dynamic.py --smoke`` enforce on every batch, across the
serial, thread, and process executors.

The relaxation phases run through the ordinary engine pull protocol
(via :meth:`Session.engine_context`), so dependency accounting, the
executor backends, and observability all apply unchanged.  Incremental
k-core (BLADYG's case study) repairs deletion-only batches by cascade
peeling inside the previous core and falls back to a snapshot recompute
when a batch inserts edges.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import MutationBatch

__all__ = [
    "IncrementalBFS",
    "IncrementalCC",
    "IncrementalKCore",
    "IncrementalResult",
    "relax_depth_signal",
]

#: unreached sentinel: large enough that depth never reaches it, small
#: enough that ``INF + 1`` cannot overflow int64
_INF = np.int64(1) << np.int64(62)


def relax_depth_signal(v, nbrs, s, emit):
    """Emit the best in-neighbor depth + 1 if it beats the current one."""
    best = s.depth[v]
    for u in nbrs:
        d = s.depth[u] + 1
        if d < best:
            best = d
    if best < s.depth[v]:
        # min-fold into an idempotent min-slot: re-delivering the same
        # depth is harmless, so the double-count hazard does not apply.
        emit(best)  # repro: noqa[cumulative-emit]


def _depth_slot(v, value, s):
    if value < s.depth[v]:
        s.depth[v] = value
        return True
    return False


def _array_digest(tag: str, array: np.ndarray) -> str:
    payload = np.ascontiguousarray(array.astype("<i8", copy=False))
    h = hashlib.sha256()
    h.update(tag.encode("utf-8"))
    h.update(payload.tobytes())
    return h.hexdigest()


@dataclass
class IncrementalResult:
    """One refresh outcome: the repaired per-vertex array + provenance."""

    #: "bfs", "cc", or "kcore"
    algorithm: str
    #: depths (-1 unreached) / component labels / core membership (0/1)
    values: np.ndarray
    #: graph version the values are exact for
    version: int
    #: "scratch" or "incremental"
    mode: str
    #: engine pull iterations (0 for a no-op refresh and for kcore)
    iterations: int

    def digest(self) -> str:
        """Canonical sha256 over the result values (version-free, so
        an incremental repair and a from-scratch run digest equal)."""
        return _array_digest(f"{self.algorithm}:", self.values)


def _frontier(graph: CSRGraph, changed: np.ndarray, pullable: np.ndarray):
    active = np.zeros(graph.num_vertices, dtype=bool)
    for v in changed:
        active[graph.out_neighbors(int(v))] = True
    return active & pullable


def _relax_to_fixpoint(engine, signal, slot, state, active) -> int:
    """Drive pull phases until no value changes; returns iterations."""
    graph = engine.graph
    pullable = graph.in_degrees() > 0
    active = active & pullable
    limit = graph.num_vertices + 1
    iterations = 0
    while active.any():
        if iterations >= limit:
            raise ConvergenceError(
                "incremental relaxation exceeded its iteration budget"
            )
        result = engine.pull(
            signal, slot, state, active, update_bytes=8, sync_bytes=8
        )
        iterations += 1
        if not result.any_changed:
            break
        active = _frontier(graph, result.changed, pullable)
    return iterations


def _bfs_affected(
    graph: CSRGraph,
    depth: np.ndarray,
    seeds: np.ndarray,
    root: int,
) -> np.ndarray:
    """Deletion-invalidated vertices under min-hop depths.

    Ramalingam–Reps style support pruning: a candidate ``w`` keeps its
    depth if some *surviving* in-neighbor one level up is itself
    unaffected; only unsupported vertices are invalidated, and their
    equality-chain children (``depth == depth[w] + 1`` over surviving
    out-edges) become candidates.  Candidates are processed in
    increasing old-depth order, so every depth ``d-1`` verdict is final
    before any depth ``d`` candidate is judged — which makes the
    support check exact, not heuristic.  The root's depth is axiomatic
    and never invalidated.
    """
    affected = np.zeros(graph.num_vertices, dtype=bool)
    enqueued = np.zeros(graph.num_vertices, dtype=bool)
    heap: list = []
    for v in seeds:
        v = int(v)
        if v == root or depth[v] >= _INF or enqueued[v]:
            continue
        enqueued[v] = True
        heapq.heappush(heap, (int(depth[v]), v))
    while heap:
        d, w = heapq.heappop(heap)
        supported = False
        for u in graph.in_neighbors(w):
            u = int(u)
            if depth[u] == d - 1 and not affected[u]:
                supported = True
                break
        if supported:
            continue
        affected[w] = True
        for v in graph.out_neighbors(w):
            v = int(v)
            if v == root or enqueued[v] or depth[v] != d + 1:
                continue
            enqueued[v] = True
            heapq.heappush(heap, (d + 1, v))
    return affected


def _affected_closure(
    graph: CSRGraph,
    values: np.ndarray,
    seeds: np.ndarray,
    delta: int,
) -> np.ndarray:
    """Vertices whose value may derive through a deleted edge.

    Walks derivation chains forward from ``seeds`` (deleted-edge
    destinations) over the *surviving* out-edges: ``w`` extends the
    closure from ``x`` when ``values[w] == values[x] + delta``.  Any
    derivation path of an invalid value either crosses a deleted edge
    (its destination is a seed) or runs along surviving equality-chain
    edges — both are covered, so the closure is conservative-sound.
    """
    affected = np.zeros(graph.num_vertices, dtype=bool)
    queue: deque = deque()
    for v in seeds:
        v = int(v)
        if not affected[v]:
            affected[v] = True
            queue.append(v)
    while queue:
        x = queue.popleft()
        vx = values[x]
        if vx >= _INF:
            continue  # nothing derives from an unreached value
        want = vx + delta
        for w in graph.out_neighbors(x):
            w = int(w)
            if not affected[w] and values[w] == want:
                affected[w] = True
                queue.append(w)
    return affected


def _collect_mutations(
    batches: List[Tuple[int, MutationBatch]], n: int
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """(insert destinations, delete destinations, any inserts) in-range."""
    ins: List[np.ndarray] = []
    dels: List[np.ndarray] = []
    any_inserts = False
    for _, batch in batches:
        if batch.num_inserts:
            any_inserts = True
            ins.append(batch.insert_dst)
        if batch.num_deletes:
            dels.append(batch.delete_dst)
        if batch.add_vertices:
            any_inserts = any_inserts or False
    empty = np.empty(0, dtype=np.int64)
    ins_dst = np.unique(np.concatenate(ins)) if ins else empty
    del_dst = np.unique(np.concatenate(dels)) if dels else empty
    return ins_dst[ins_dst < n], del_dst[del_dst < n], any_inserts


class _IncrementalBase:
    """Shared session/version bookkeeping of the incremental handles."""

    algorithm = "abstract"

    def __init__(self, session, config=None) -> None:
        self.session = session
        self.config = config if config is not None else session.config
        self.version = -1
        self._values: Optional[np.ndarray] = None

    def result(self) -> IncrementalResult:
        """The latest refreshed result (refresh() must have run)."""
        if self._values is None:
            raise GraphError(
                f"incremental {self.algorithm} has no result yet; "
                "call refresh()"
            )
        return IncrementalResult(
            algorithm=self.algorithm,
            values=self._present(self._values),
            version=self.version,
            mode=self._mode,
            iterations=self._iterations,
        )

    def _present(self, values: np.ndarray) -> np.ndarray:
        return values.copy()

    def refresh(self) -> IncrementalResult:
        """Bring the result up to the session's current graph version."""
        with self.session.engine_context(self.config) as (
            engine, graph, version
        ):
            if version == self.version and self._values is not None:
                self._mode = "noop"
                self._iterations = 0
                return self.result()
            batches = self.session.mutations_since(self.version)
            if self._values is None or batches is None:
                self._mode = "scratch"
                self._iterations = self._scratch(engine, graph)
            else:
                self._mode = "incremental"
                self._iterations = self._incremental(engine, graph, batches)
            self.version = version
        return self.result()

    # hooks ---------------------------------------------------------------

    def _scratch(self, engine, graph: CSRGraph) -> int:
        raise NotImplementedError

    def _incremental(self, engine, graph: CSRGraph, batches) -> int:
        raise NotImplementedError


class IncrementalBFS(_IncrementalBase):
    """Incremental single-source hop counts (canonical BFS depths)."""

    algorithm = "bfs"

    def __init__(self, session, root: int, config=None) -> None:
        super().__init__(session, config)
        root = int(root)
        if root < 0 or root >= session.graph.num_vertices:
            raise GraphError(
                f"BFS root {root} out of range "
                f"[0, {session.graph.num_vertices})"
            )
        self.root = root

    def _present(self, values: np.ndarray) -> np.ndarray:
        out = values.copy()
        out[out >= _INF] = -1
        return out

    def _scratch(self, engine, graph: CSRGraph) -> int:
        n = graph.num_vertices
        depth = np.full(n, _INF, dtype=np.int64)
        depth[self.root] = 0
        s = engine.new_state()
        s.set("depth", depth)
        pullable = graph.in_degrees() > 0
        active = _frontier(graph, np.asarray([self.root]), pullable)
        iterations = _relax_to_fixpoint(
            engine, relax_depth_signal, _depth_slot, s, active
        )
        self._values = s.depth.copy()
        return iterations

    def _incremental(self, engine, graph: CSRGraph, batches) -> int:
        n = graph.num_vertices
        old = self._values
        depth = np.concatenate([
            old, np.full(n - old.size, _INF, dtype=np.int64),
        ]) if n > old.size else old.copy()
        ins_dst, del_dst, _ = _collect_mutations(batches, n)
        affected = _bfs_affected(graph, depth, del_dst, self.root)
        depth[affected] = _INF
        active = affected.copy()
        active[ins_dst] = True
        s = engine.new_state()
        s.set("depth", depth)
        iterations = _relax_to_fixpoint(
            engine, relax_depth_signal, _depth_slot, s, active
        )
        self._values = s.depth.copy()
        return iterations


class IncrementalCC(_IncrementalBase):
    """Incremental label propagation (min reaching vertex id)."""

    algorithm = "cc"

    def _scratch(self, engine, graph: CSRGraph) -> int:
        # imported here to keep the module importable without pulling
        # the full algorithm corpus at package-init time
        from repro.algorithms.cc import _min_slot, cc_signal

        n = graph.num_vertices
        s = engine.new_state()
        s.set("label", np.arange(n, dtype=np.int64))
        active = graph.in_degrees() > 0
        iterations = _relax_to_fixpoint(
            engine, cc_signal, _min_slot, s, active
        )
        self._values = s.label.copy()
        return iterations

    def _incremental(self, engine, graph: CSRGraph, batches) -> int:
        from repro.algorithms.cc import _min_slot, cc_signal

        n = graph.num_vertices
        old = self._values
        label = np.concatenate([
            old, np.arange(old.size, n, dtype=np.int64),
        ]) if n > old.size else old.copy()
        ins_dst, del_dst, _ = _collect_mutations(batches, n)
        affected = _affected_closure(graph, label, del_dst, delta=0)
        reset = np.flatnonzero(affected)
        label[reset] = reset  # back to identity, re-derive from boundary
        active = affected.copy()
        active[ins_dst] = True
        s = engine.new_state()
        s.set("label", label)
        iterations = _relax_to_fixpoint(
            engine, cc_signal, _min_slot, s, active
        )
        self._values = s.label.copy()
        return iterations


class IncrementalKCore(_IncrementalBase):
    """Incremental k-core membership (BLADYG's case study).

    Deletions only shrink the core, so a deletion-only batch sequence
    repairs by cascade-peeling inside the previous core.  Inserted
    edges can grow the core non-locally; those batches recompute on the
    snapshot (same single-machine peel as
    :func:`~repro.algorithms.kcore.kcore_peel`, so results stay exact).
    """

    algorithm = "kcore"

    def __init__(self, session, k: int, config=None) -> None:
        super().__init__(session, config)
        if k < 1:
            raise GraphError(f"k must be >= 1, got {k}")
        self.k = int(k)

    def refresh(self) -> IncrementalResult:
        # no engine phases: peel is the single-machine reference path
        graph, version = self.session._graph_snapshot()
        if version == self.version and self._values is not None:
            self._mode = "noop"
            self._iterations = 0
            return self.result()
        batches = self.session.mutations_since(self.version)
        if self._values is None or batches is None:
            self._mode = "scratch"
            self._scratch_peel(graph)
        else:
            _, _, any_inserts = _collect_mutations(
                batches, graph.num_vertices
            )
            if any_inserts:
                self._mode = "scratch"
                self._scratch_peel(graph)
            else:
                self._mode = "incremental"
                self._shrink(graph)
        self._iterations = 0
        self.version = version
        return self.result()

    def _present(self, values: np.ndarray) -> np.ndarray:
        return values.astype(np.int64)

    def _scratch_peel(self, graph: CSRGraph) -> None:
        from repro.algorithms.kcore import kcore_peel

        self._values = kcore_peel(graph, self.k).in_core

    def _shrink(self, graph: CSRGraph) -> None:
        """Cascade-peel the previous core against the shrunken graph."""
        n = graph.num_vertices
        old = self._values
        in_core = np.concatenate([
            old, np.zeros(n - old.size, dtype=bool),
        ]) if n > old.size else old.copy()
        # degree within the candidate set, on the post-deletion graph
        degree = np.zeros(n, dtype=np.int64)
        members = np.flatnonzero(in_core)
        for v in members:
            degree[v] = int(
                np.count_nonzero(in_core[graph.in_neighbors(int(v))])
            )
        queue = deque(int(v) for v in members if degree[v] < self.k)
        while queue:
            v = queue.popleft()
            if not in_core[v]:
                continue
            in_core[v] = False
            for u in graph.in_neighbors(v):
                u = int(u)
                if not in_core[u]:
                    continue
                degree[u] -= 1
                if degree[u] < self.k:
                    queue.append(u)
        self._values = in_core
