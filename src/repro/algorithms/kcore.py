"""K-core decomposition.

Two algorithms, matching the paper's evaluation:

* :func:`kcore` — the iterative algorithm of Figure 3b: every round,
  each still-active vertex counts its active neighbors, breaking as
  soon as the count saturates at K (loop-carried data + control
  dependency: the running count must cross machine boundaries).
  Vertices whose count stays below K are removed; repeat to fixpoint.
* :func:`kcore_peel` — the linear-time peeling algorithm (Matula &
  Beck), a lean single-machine code with no loop-carried dependency;
  the parenthesized comparison numbers in Tables 2/4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.engine.base import BaseEngine
from repro.engine.state import StateStore
from repro.errors import ConvergenceError
from repro.fault.program import VertexProgram, run_program
from repro.graph.csr import CSRGraph
from repro.runtime.cost_model import SINGLE_THREAD_COST, CostModel

__all__ = [
    "kcore",
    "kcore_signal",
    "kcore_peel",
    "coreness",
    "KCoreResult",
    "PeelResult",
    "KCoreProgram",
]


def kcore_signal(v, nbrs, s, emit):
    """Count active neighbors, saturating at K (the break)."""
    cnt = 0
    start = cnt
    for u in nbrs:
        if s.active[u]:
            cnt += 1
            if cnt >= s.k:
                break
    if cnt > start:
        emit(cnt - start)


def _count_slot(v, value, s):
    s.count[v] += int(value)
    return False  # removals are decided (and synced) in the outer loop


@dataclass
class KCoreResult:
    """Output of the iterative K-core computation."""

    in_core: np.ndarray
    rounds: int
    k: int

    @property
    def size(self) -> int:
        return int(self.in_core.sum())


class KCoreProgram(VertexProgram):
    """Iterative K-core as a resumable superstep loop."""

    name = "kcore"

    def __init__(self, k: int, max_rounds: int | None = None) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self.max_rounds = max_rounds

    def setup(self, engine: BaseEngine, ctx: Dict[str, Any]) -> StateStore:
        n = engine.graph.num_vertices
        ctx["limit"] = (
            self.max_rounds if self.max_rounds is not None else n + 1
        )
        ctx["rounds"] = 0
        s = engine.new_state()
        s.add_array("active", bool, True)
        s.add_array("count", np.int64, 0)
        s.add_scalar("k", self.k)
        return s

    def step(
        self, engine: BaseEngine, s: StateStore, ctx: Dict[str, Any]
    ) -> bool:
        if ctx["rounds"] >= ctx["limit"]:
            raise ConvergenceError("K-core exceeded its round budget")
        s.count[:] = 0
        # Control-only dependency: partial counts sum at the master
        # regardless, so only the saturation break needs to travel —
        # the reference implementation's one-bit dependency message.
        engine.pull(
            kcore_signal,
            _count_slot,
            s,
            s.active.copy(),
            update_bytes=8,
            sync_bytes=0,
            dep_data_bytes=4,
            share_dep_data=False,
        )
        removed = np.flatnonzero(s.active & (s.count < self.k))
        ctx["rounds"] += 1
        if removed.size == 0:
            return False
        s.active[removed] = False
        engine.sync_state(removed, sync_bytes=4)
        return True

    def result(
        self, engine: BaseEngine, s: StateStore, ctx: Dict[str, Any]
    ) -> KCoreResult:
        return KCoreResult(
            in_core=s.active.copy(), rounds=ctx["rounds"], k=self.k
        )


def kcore(
    engine: BaseEngine,
    k: int,
    max_rounds: int | None = None,
) -> KCoreResult:
    """Iterative K-core on a symmetric graph."""
    return run_program(KCoreProgram(k, max_rounds), engine)


@dataclass
class PeelResult:
    """Output of the linear peeling algorithm."""

    in_core: np.ndarray
    k: int
    edges_touched: int
    simulated_time: float

    @property
    def size(self) -> int:
        return int(self.in_core.sum())


def kcore_peel(
    graph: CSRGraph,
    k: int,
    cost_model: CostModel = SINGLE_THREAD_COST,
) -> PeelResult:
    """Linear-time single-machine K-core by repeated peeling.

    Runs in O(V + E): each removal scans the removed vertex's edges
    once.  Timed with the single-thread cost preset (the paper's
    comparison code has no distribution overhead at all).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    degree = graph.in_degrees().copy()
    active = np.ones(graph.num_vertices, dtype=bool)
    queue = deque(np.flatnonzero(degree < k).tolist())
    in_queue = np.zeros(graph.num_vertices, dtype=bool)
    in_queue[degree < k] = True

    edges_touched = 0
    while queue:
        v = queue.popleft()
        if not active[v]:
            continue
        active[v] = False
        for u in graph.in_neighbors(v):
            u = int(u)
            edges_touched += 1
            if not active[u]:
                continue
            degree[u] -= 1
            if degree[u] < k and not in_queue[u]:
                in_queue[u] = True
                queue.append(u)

    # One full edge scan for degree initialization, plus the edges of
    # every peeled vertex, plus per-vertex bucket maintenance.
    simulated_time = (
        (graph.num_edges + edges_touched) * cost_model.edge_cost
        + graph.num_vertices * cost_model.vertex_cost
    ) * cost_model.compute_scale
    return PeelResult(
        in_core=active,
        k=k,
        edges_touched=edges_touched,
        simulated_time=simulated_time,
    )


def coreness(graph: CSRGraph) -> np.ndarray:
    """Core number of every vertex (Matula-Beck bucket peeling).

    The full decomposition behind :func:`kcore_peel`: vertex ``v``'s
    core number is the largest K such that ``v`` belongs to the K-core.
    Runs in O(V + E) using bucketed removal in non-decreasing degree
    order.
    """
    n = graph.num_vertices
    degree = graph.in_degrees().copy()
    # Self-loops do not support membership in any core (standard
    # convention, matching networkx.core_number).
    for v in range(n):
        loops = int(np.count_nonzero(graph.in_neighbors(v) == v))
        if loops:
            degree[v] -= loops
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core

    max_degree = int(degree.max(initial=0))
    # bucket sort vertices by current degree
    bins = np.zeros(max_degree + 2, dtype=np.int64)
    for d in degree:
        bins[d + 1] += 1
    np.cumsum(bins, out=bins)
    position = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    fill = bins[:-1].copy()
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1
    bin_start = bins[:-1].copy()

    removed = np.zeros(n, dtype=bool)
    for i in range(n):
        v = int(order[i])
        core[v] = degree[v]
        removed[v] = True
        for u in graph.in_neighbors(v):
            u = int(u)
            if u == v or removed[u] or degree[u] <= degree[v]:
                continue
            # swap u to the front of its degree bucket, then shrink it
            du = int(degree[u])
            pu = int(position[u])
            pw = int(bin_start[du])
            w = int(order[pw])
            if u != w:
                order[pu], order[pw] = w, u
                position[u], position[w] = pw, pu
            bin_start[du] += 1
            degree[u] -= 1
    return core
