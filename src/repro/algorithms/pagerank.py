"""PageRank (power iteration).

Another no-dependency control algorithm: the pull signal folds *all*
in-neighbor contributions (no break), so all engines schedule it the
same way.  Included to show the framework is a general graph engine,
not a dependency-only special case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.base import BaseEngine

__all__ = ["pagerank", "pagerank_signal", "PageRankResult"]


def pagerank_signal(v, nbrs, s, emit):
    """Sum the rank mass flowing in from all in-neighbors.

    Written delta-style (emit what *this* scan added): the analyzer
    marks ``total`` as carried data, so under dependency propagation a
    machine resumes from its predecessor's running sum and must not
    re-emit mass the predecessor already reported.
    """
    total = 0.0
    start = total
    for u in nbrs:
        total += s.rank[u] / s.out_degree[u]
    if total > start:
        emit(total - start)


def _accumulate_slot(v, value, s):
    s.incoming[v] += value
    return False


@dataclass
class PageRankResult:
    """Output of a PageRank run."""

    rank: np.ndarray
    iterations: int
    residual: float


def pagerank(
    engine: BaseEngine,
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 1e-10,
) -> PageRankResult:
    """Run power iteration for ``iterations`` rounds (or to tolerance)."""
    graph = engine.graph
    n = graph.num_vertices
    if n == 0:
        return PageRankResult(np.empty(0), 0, 0.0)

    s = engine.new_state()
    s.set("rank", np.full(n, 1.0 / n))
    s.set("out_degree", np.maximum(graph.out_degrees(), 1).astype(np.float64))
    s.add_array("incoming", np.float64, 0.0)

    active = graph.in_degrees() > 0
    residual = 0.0
    done = 0
    for _ in range(iterations):
        s.incoming[:] = 0.0
        engine.pull(
            pagerank_signal,
            _accumulate_slot,
            s,
            active,
            update_bytes=12,
            sync_bytes=8,
        )
        # Dangling mass is redistributed uniformly.
        dangling = float(s.rank[graph.out_degrees() == 0].sum())
        new_rank = (1.0 - damping) / n + damping * (s.incoming + dangling / n)
        residual = float(np.abs(new_rank - s.rank).sum())
        s.rank[:] = new_rank
        done += 1
        if residual < tolerance:
            break

    return PageRankResult(rank=s.rank.copy(), iterations=done, residual=residual)
