"""Single-source shortest paths on weighted graphs (Bellman-Ford).

A no-loop-dependency workload exercising the *weighted* graph substrate
(edge weights in the local CSR views).  The pull signal folds all
in-neighbor relaxations; engines schedule it identically, so SSSP also
serves as a regression control that the SympleGraph fall-back path
handles edge weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.base import BaseEngine
from repro.errors import ConvergenceError, GraphError

__all__ = ["sssp", "sssp_multi", "sssp_signal", "SSSPResult"]

INF = np.inf


def sssp_signal(v, nbrs, s, emit):
    """Relax over all in-edges: emit the best achievable distance.

    Weights are looked up by (v, u) pair — machines only scan their
    local slice of v's in-edges, so positional indexing would skew.
    """
    weights = s.wview[v]
    best = s.dist[v]
    for u in nbrs:
        candidate = s.dist[u] + weights.weight_to(u)
        if candidate < best:
            best = candidate
    if best < s.dist[v]:
        # min-fold into an idempotent relax-slot: re-delivering the same
        # distance cannot double-count.
        emit(best)  # repro: noqa[cumulative-emit]


def _relax_slot(v, value, s):
    if value < s.dist[v]:
        s.dist[v] = value
        return True
    return False


@dataclass
class SSSPResult:
    """Output of an SSSP run."""

    dist: np.ndarray
    iterations: int

    @property
    def reached(self) -> int:
        return int(np.isfinite(self.dist).sum())


def sssp(
    engine: BaseEngine,
    source: int,
    max_iterations: int | None = None,
) -> SSSPResult:
    """Bellman-Ford from ``source``; requires non-negative edge weights."""
    graph = engine.graph
    if not graph.is_weighted:
        raise GraphError("SSSP needs a weighted graph")
    if graph.num_edges and graph.in_weights.min() < 0:
        raise GraphError("SSSP requires non-negative edge weights")
    n = graph.num_vertices
    limit = max_iterations if max_iterations is not None else n + 1

    s = engine.new_state()
    s.set("dist", np.full(n, INF))
    s.dist[source] = 0.0
    s.set("wview", _weight_lookup(graph))

    active = graph.in_degrees() > 0
    iterations = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    engine.sync_state(np.asarray([source]), sync_bytes=8)

    while True:
        if iterations >= limit:
            raise ConvergenceError("SSSP exceeded its iteration budget")
        # only vertices adjacent to a changed distance can improve
        candidates = np.zeros(n, dtype=bool)
        for u in np.flatnonzero(frontier):
            candidates[graph.out_neighbors(int(u))] = True
        candidates &= active
        if not candidates.any():
            break
        result = engine.pull(
            sssp_signal,
            _relax_slot,
            s,
            candidates,
            update_bytes=12,
            sync_bytes=8,
        )
        iterations += 1
        frontier[:] = False
        if not result.any_changed:
            break
        frontier[result.changed] = True

    return SSSPResult(dist=s.dist.copy(), iterations=iterations)


def sssp_multi(
    engine: BaseEngine,
    sources: "list[int]",
    max_iterations: int | None = None,
) -> "list[SSSPResult]":
    """Run SSSP from many sources on one prepared engine, in order.

    The multi-source batch entry mirroring
    :func:`repro.algorithms.bfs.bfs_multi`: one engine (partition,
    executor bind, weight tables warmed per vertex) serves the whole
    batch, while each source still relaxes on a fresh distance array so
    its result is bit-identical to a standalone :func:`sssp` run.
    """
    return [
        sssp(engine, int(source), max_iterations) for source in sources
    ]


class _WeightView:
    """Cached per-destination (u -> weight) lookup tables."""

    __slots__ = ("_graph", "_cache")

    def __init__(self, graph) -> None:
        self._graph = graph
        self._cache = {}

    def __getitem__(self, v: int) -> "_DestWeights":
        table = self._cache.get(v)
        if table is None:
            table = _DestWeights(self._graph, v)
            self._cache[v] = table
        return table


class _DestWeights:
    __slots__ = ("_index",)

    def __init__(self, graph, v: int) -> None:
        weights = graph.in_edge_weights(v)
        neighbors = graph.in_neighbors(v)
        # parallel edges collapse to their minimum weight, which is the
        # only one a shortest path can use
        index: dict = {}
        for u, w in zip(neighbors, weights):
            u, w = int(u), float(w)
            if u not in index or w < index[u]:
                index[u] = w
        self._index = index

    def weight_to(self, u: int) -> float:
        return self._index[u]


def _weight_lookup(graph) -> "_WeightView":
    return _WeightView(graph)
