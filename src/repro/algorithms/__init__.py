"""Graph algorithms expressed as signal-slot vertex programs.

:data:`SIGNAL_UDFS` maps each algorithm name to its signal UDF(s) so
static tooling — the ``repro verify`` subcommand, the
:class:`~repro.api.Session` pre-flight gate — can find the exact
functions a run would execute without importing engine internals.
"""

from repro.algorithms.alias import (
    AliasTable,
    build_alias_tables,
    sample_neighbors_alias,
)
from repro.algorithms.bfs import (
    BFSProgram,
    BFSResult,
    bfs,
    bfs_multi,
    bottom_up_signal,
)
from repro.algorithms.cc import CCResult, cc_signal, connected_components
from repro.algorithms.incremental import (
    IncrementalBFS,
    IncrementalCC,
    IncrementalKCore,
    IncrementalResult,
    relax_depth_signal,
)
from repro.algorithms.kcore import (
    KCoreProgram,
    KCoreResult,
    PeelResult,
    coreness,
    kcore,
    kcore_peel,
    kcore_signal,
)
from repro.algorithms.kmeans import KMeansResult, kmeans, kmeans_signal
from repro.algorithms.mis import MISProgram, MISResult, mis, mis_signal
from repro.algorithms.pagerank import PageRankResult, pagerank, pagerank_signal
from repro.algorithms.sampling import (
    SamplingResult,
    sample_neighbors,
    sampling_signal,
)
from repro.algorithms.scc import SCCResult, scc, scc_reach_signal
from repro.algorithms.sssp import SSSPResult, sssp, sssp_multi, sssp_signal
from repro.algorithms.registry import (
    ALGORITHMS,
    AlgorithmSpec,
    all_specs,
    get_spec,
    register,
    signal_udfs,
)

#: algorithm name -> the signal UDF(s) its driver hands to the engine;
#: the verification gate certifies exactly these before a run
#: (derived from the registry — register a spec, not a dict entry)
SIGNAL_UDFS = signal_udfs()

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "SIGNAL_UDFS",
    "all_specs",
    "get_spec",
    "register",
    "signal_udfs",
    "bfs",
    "bfs_multi",
    "bottom_up_signal",
    "BFSResult",
    "BFSProgram",
    "mis",
    "mis_signal",
    "MISResult",
    "MISProgram",
    "kcore",
    "KCoreProgram",
    "kcore_signal",
    "kcore_peel",
    "coreness",
    "KCoreResult",
    "PeelResult",
    "kmeans",
    "kmeans_signal",
    "KMeansResult",
    "sample_neighbors",
    "sampling_signal",
    "SamplingResult",
    "connected_components",
    "cc_signal",
    "CCResult",
    "IncrementalBFS",
    "IncrementalCC",
    "IncrementalKCore",
    "IncrementalResult",
    "relax_depth_signal",
    "pagerank",
    "pagerank_signal",
    "PageRankResult",
    "scc",
    "scc_reach_signal",
    "SCCResult",
    "sssp",
    "sssp_multi",
    "sssp_signal",
    "SSSPResult",
    "AliasTable",
    "build_alias_tables",
    "sample_neighbors_alias",
]
