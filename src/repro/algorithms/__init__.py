"""Graph algorithms expressed as signal-slot vertex programs."""

from repro.algorithms.alias import (
    AliasTable,
    build_alias_tables,
    sample_neighbors_alias,
)
from repro.algorithms.bfs import BFSProgram, BFSResult, bfs, bottom_up_signal
from repro.algorithms.cc import CCResult, cc_signal, connected_components
from repro.algorithms.kcore import (
    KCoreProgram,
    KCoreResult,
    PeelResult,
    coreness,
    kcore,
    kcore_peel,
    kcore_signal,
)
from repro.algorithms.kmeans import KMeansResult, kmeans, kmeans_signal
from repro.algorithms.mis import MISProgram, MISResult, mis, mis_signal
from repro.algorithms.pagerank import PageRankResult, pagerank, pagerank_signal
from repro.algorithms.sampling import (
    SamplingResult,
    sample_neighbors,
    sampling_signal,
)
from repro.algorithms.scc import SCCResult, scc, scc_reach_signal
from repro.algorithms.sssp import SSSPResult, sssp, sssp_signal

__all__ = [
    "bfs",
    "bottom_up_signal",
    "BFSResult",
    "BFSProgram",
    "mis",
    "mis_signal",
    "MISResult",
    "MISProgram",
    "kcore",
    "KCoreProgram",
    "kcore_signal",
    "kcore_peel",
    "coreness",
    "KCoreResult",
    "PeelResult",
    "kmeans",
    "kmeans_signal",
    "KMeansResult",
    "sample_neighbors",
    "sampling_signal",
    "SamplingResult",
    "connected_components",
    "cc_signal",
    "CCResult",
    "pagerank",
    "pagerank_signal",
    "PageRankResult",
    "scc",
    "scc_reach_signal",
    "SCCResult",
    "sssp",
    "sssp_signal",
    "SSSPResult",
    "AliasTable",
    "build_alias_tables",
    "sample_neighbors_alias",
]
