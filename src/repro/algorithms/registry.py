"""The algorithm registry: one spec per algorithm, everything derives.

Before this module existed, the entry point kept three hand-maintained
tuples (``_ALGORITHMS``, ``_RESUMABLE``, ``SOURCED_ALGORITHMS``) plus a
per-algorithm ``if`` ladder in the bench harness, and the CLI and the
serving layer each re-declared their own lists.  An
:class:`AlgorithmSpec` now carries every fact the framework needs about
one algorithm:

* ``runner`` — the measurement-protocol driver the harness dispatches
  to (``None`` for signal-only entries like the incremental handles);
* ``signals`` — the signal UDF(s) a run would execute, for the
  ``repro verify`` corpus and the Session pre-flight gate;
* ``resumable`` — whether fault injection / checkpointing apply;
* ``sourced`` — whether ``RunConfig.sources`` selects explicit roots
  (the hook the serving layer's batch coalescer keys on);
* ``modes`` — which execution modes the algorithm supports
  (``"sync"`` and/or ``"async"``);
* ``async_resumable`` — whether the async driver is a
  :class:`~repro.fault.program.VertexProgram` that the recoverable
  driver can checkpoint (at bucket-epoch boundaries);
* ``extras`` — the :class:`~repro.api.RunConfig` knobs the runner
  reads, for documentation and introspection.

``RunConfig.__post_init__`` validation, the CLI ``--algorithm``
choices, ``repro.algorithms.SIGNAL_UDFS``, and the serve batch planner
all derive from this table; registering a spec here is the single step
that makes an algorithm a first-class ``Session.run`` citizen.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import EngineError

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "RunOutcome",
    "algorithm_names",
    "all_specs",
    "async_algorithms",
    "fixpoint_digest",
    "get_spec",
    "register",
    "resumable_algorithms",
    "run_sources",
    "signal_udfs",
    "sourced_algorithms",
]

#: the execution modes a spec may declare
MODES = ("sync", "async")


@dataclass
class RunOutcome:
    """What a runner reports back to the harness beyond the counters.

    ``scale`` divides the counters and simulated time (the multi-root
    averaging protocol); ``fixpoint`` is a digest of the *converged
    algorithm output alone* (no schedule-dependent metadata), the value
    the sync-vs-async equivalence tests compare.
    """

    scale: float = 1.0
    fixpoint: Optional[str] = None


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the framework knows about one algorithm."""

    name: str
    runner: Optional[Callable] = None
    signals: Tuple[Callable, ...] = ()
    resumable: bool = False
    sourced: bool = False
    modes: Tuple[str, ...] = ("sync",)
    async_resumable: bool = False
    extras: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        for mode in self.modes:
            if mode not in MODES:
                raise EngineError(
                    f"algorithm {self.name!r} declares unknown mode "
                    f"{mode!r}; expected one of {MODES}"
                )
        if self.async_resumable and "async" not in self.modes:
            raise EngineError(
                f"algorithm {self.name!r} is async_resumable but does "
                "not declare the 'async' mode"
            )

    @property
    def runnable(self) -> bool:
        """Whether ``Session.run`` can execute this algorithm."""
        return self.runner is not None

    def supports_mode(self, mode: str) -> bool:
        return mode in self.modes


_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add a spec to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise EngineError(
            f"algorithm {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> AlgorithmSpec:
    """The spec for ``name``; raises :class:`EngineError` if unknown."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise EngineError(
            f"unknown algorithm {name!r}; "
            f"expected one of {algorithm_names()}"
        )
    return spec


def all_specs() -> Tuple[AlgorithmSpec, ...]:
    """Every registered spec (runnable and signal-only), name order."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def algorithm_names() -> Tuple[str, ...]:
    """Names of every runnable algorithm, sorted."""
    return tuple(
        name for name in sorted(_REGISTRY) if _REGISTRY[name].runnable
    )


def resumable_algorithms() -> Tuple[str, ...]:
    """Algorithms fault injection and checkpointing support."""
    return tuple(
        name for name in sorted(_REGISTRY) if _REGISTRY[name].resumable
    )


def sourced_algorithms() -> Tuple[str, ...]:
    """Algorithms that accept an explicit ``sources`` tuple."""
    return tuple(
        name for name in sorted(_REGISTRY) if _REGISTRY[name].sourced
    )


def async_algorithms() -> Tuple[str, ...]:
    """Algorithms with a priority-bucket async driver."""
    return tuple(
        name
        for name in sorted(_REGISTRY)
        if _REGISTRY[name].supports_mode("async")
    )


def signal_udfs() -> Dict[str, Tuple[Callable, ...]]:
    """Name -> signal UDF(s), for the verification tooling."""
    return {
        name: _REGISTRY[name].signals
        for name in sorted(_REGISTRY)
        if _REGISTRY[name].signals
    }


# -- shared runner helpers ---------------------------------------------------


def fixpoint_digest(*arrays: np.ndarray) -> str:
    """Canonical sha256 over converged output arrays.

    Covers values and dtype only — deliberately *not* iteration counts,
    byte tallies, or anything else the schedule can legitimately vary —
    so a sync and an async run of the same algorithm digest identically
    iff they converged to the same answer.
    """
    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode("ascii"))
        h.update(arr.tobytes())
    return h.hexdigest()


def _seeded_roots(graph, num_roots: int, seed: int) -> np.ndarray:
    """Random non-isolated roots (the paper uses 64 of them)."""
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(graph.out_degrees() > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertex to root BFS at")
    count = min(num_roots, candidates.size)
    return rng.choice(candidates, size=count, replace=False)


def run_sources(graph, config, default_count: int) -> np.ndarray:
    """The roots/sources one run traverses from.

    Explicit ``config.sources`` (validated against the graph) when the
    caller — typically the serving layer's batching coalescer — pinned
    them; otherwise the seeded multi-root protocol.
    """
    if config.sources is None:
        return _seeded_roots(graph, default_count, config.seed)
    sources = np.asarray(config.sources, dtype=np.int64)
    n = graph.num_vertices
    bad = sources[(sources < 0) | (sources >= n)]
    if bad.size:
        raise ValueError(
            f"sources {bad.tolist()} out of range for a graph with "
            f"{n} vertices"
        )
    return sources


def _async_stats(extra: Dict[str, float], results) -> None:
    """Accumulate bucket-scheduler stats into a run's extras."""
    extra["async_buckets"] = float(sum(r.buckets for r in results))
    extra["async_waves"] = float(sum(r.waves for r in results))
    extra["activations"] = float(sum(r.activations for r in results))


# -- runners -----------------------------------------------------------------
#
# A runner drives one prepared engine under the measurement protocol:
#
#     runner(engine, graph, config, drive, extra) -> RunOutcome
#
# ``drive(program)`` executes a VertexProgram through the plain or the
# recoverable driver depending on ``config.faulted`` (the harness owns
# that closure so RecoveryReports land in ``extra`` uniformly); the
# runner fills ``extra`` with its per-algorithm metrics in place.


def _run_bfs(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.bfs import BFSProgram, bfs_multi

    roots = [int(r) for r in run_sources(graph, config, config.bfs_roots)]
    if config.mode == "async":
        from repro.engine.async_mode import AsyncBFSProgram

        results = [
            drive(
                AsyncBFSProgram(
                    root,
                    width=config.async_bucket_width,
                    seed=config.seed,
                )
            )
            for root in roots
        ]
        _async_stats(extra, results)
    elif config.faulted:
        results = [drive(BFSProgram(root)) for root in roots]
    else:
        # the multi-source batch entry: identical program sequence,
        # one engine serving the whole batch
        results = bfs_multi(engine, roots)
    reached = sum(result.reached for result in results)
    extra["avg_reached"] = reached / len(roots)
    if config.sources is not None:
        # explicit sources get per-source answers in the result so
        # a coalesced serving batch can answer every request
        for root, result in zip(roots, results):
            extra[f"reached[{root}]"] = float(result.reached)
    fixpoint = fixpoint_digest(
        *[a for r in results for a in (r.visited, r.depth)]
    )
    return RunOutcome(scale=1.0 / len(roots), fixpoint=fixpoint)


def _run_sssp(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.sssp import sssp_multi

    roots = [int(r) for r in run_sources(graph, config, 1)]
    if config.mode == "async":
        from repro.engine.async_mode import async_sssp

        results = [
            async_sssp(
                engine,
                root,
                width=config.async_bucket_width,
                seed=config.seed,
            )
            for root in roots
        ]
        _async_stats(extra, results)
    else:
        results = sssp_multi(engine, roots)
    reached = sum(result.reached for result in results)
    extra["avg_reached"] = reached / len(roots)
    if config.sources is not None:
        for root, result in zip(roots, results):
            extra[f"reached[{root}]"] = float(result.reached)
    fixpoint = fixpoint_digest(*[r.dist for r in results])
    return RunOutcome(scale=1.0 / len(roots), fixpoint=fixpoint)


def _run_cc(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.cc import connected_components

    if config.mode == "async":
        from repro.engine.async_mode import async_cc

        result = async_cc(
            engine, width=config.async_bucket_width, seed=config.seed
        )
        _async_stats(extra, [result])
    else:
        result = connected_components(engine)
    extra["components"] = float(result.num_components)
    extra["iterations"] = float(result.iterations)
    return RunOutcome(fixpoint=fixpoint_digest(result.label))


def _run_pagerank(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.pagerank import pagerank

    if config.mode == "async":
        from repro.engine.async_mode import async_pagerank

        result = async_pagerank(
            engine, width=config.async_bucket_width, seed=config.seed
        )
        _async_stats(extra, [result])
    else:
        result = pagerank(engine)
        # one activation per active vertex per power iteration — the
        # baseline the async scheduler's selective activation beats
        n_active = int((graph.in_degrees() > 0).sum())
        extra["activations"] = float(result.iterations * n_active)
    extra["iterations"] = float(result.iterations)
    extra["residual"] = float(result.residual)
    # no fixpoint digest: PageRank converges epsilon-bounded, not
    # bit-identically, across schedules (see docs/API.md)
    return RunOutcome()


def _run_kcore(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.kcore import KCoreProgram

    result = drive(KCoreProgram(config.kcore_k))
    extra["core_size"] = result.size
    extra["rounds"] = result.rounds
    return RunOutcome()


def _run_mis(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.mis import MISProgram

    result = drive(MISProgram(seed=config.seed))
    extra["mis_size"] = result.size
    extra["rounds"] = result.rounds
    return RunOutcome()


def _run_kmeans(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.kmeans import kmeans

    result = kmeans(engine, rounds=config.kmeans_rounds, seed=config.seed)
    extra["assigned"] = result.assigned_count
    return RunOutcome()


def _run_sampling(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.sampling import sample_neighbors

    result = sample_neighbors(engine, seed=config.seed)
    extra["sampled"] = result.sampled_count
    return RunOutcome()


def _run_scc(engine, graph, config, drive, extra) -> RunOutcome:
    from repro.algorithms.scc import scc

    # FW-BW-Trim drives its own forward/backward engines (serial, so the
    # result is executor-independent); their counters merge into the
    # session engine so the metered run stays complete
    result = scc(
        graph,
        engine_kind=config.engine,
        num_machines=config.machines,
        seed=config.seed,
        collect_metrics=engine,
    )
    extra["components"] = float(result.num_components)
    extra["rounds"] = float(result.rounds)
    return RunOutcome(fixpoint=fixpoint_digest(result.component))


# -- registration ------------------------------------------------------------


def _register_builtins() -> None:
    from repro.algorithms.bfs import bottom_up_signal
    from repro.algorithms.cc import cc_signal
    from repro.algorithms.incremental import relax_depth_signal
    from repro.algorithms.kcore import kcore_signal
    from repro.algorithms.kmeans import kmeans_signal
    from repro.algorithms.mis import mis_signal
    from repro.algorithms.pagerank import pagerank_signal
    from repro.algorithms.sampling import sampling_signal
    from repro.algorithms.scc import scc_reach_signal
    from repro.algorithms.sssp import sssp_signal

    register(AlgorithmSpec(
        name="bfs",
        runner=_run_bfs,
        signals=(bottom_up_signal,),
        resumable=True,
        sourced=True,
        modes=("sync", "async"),
        async_resumable=True,
        extras=("bfs_roots", "sources", "async_bucket_width"),
        description="direction-optimizing BFS, multi-root averaged",
    ))
    register(AlgorithmSpec(
        name="cc",
        runner=_run_cc,
        signals=(cc_signal,),
        modes=("sync", "async"),
        extras=("async_bucket_width",),
        description="connected components by min-label propagation",
    ))
    register(AlgorithmSpec(
        name="kcore",
        runner=_run_kcore,
        signals=(kcore_signal,),
        resumable=True,
        extras=("kcore_k",),
        description="k-core decomposition by iterative peeling",
    ))
    register(AlgorithmSpec(
        name="kmeans",
        runner=_run_kmeans,
        signals=(kmeans_signal,),
        extras=("kmeans_rounds",),
        description="graph k-means label assignment",
    ))
    register(AlgorithmSpec(
        name="mis",
        runner=_run_mis,
        signals=(mis_signal,),
        resumable=True,
        description="maximal independent set (Luby's algorithm)",
    ))
    register(AlgorithmSpec(
        name="pagerank",
        runner=_run_pagerank,
        signals=(pagerank_signal,),
        modes=("sync", "async"),
        extras=("async_bucket_width",),
        description="PageRank: power iteration / async residual push",
    ))
    register(AlgorithmSpec(
        name="sampling",
        runner=_run_sampling,
        signals=(sampling_signal,),
        description="weighted neighbor sampling (prefix sums)",
    ))
    register(AlgorithmSpec(
        name="scc",
        runner=_run_scc,
        signals=(scc_reach_signal,),
        description="strongly connected components (FW-BW-Trim)",
    ))
    register(AlgorithmSpec(
        name="sssp",
        runner=_run_sssp,
        signals=(sssp_signal,),
        sourced=True,
        modes=("sync", "async"),
        extras=("sources", "async_bucket_width"),
        description="shortest paths: Bellman-Ford / delta-stepping",
    ))
    # signal-only entries: driven through Session.mutate +
    # IncrementalBFS/IncrementalCC handles, not Session.run, but their
    # UDFs still go through the verification corpus
    register(AlgorithmSpec(
        name="incremental-bfs",
        signals=(relax_depth_signal,),
        description="incremental BFS repair (Ramalingam-Reps)",
    ))
    register(AlgorithmSpec(
        name="incremental-cc",
        signals=(cc_signal,),
        description="incremental CC repair (affected closure)",
    ))


_register_builtins()

#: runnable algorithm names — the tuple the CLI and docs iterate
ALGORITHMS = algorithm_names()
