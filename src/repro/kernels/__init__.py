"""Batched NumPy CSR kernels for classified signal UDFs.

The interpreter executes one Python call per (vertex, machine) pair —
correct, but the dominant wall-clock cost.  This package executes whole
per-(machine, step) candidate batches as NumPy array programs over the
flattened CSR neighbor segments, for UDFs the analyzer classified into
a known shape (:mod:`repro.analysis.kernelspec`).  Results, counters,
and simulated network traffic are bit-identical to the interpreter;
anything unclassified falls back to the per-vertex path, and
``SympleOptions.use_kernels=False`` (or ``use_kernels=False`` on the
baseline engines) turns the fast path off entirely.

Importing the package registers the built-in kernels; see
:func:`repro.kernels.registry.register_kernel` to add more.
"""

from repro.kernels import csr  # noqa: F401 - registers built-in kernels
from repro.kernels.registry import (
    KernelBatch,
    available_kernels,
    get_kernel,
    register_kernel,
)

__all__ = [
    "KernelBatch",
    "available_kernels",
    "get_kernel",
    "register_kernel",
]
