"""Kernel registry: kind strings → batched CSR kernel implementations.

The registry decouples *classification* (``repro.analysis.kernelspec``
decides a UDF is, say, a ``first_match_break``) from *execution* (this
package provides a vectorized implementation for that kind).  Engines
look kinds up at pull time; an unknown kind simply means the batch is
interpreted per vertex, so registering a new kernel is purely additive.

A kernel is a callable::

    kernel(spec, state, local, vertices, carried_in=None) -> KernelBatch

where ``spec`` is the :class:`~repro.analysis.kernelspec.KernelSpec`,
``state`` the :class:`~repro.engine.state.StateStore`, ``local`` the
:class:`~repro.partition.base.LocalAdjacency` whose CSR slices are
scanned, and ``vertices`` an int64 array of destination vertices (all
with nonzero local degree).  ``carried_in`` optionally supplies
restored loop-carried values as ``(present_mask, values)`` arrays
aligned with ``vertices`` (the circulant dependency hand-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "KernelBatch",
    "register_kernel",
    "get_kernel",
    "available_kernels",
]


@dataclass
class KernelBatch:
    """Result of one batched kernel invocation.

    All arrays align with the ``vertices`` argument of the kernel call.
    ``edges`` is the number of neighbors each vertex *actually scanned*
    (post-break), matching what ``CountingNeighbors`` would have
    counted; the engines charge their edge counters from it.  ``values``
    is only meaningful where ``emit_mask`` is set.  ``broke`` marks
    vertices whose scan ended in a ``break`` — the loop-carried control
    bit the circulant schedule forwards.  ``carried`` holds the final
    value of the single carried variable (float64, only for kinds that
    carry one), which becomes the dependency *data* hand-off.
    """

    edges: np.ndarray
    emit_mask: np.ndarray
    values: np.ndarray
    broke: Optional[np.ndarray] = None
    carried: Optional[np.ndarray] = None
    extras: Dict[str, np.ndarray] = field(default_factory=dict)


Kernel = Callable[..., KernelBatch]

_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kind: str) -> Callable[[Kernel], Kernel]:
    """Class decorator/registration hook binding ``kind`` to a kernel.

    Later registrations override earlier ones, so downstream code can
    swap in alternative implementations (e.g. a numba build) without
    touching the engines.
    """

    def decorate(fn: Kernel) -> Kernel:
        _REGISTRY[kind] = fn
        return fn

    return decorate


def get_kernel(kind: str) -> Optional[Kernel]:
    """The kernel registered for ``kind``, or ``None``."""
    return _REGISTRY.get(kind)


def available_kernels() -> Tuple[str, ...]:
    """Registered kind strings, sorted for stable display."""
    return tuple(sorted(_REGISTRY))
