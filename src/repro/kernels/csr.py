"""Vectorized CSR kernels for the classified UDF shapes.

Each kernel replays what the per-vertex interpreter would have done for
a whole batch of destination vertices at once, operating on flattened
CSR neighbor segments.  Two invariants are load-bearing:

* **Bit-identical results.** Emit masks, emitted values, and carried
  values must equal the interpreter's, including float semantics: the
  ``full_scan_sum`` kernel therefore accumulates round-by-round in
  segment order (left-to-right, exactly the interpreter's ``+=``
  sequence) instead of using ``np.add.reduceat``, whose pairwise
  summation would round differently.  Min folds and boolean predicates
  are order-independent, so those use ``reduceat`` directly.
* **Bit-identical counters.** ``KernelBatch.edges`` reports how many
  neighbors the interpreter would have *scanned* — up to and including
  the breaking neighbor — so the engines' edge/byte accounting does not
  change when the fast path is on.

All kernels accept ``carried_in=(present, values)`` to restore
loop-carried state forwarded by the circulant schedule; ``values``
arrive as float64 (the :class:`~repro.engine.dep.DepStore` wire type),
matching the interpreter's restored-value dtype behavior.

Aliasing contract with the process executor: under the process backend
the :class:`~repro.engine.state.StateStore` arrays a kernel reads are
*adopted* shared-memory views aliased between the parent and every
worker.  Kernels (and the tasks that call them) must treat them as
read-only — all state mutation happens in the parent's merge step via
the store's own arrays (``s.field[...] = ...``), which writes through
to the shared pages in place.  Kernels never copy state arrays, so the
fast path operates directly on the arena views with no per-map
publication.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analysis.kernelspec import (
    COUNT_TO_K_BREAK,
    FIRST_MATCH_BREAK,
    FULL_SCAN_MIN,
    FULL_SCAN_SUM,
    KernelSpec,
)
from repro.kernels.registry import KernelBatch, register_kernel

__all__ = [
    "first_match_break_kernel",
    "count_to_k_break_kernel",
    "full_scan_sum_kernel",
    "full_scan_min_kernel",
]

CarriedIn = Optional[Tuple[np.ndarray, np.ndarray]]


def _segments(local, vertices: np.ndarray):
    """Flatten the CSR neighbor segments of ``vertices``.

    Returns ``(lens, seg_start, flat, pos)``: per-vertex segment
    lengths, each segment's offset into the flat arrays, the
    concatenated neighbor ids, and each flat element's position within
    its segment.  Callers guarantee every vertex has nonzero degree.
    """
    indptr = local.indptr
    starts = indptr[vertices].astype(np.int64)
    lens = (indptr[vertices + 1] - indptr[vertices]).astype(np.int64)
    total = int(lens.sum())
    seg_start = np.zeros(vertices.shape[0], dtype=np.int64)
    np.cumsum(lens[:-1], out=seg_start[1:])
    flat_index = np.repeat(starts - seg_start, lens) + np.arange(
        total, dtype=np.int64
    )
    flat = local.indices[flat_index].astype(np.int64, copy=False)
    pos = np.arange(total, dtype=np.int64) - np.repeat(seg_start, lens)
    return lens, seg_start, flat, pos


def _flat_eval(fn, state, u, v, shape, as_bool: bool = False) -> np.ndarray:
    """Evaluate a compiled expression and broadcast it to ``shape``.

    ``as_bool`` converts with NumPy truthiness (nonzero → True), the
    vector analogue of the interpreter's ``if <expr>:``.
    """
    out = np.asarray(fn(state, u, v))
    if as_bool:
        out = out.astype(bool, copy=False)
    return np.broadcast_to(out, shape)


def _per_vertex_eval(fn, state, vertices: np.ndarray) -> np.ndarray:
    """Evaluate a loop-invariant expression once per destination vertex."""
    out = np.asarray(fn(state, None, vertices))
    return np.broadcast_to(out, vertices.shape)


def _empty_batch() -> KernelBatch:
    zero = np.zeros(0, dtype=np.int64)
    return KernelBatch(
        edges=zero,
        emit_mask=np.zeros(0, dtype=bool),
        values=zero,
        broke=np.zeros(0, dtype=bool),
        carried=np.zeros(0, dtype=np.float64),
    )


@register_kernel(FIRST_MATCH_BREAK)
def first_match_break_kernel(
    spec: KernelSpec, state, local, vertices, carried_in: CarriedIn = None
) -> KernelBatch:
    """Per-segment first match: emit once at the first predicate hit.

    The first hit is a masked minimum over within-segment positions
    (``np.minimum.reduceat`` with the segment length as the no-match
    sentinel) — the "masked argmax over ``in_indices`` slices" plan.
    No loop-carried data: the only dependency is the break bit itself.
    """
    if vertices.size == 0:
        return _empty_batch()
    lens, seg_start, flat, pos = _segments(local, vertices)
    v_rep = np.repeat(vertices, lens)
    pred = _flat_eval(
        spec.exprs["predicate"], state, flat, v_rep, flat.shape, as_bool=True
    )
    sentinel = np.repeat(lens, lens)
    first = np.minimum.reduceat(np.where(pred, pos, sentinel), seg_start)
    matched = first < lens
    edges = np.where(matched, first + 1, lens)
    hit = flat[seg_start + np.minimum(first, lens - 1)]
    values = np.array(
        _flat_eval(spec.exprs["emit"], state, hit, vertices, vertices.shape)
    )
    return KernelBatch(
        edges=edges, emit_mask=matched.copy(), values=values, broke=matched
    )


@register_kernel(COUNT_TO_K_BREAK)
def count_to_k_break_kernel(
    spec: KernelSpec, state, local, vertices, carried_in: CarriedIn = None
) -> KernelBatch:
    """Running predicate count saturating at a threshold.

    A within-segment cumulative sum of predicate hits locates the first
    position where the (restored) count reaches the threshold; edges
    scanned and the final count follow from that position.
    """
    if vertices.size == 0:
        return _empty_batch()
    lens, seg_start, flat, pos = _segments(local, vertices)
    v_rep = np.repeat(vertices, lens)
    pred = _flat_eval(
        spec.exprs["predicate"], state, flat, v_rep, flat.shape, as_bool=True
    )
    init = _per_vertex_eval(spec.exprs["init"], state, vertices)
    if carried_in is not None and bool(carried_in[0].any()):
        present, restored = carried_in
        start = init.astype(np.float64).copy()
        start[present] = restored[present]
    else:
        start = np.array(init, copy=True)

    inc = pred.astype(start.dtype if start.dtype.kind == "f" else np.int64)
    running = np.cumsum(inc)
    running -= np.repeat(running[seg_start] - inc[seg_start], lens)
    running = running + np.repeat(start, lens)

    threshold = _per_vertex_eval(spec.exprs["threshold"], state, vertices)
    sat = pred & (running >= np.repeat(threshold, lens))
    sentinel = np.repeat(lens, lens)
    first = np.minimum.reduceat(np.where(sat, pos, sentinel), seg_start)
    broke = first < lens
    edges = np.where(broke, first + 1, lens)
    last = seg_start + np.where(broke, np.minimum(first, lens - 1), lens - 1)
    final = running[last]
    emit_mask = final > start
    values = final - start
    return KernelBatch(
        edges=edges,
        emit_mask=emit_mask,
        values=values,
        broke=broke,
        carried=final.astype(np.float64, copy=False),
    )


@register_kernel(FULL_SCAN_SUM)
def full_scan_sum_kernel(
    spec: KernelSpec, state, local, vertices, carried_in: CarriedIn = None
) -> KernelBatch:
    """Full-scan sum fold, accumulated in the interpreter's add order.

    Segments are sorted by length (descending, stable) so each round
    adds the r-th term of every still-active segment with one slice —
    left-to-right sequential addition per segment, hence bit-identical
    float rounding versus the interpreter, unlike pairwise ``reduceat``.
    """
    if vertices.size == 0:
        return _empty_batch()
    lens, seg_start, flat, _ = _segments(local, vertices)
    v_rep = np.repeat(vertices, lens)
    term = _flat_eval(spec.exprs["term"], state, flat, v_rep, flat.shape)
    init = _per_vertex_eval(spec.exprs["init"], state, vertices)
    if carried_in is not None and bool(carried_in[0].any()):
        present, restored = carried_in
        start = init.astype(np.float64).copy()
        start[present] = restored[present]
    else:
        start = np.array(init, copy=True)

    order = np.argsort(-lens, kind="stable")
    lens_sorted = lens[order]
    seg_sorted = seg_start[order]
    totals_sorted = start[order].astype(
        np.result_type(start.dtype, term.dtype), copy=True
    )
    lens_ascending = lens_sorted[::-1]
    for r in range(int(lens_sorted[0])):
        active = lens_sorted.size - int(
            np.searchsorted(lens_ascending, r, side="right")
        )
        totals_sorted[:active] = (
            totals_sorted[:active] + term[seg_sorted[:active] + r]
        )
    totals = np.empty_like(totals_sorted)
    totals[order] = totals_sorted

    emit_mask = totals > start
    values = totals - start
    return KernelBatch(
        edges=lens,
        emit_mask=emit_mask,
        values=values,
        broke=None,
        carried=totals.astype(np.float64, copy=False),
    )


@register_kernel(FULL_SCAN_MIN)
def full_scan_min_kernel(
    spec: KernelSpec, state, local, vertices, carried_in: CarriedIn = None
) -> KernelBatch:
    """Full-scan minimum fold (order-independent, so ``reduceat`` is safe)."""
    if vertices.size == 0:
        return _empty_batch()
    lens, seg_start, flat, _ = _segments(local, vertices)
    v_rep = np.repeat(vertices, lens)
    term = _flat_eval(spec.exprs["term"], state, flat, v_rep, flat.shape)
    init = _per_vertex_eval(spec.exprs["init"], state, vertices)
    if carried_in is not None and bool(carried_in[0].any()):
        present, restored = carried_in
        start = init.astype(np.float64).copy()
        start[present] = restored[present]
    else:
        start = np.array(init, copy=True)
    best = np.minimum(start, np.minimum.reduceat(term, seg_start))
    emit_mask = best < init
    return KernelBatch(
        edges=lens.copy(),
        emit_mask=emit_mask,
        values=best,
        broke=None,
        carried=best.astype(np.float64, copy=False),
    )
