"""Graph partitioning: master/mirror placement strategies."""

from repro.partition.base import LocalAdjacency, Partition, Partitioner
from repro.partition.chunking import balanced_chunks, chunk_of
from repro.partition.delta import (
    RefreshStats,
    circulant_cells,
    partition_with_masters,
    refresh_partition,
)
from repro.partition.edge_cut import IncomingEdgeCut, OutgoingEdgeCut
from repro.partition.hybrid import HybridCut
from repro.partition.vertex_cut import (
    CartesianVertexCut,
    HashVertexCut,
    grid_shape,
)

__all__ = [
    "LocalAdjacency",
    "Partition",
    "Partitioner",
    "balanced_chunks",
    "chunk_of",
    "RefreshStats",
    "circulant_cells",
    "partition_with_masters",
    "refresh_partition",
    "OutgoingEdgeCut",
    "IncomingEdgeCut",
    "HybridCut",
    "HashVertexCut",
    "CartesianVertexCut",
    "grid_shape",
]
