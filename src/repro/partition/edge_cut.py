"""Edge-cut partitioners.

*Outgoing edge-cut* (Gemini, used by SympleGraph): all outgoing edges of
a vertex live on its master machine, so edge ``(u, v)`` is stored on
``master(u)`` and pull-mode processing of ``v`` is scattered across the
machines owning its in-neighbors — exactly the situation that breaks
loop-carried dependency in existing frameworks.

*Incoming edge-cut*: edge ``(u, v)`` is stored on ``master(v)``; all
in-edges of a vertex are local, so the dependency problem vanishes (the
paper notes this partition is rarely used due to load imbalance —
reproduced here for the applicability discussion in Section 2.3).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import Partition, Partitioner
from repro.partition.chunking import balanced_chunks, chunk_of

__all__ = ["OutgoingEdgeCut", "IncomingEdgeCut"]


def _edge_endpoints_in_order(graph: CSRGraph):
    """(src, dst) arrays in the in-CSR (dst-sorted) edge ordering."""
    dst = np.repeat(np.arange(graph.num_vertices), graph.in_degrees())
    src = graph.in_indices
    return src, dst


def _edge_endpoints_out_order(graph: CSRGraph):
    """(src, dst) arrays in the out-CSR (src-sorted) edge ordering."""
    src = np.repeat(np.arange(graph.num_vertices), graph.out_degrees())
    dst = graph.out_indices
    return src, dst


class OutgoingEdgeCut(Partitioner):
    """Gemini-style chunked outgoing edge-cut.

    Masters are assigned by balanced contiguous chunking over the hybrid
    load ``alpha + in_degree`` (pull-mode work); edge ``(u, v)`` is owned
    by ``master(u)``.
    """

    name = "outgoing-edge-cut"

    def __init__(self, alpha: float = 8.0) -> None:
        self.alpha = alpha

    def partition(self, graph: CSRGraph, num_machines: int) -> Partition:
        self._check_machines(num_machines)
        boundaries = balanced_chunks(
            graph.in_degrees(), num_machines, alpha=self.alpha
        )
        vertex_ids = np.arange(graph.num_vertices)
        master_of = chunk_of(boundaries, vertex_ids)
        in_src, _ = _edge_endpoints_in_order(graph)
        out_src, _ = _edge_endpoints_out_order(graph)
        return Partition(
            graph,
            master_of,
            in_edge_owner=master_of[in_src] if in_src.size else in_src,
            out_edge_owner=master_of[out_src] if out_src.size else out_src,
            kind=self.name,
            num_machines=num_machines,
        )


class IncomingEdgeCut(Partitioner):
    """Incoming edge-cut: every in-edge of a vertex is on its master."""

    name = "incoming-edge-cut"

    def __init__(self, alpha: float = 8.0) -> None:
        self.alpha = alpha

    def partition(self, graph: CSRGraph, num_machines: int) -> Partition:
        self._check_machines(num_machines)
        boundaries = balanced_chunks(
            graph.in_degrees(), num_machines, alpha=self.alpha
        )
        vertex_ids = np.arange(graph.num_vertices)
        master_of = chunk_of(boundaries, vertex_ids)
        _, in_dst = _edge_endpoints_in_order(graph)
        _, out_dst = _edge_endpoints_out_order(graph)
        return Partition(
            graph,
            master_of,
            in_edge_owner=master_of[in_dst] if in_dst.size else in_dst,
            out_edge_owner=master_of[out_dst] if out_dst.size else out_dst,
            kind=self.name,
            num_machines=num_machines,
        )
