"""Incremental partition refresh for mutated graphs.

When a :class:`~repro.graph.dynamic.DynamicGraph` applies a batch, the
session does not re-partition from scratch.  The master assignment is
*frozen* at the partition's original chunking (re-sharding on every
batch would defeat the warm shared-memory topology), and only the
machines that own a mutated edge rebuild their local adjacency — every
other machine keeps its exact :class:`~repro.partition.base.LocalAdjacency`
objects, and its rows of the dependency bitmaps (``_has_in`` /
``_has_out``, the structures that gate mirror placement and dependency
sync) are carried over untouched.

That selective invalidation is the SympleGraph twist: under the
circulant schedule, machine ``m`` processes destination partition
``j = (m + s + 1) mod p`` at step ``s``, so a mutated edge ``(u, v)``
owned by machine ``m`` with ``master(v) = j`` dirties exactly the
schedule cell ``(m, (j - m - 1) mod p)``.  :func:`circulant_cells`
enumerates the dirty cells and :class:`RefreshStats` reports how much
of the ``p x p`` schedule survived.

Only the edge-cut families refresh incrementally (ownership is a pure
function of the frozen masters); other strategies raise
:class:`~repro.errors.PartitionError` and the caller rebuilds from
scratch on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import MutationBatch
from repro.partition.base import LocalAdjacency, Partition, _restrict_csr

__all__ = [
    "RefreshStats",
    "circulant_cells",
    "refresh_partition",
    "partition_with_masters",
]

#: partition kinds whose edge ownership is a pure function of the
#: frozen master assignment -> edge endpoints (incrementally refreshable)
_REFRESHABLE = ("outgoing-edge-cut", "incoming-edge-cut")


@dataclass
class RefreshStats:
    """What one incremental partition refresh invalidated."""

    kind: str
    num_machines: int
    #: machines whose local adjacency was rebuilt
    touched_machines: List[int]
    #: machines whose LocalAdjacency objects were reused as-is
    reused_machines: int
    #: dirty circulant cells ``(machine, step)``
    cells: List[Tuple[int, int]]
    #: added isolated vertices (column extension only)
    added_vertices: int

    @property
    def schedule_cells(self) -> int:
        return len(self.cells)

    @property
    def total_cells(self) -> int:
        return self.num_machines * self.num_machines


def circulant_cells(
    owners: np.ndarray, dst_masters: np.ndarray, num_machines: int
) -> List[Tuple[int, int]]:
    """Dirty ``(machine, step)`` schedule cells for mutated edges.

    ``owners[i]`` is the machine owning mutated edge i; ``dst_masters[i]``
    is the master machine of its destination.  Machine ``m`` reaches
    destination partition ``j`` at step ``s = (j - m - 1) mod p``
    (inverse of ``circulant_partition``).
    """
    if owners.size == 0:
        return []
    steps = (dst_masters - owners - 1) % num_machines
    cells = np.unique(
        np.stack([owners, steps], axis=1), axis=0
    )
    return [(int(m), int(s)) for m, s in cells]


def _edge_owners(
    graph: CSRGraph, master_of: np.ndarray, kind: str
) -> Tuple[np.ndarray, np.ndarray]:
    """(in_edge_owner, out_edge_owner) under a frozen master map."""
    if kind == "outgoing-edge-cut":
        in_key = graph.in_indices  # src, in dst-sorted order
        out_key = np.repeat(
            np.arange(graph.num_vertices), graph.out_degrees()
        )
    else:  # incoming-edge-cut
        in_key = np.repeat(
            np.arange(graph.num_vertices), graph.in_degrees()
        )
        out_key = graph.out_indices  # dst, in src-sorted order
    empty = np.empty(0, dtype=np.int64)
    in_owner = master_of[in_key] if in_key.size else empty
    out_owner = master_of[out_key] if out_key.size else empty
    return in_owner, out_owner


def partition_with_masters(
    graph: CSRGraph,
    master_of: np.ndarray,
    kind: str,
    num_machines: int,
) -> Partition:
    """From-scratch partition under a *given* master assignment.

    The reference implementation an incremental refresh must match
    bit-for-bit (used by the metamorphic tests, and by callers that
    want to re-partition a mutated graph while keeping placement).
    """
    if kind not in _REFRESHABLE:
        raise PartitionError(
            f"partition kind {kind!r} has no master-preserving rebuild; "
            f"supported: {_REFRESHABLE}"
        )
    in_owner, out_owner = _edge_owners(graph, master_of, kind)
    return Partition(
        graph, master_of, in_owner, out_owner, kind,
        num_machines=num_machines,
    )


def _extend_adjacency(adj: LocalAdjacency, added: int) -> LocalAdjacency:
    """Widen an untouched machine's CSR to cover appended vertices."""
    if added == 0:
        return adj
    indptr = np.concatenate([
        adj.indptr, np.full(added, adj.indptr[-1], dtype=np.int64),
    ])
    return LocalAdjacency(indptr, adj.indices, adj.weights)


def refresh_partition(
    old: Partition, graph: CSRGraph, batch: MutationBatch
) -> Tuple[Partition, RefreshStats]:
    """Refresh ``old`` to cover ``graph`` after ``batch`` was applied.

    ``graph`` must be the post-batch snapshot of the graph ``old`` was
    built from.  Masters are frozen (appended vertices land on the last
    machine, matching ``chunk_of`` for out-of-range ids); only machines
    owning a mutated edge rebuild their local adjacency and dependency
    bitmap rows.  The result is bit-identical to
    :func:`partition_with_masters` on the same inputs.
    """
    if old.kind not in _REFRESHABLE:
        raise PartitionError(
            f"partition kind {old.kind!r} does not support incremental "
            f"refresh; supported: {_REFRESHABLE}"
        )
    added = graph.num_vertices - old.graph.num_vertices
    if added != batch.add_vertices or added < 0:
        raise PartitionError(
            f"refresh expects the post-batch snapshot: vertex delta "
            f"{added} != batch.add_vertices {batch.add_vertices}"
        )
    p = old.num_machines
    n = graph.num_vertices
    master_of = old.master_of
    if added:
        master_of = np.concatenate([
            master_of, np.full(added, p - 1, dtype=np.int64),
        ])

    # which machines own a mutated edge, under this strategy's rule
    mut_src = np.concatenate([batch.insert_src, batch.delete_src])
    mut_dst = np.concatenate([batch.insert_dst, batch.delete_dst])
    if old.kind == "outgoing-edge-cut":
        owners = master_of[mut_src] if mut_src.size else mut_src
    else:
        owners = master_of[mut_dst] if mut_dst.size else mut_dst
    dst_masters = master_of[mut_dst] if mut_dst.size else mut_dst
    touched = np.unique(owners)
    cells = circulant_cells(owners, dst_masters, p)

    in_owner, out_owner = _edge_owners(graph, master_of, old.kind)

    part = Partition.__new__(Partition)
    part.graph = graph
    part.master_of = master_of
    part.in_edge_owner = in_owner
    part.out_edge_owner = out_owner
    part.kind = old.kind
    part.num_machines = p
    touched_set = set(int(m) for m in touched)
    part._local_in = []
    part._local_out = []
    for m in range(p):
        if m in touched_set:
            part._local_in.append(_restrict_csr(
                n, graph.in_indptr, graph.in_indices, graph.in_weights,
                in_owner, m,
            ))
            part._local_out.append(_restrict_csr(
                n, graph.out_indptr, graph.out_indices, graph.out_weights,
                out_owner, m,
            ))
        else:
            part._local_in.append(_extend_adjacency(old._local_in[m], added))
            part._local_out.append(
                _extend_adjacency(old._local_out[m], added)
            )
    # dependency bitmaps: carry every row over, recompute only the rows
    # of touched machines (column-extended for appended vertices)
    if added:
        pad = np.zeros((p, added), dtype=bool)
        part._has_in = np.concatenate([old._has_in, pad], axis=1)
        part._has_out = np.concatenate([old._has_out, pad], axis=1)
    else:
        part._has_in = old._has_in.copy()
        part._has_out = old._has_out.copy()
    for m in touched_set:
        part._has_in[m] = part._local_in[m].degrees() > 0
        part._has_out[m] = part._local_out[m].degrees() > 0

    stats = RefreshStats(
        kind=old.kind,
        num_machines=p,
        touched_machines=[int(m) for m in touched],
        reused_machines=p - len(touched_set),
        cells=cells,
        added_vertices=added,
    )
    return part, stats
