"""PowerLyra-style hybrid cut.

The paper positions differentiated *dependency propagation* as
orthogonal to PowerLyra's differentiated *partitioning* (Section 5.2):
PowerLyra keeps low-degree vertices' in-edges together (edge-cut
locality) while spreading high-degree vertices' edges (vertex-cut
balance).  Implementing it lets the test-suite demonstrate that claim:
SympleGraph's dependency machinery composes with a hybrid partition
exactly as with a plain edge-cut.

Placement rule for edge ``(u, v)``:

* ``in_degree(v) < threshold`` — low-degree destination: the edge goes
  to ``master(v)`` (incoming edge-cut locality; a pull of ``v`` is
  fully local);
* otherwise — high-degree destination: the edge goes to ``master(u)``
  (spread across the sources' machines, like the outgoing edge-cut).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import Partition, Partitioner
from repro.partition.chunking import balanced_chunks, chunk_of
from repro.partition.edge_cut import (
    _edge_endpoints_in_order,
    _edge_endpoints_out_order,
)

__all__ = ["HybridCut"]

DEFAULT_HYBRID_THRESHOLD = 32


class HybridCut(Partitioner):
    """Differentiated placement by destination degree (PowerLyra)."""

    name = "hybrid-cut"

    def __init__(
        self, threshold: int = DEFAULT_HYBRID_THRESHOLD, alpha: float = 8.0
    ) -> None:
        self.threshold = threshold
        self.alpha = alpha

    def partition(self, graph: CSRGraph, num_machines: int) -> Partition:
        self._check_machines(num_machines)
        boundaries = balanced_chunks(
            graph.in_degrees(), num_machines, alpha=self.alpha
        )
        master_of = chunk_of(boundaries, np.arange(graph.num_vertices))
        high = graph.in_degrees() >= self.threshold

        def owner(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
            if src.size == 0:
                return src
            return np.where(high[dst], master_of[src], master_of[dst])

        in_src, in_dst = _edge_endpoints_in_order(graph)
        out_src, out_dst = _edge_endpoints_out_order(graph)
        return Partition(
            graph,
            master_of,
            in_edge_owner=owner(in_src, in_dst),
            out_edge_owner=owner(out_src, out_dst),
            kind=self.name,
            num_machines=num_machines,
        )
