"""Vertex-cut partitioners.

Vertex-cut allows both the incoming and the outgoing edges of a vertex
to be split across machines (PowerGraph, D-Galois/Gluon).  Two variants:

* :class:`HashVertexCut` — each edge hashed independently; simple and
  balanced but maximizes replication.
* :class:`CartesianVertexCut` — machines arranged in an ``r x c`` grid;
  edge ``(u, v)`` goes to machine ``(row_block(u), col_block(v))``.
  This is the Cartesian Vertex-Cut that D-Galois reports "performs well
  at scale" and that our D-Galois baseline engine uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.partition.base import Partition, Partitioner
from repro.partition.chunking import balanced_chunks, chunk_of
from repro.partition.edge_cut import (
    _edge_endpoints_in_order,
    _edge_endpoints_out_order,
)

__all__ = ["HashVertexCut", "CartesianVertexCut", "grid_shape"]


def grid_shape(num_machines: int) -> tuple[int, int]:
    """Most-square ``(rows, cols)`` factorization of ``num_machines``."""
    r = int(np.sqrt(num_machines))
    while r > 1 and num_machines % r != 0:
        r -= 1
    return r, num_machines // r


def _mix(src: np.ndarray, dst: np.ndarray, num_machines: int) -> np.ndarray:
    """Deterministic per-edge hash onto machines (splitmix-style)."""
    x = (src.astype(np.uint64) << np.uint64(32)) ^ dst.astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(num_machines)).astype(np.int64)


class HashVertexCut(Partitioner):
    """Independent per-edge hash placement."""

    name = "hash-vertex-cut"

    def partition(self, graph: CSRGraph, num_machines: int) -> Partition:
        self._check_machines(num_machines)
        boundaries = balanced_chunks(
            graph.in_degrees() + graph.out_degrees(), num_machines
        )
        master_of = chunk_of(boundaries, np.arange(graph.num_vertices))
        in_src, in_dst = _edge_endpoints_in_order(graph)
        out_src, out_dst = _edge_endpoints_out_order(graph)
        return Partition(
            graph,
            master_of,
            in_edge_owner=_mix(in_src, in_dst, num_machines),
            out_edge_owner=_mix(out_src, out_dst, num_machines),
            kind=self.name,
            num_machines=num_machines,
        )


class CartesianVertexCut(Partitioner):
    """2-D (block-cyclic-free) cartesian vertex cut on an r x c grid."""

    name = "cartesian-vertex-cut"

    def __init__(self, rows: int | None = None, cols: int | None = None) -> None:
        if (rows is None) != (cols is None):
            raise PartitionError("specify both rows and cols or neither")
        self.rows = rows
        self.cols = cols

    def partition(self, graph: CSRGraph, num_machines: int) -> Partition:
        self._check_machines(num_machines)
        if self.rows is None:
            rows, cols = grid_shape(num_machines)
        else:
            rows, cols = self.rows, self.cols
            if rows * cols != num_machines:
                raise PartitionError("rows * cols must equal num_machines")

        degree = graph.in_degrees() + graph.out_degrees()
        row_bounds = balanced_chunks(degree, rows)
        col_bounds = balanced_chunks(degree, cols)
        vertex_ids = np.arange(graph.num_vertices)
        row_block = chunk_of(row_bounds, vertex_ids)
        col_block = chunk_of(col_bounds, vertex_ids)

        # Master assignment: balanced 1-D chunking across all machines.
        master_bounds = balanced_chunks(degree, num_machines)
        master_of = chunk_of(master_bounds, vertex_ids)

        def owner(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
            if src.size == 0:
                return src
            return row_block[src] * cols + col_block[dst]

        in_src, in_dst = _edge_endpoints_in_order(graph)
        out_src, out_dst = _edge_endpoints_out_order(graph)
        return Partition(
            graph,
            master_of,
            in_edge_owner=owner(in_src, in_dst),
            out_edge_owner=owner(out_src, out_dst),
            kind=self.name,
            num_machines=num_machines,
        )
