"""Balanced contiguous vertex chunking.

Gemini assigns each machine a contiguous vertex range, balancing the
hybrid weight ``alpha * |V_i| + |E_i|`` across machines (its
"locality-aware chunk-based partitioning").  The same routine drives
the outgoing/incoming edge-cut partitioners and the master assignment
of the vertex-cut partitioners.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = ["balanced_chunks", "chunk_of"]


def balanced_chunks(
    weights: np.ndarray, num_chunks: int, alpha: float = 8.0
) -> np.ndarray:
    """Split ``range(len(weights))`` into contiguous chunks of ~equal load.

    Parameters
    ----------
    weights:
        Per-vertex load (typically a degree array).
    num_chunks:
        Number of machines.
    alpha:
        Per-vertex constant added to each weight, Gemini's balance knob.

    Returns
    -------
    boundaries:
        Array of length ``num_chunks + 1``; chunk ``i`` is the vertex
        range ``boundaries[i] .. boundaries[i+1]``.
    """
    if num_chunks <= 0:
        raise PartitionError("num_chunks must be positive")
    n = len(weights)
    load = np.asarray(weights, dtype=np.float64) + alpha
    prefix = np.concatenate([[0.0], np.cumsum(load)])
    total = prefix[-1]
    boundaries = np.zeros(num_chunks + 1, dtype=np.int64)
    boundaries[num_chunks] = n
    # Greedy left-to-right split at the ideal prefix targets.  Using
    # searchsorted keeps chunks contiguous and monotone even when a
    # single vertex dominates the load.
    for i in range(1, num_chunks):
        target = total * i / num_chunks
        boundaries[i] = np.searchsorted(prefix, target, side="left")
    # Enforce monotonicity (degenerate graphs can collapse targets).
    np.maximum.accumulate(boundaries, out=boundaries)
    boundaries[boundaries > n] = n
    return boundaries


def chunk_of(boundaries: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Map vertex ids to their chunk index given chunk boundaries."""
    return np.searchsorted(boundaries, vertices, side="right") - 1
