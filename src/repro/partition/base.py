"""Partition model: master/mirror assignment and per-machine adjacency.

A :class:`Partition` captures where every vertex's *master* copy lives
and where every *edge* is stored.  Following the paper (Section 2.2):

* the machine owning an edge executes the signal UDF for that edge;
* a machine holding at least one in-edge of ``v`` without owning ``v``
  keeps an (in-)*mirror* of ``v`` — it aggregates locally and sends one
  update message to the master per iteration;
* similarly for out-mirrors in push mode.

Edge ownership is direction-agnostic data: we record, for every edge,
the storage machine, in both the in-CSR and out-CSR edge orderings, and
pre-build per-machine local adjacency (a masked CSR over global vertex
ids) so engines can iterate ``local_in_neighbors(m, v)`` cheaply.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["LocalAdjacency", "Partition", "Partitioner"]


class LocalAdjacency:
    """CSR over global vertex ids restricted to one machine's edges."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._degrees: Optional[np.ndarray] = None

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise PartitionError("partitioned graph is unweighted")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        # Engines call this once per (phase, machine); the CSR is
        # immutable after construction, so compute the diff once.
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)


def _restrict_csr(
    num_vertices: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: Optional[np.ndarray],
    owner: np.ndarray,
    machine: int,
) -> LocalAdjacency:
    """Build the per-machine view of one CSR direction."""
    mask = owner == machine
    keys = np.repeat(np.arange(num_vertices), np.diff(indptr))
    local_keys = keys[mask]
    local_indices = indices[mask]
    local_weights = weights[mask] if weights is not None else None
    counts = np.bincount(local_keys, minlength=num_vertices)
    local_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=local_indptr[1:])
    return LocalAdjacency(local_indptr, local_indices, local_weights)


class Partition:
    """A placement of a graph onto ``num_machines`` simulated machines.

    Parameters
    ----------
    graph:
        The global graph.
    master_of:
        Machine id of each vertex's master copy.
    in_edge_owner:
        Storage machine of each edge, aligned with ``graph.in_indices``
        (the dst-sorted ordering scanned in pull mode).
    out_edge_owner:
        Storage machine of each edge, aligned with ``graph.out_indices``.
    kind:
        Human-readable partition strategy name.
    """

    def __init__(
        self,
        graph: CSRGraph,
        master_of: np.ndarray,
        in_edge_owner: np.ndarray,
        out_edge_owner: np.ndarray,
        kind: str,
        num_machines: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.master_of = np.asarray(master_of, dtype=np.int64)
        self.in_edge_owner = np.asarray(in_edge_owner, dtype=np.int64)
        self.out_edge_owner = np.asarray(out_edge_owner, dtype=np.int64)
        self.kind = kind

        if self.master_of.shape != (graph.num_vertices,):
            raise PartitionError("master_of must assign every vertex")
        if self.in_edge_owner.shape != (graph.num_edges,):
            raise PartitionError("in_edge_owner must cover every edge")
        if self.out_edge_owner.shape != (graph.num_edges,):
            raise PartitionError("out_edge_owner must cover every edge")
        machines = int(self.master_of.max(initial=-1)) + 1
        owners_max = max(
            int(self.in_edge_owner.max(initial=-1)),
            int(self.out_edge_owner.max(initial=-1)),
        )
        inferred = max(machines, owners_max + 1, 1)
        if num_machines is not None:
            if num_machines < inferred:
                raise PartitionError(
                    "num_machines smaller than the machines referenced "
                    "by the placement"
                )
            self.num_machines = num_machines
        else:
            self.num_machines = inferred
        if self.master_of.size and self.master_of.min() < 0:
            raise PartitionError("negative machine id in master_of")

        n = graph.num_vertices
        self._local_in: List[LocalAdjacency] = []
        self._local_out: List[LocalAdjacency] = []
        for m in range(self.num_machines):
            self._local_in.append(
                _restrict_csr(
                    n, graph.in_indptr, graph.in_indices, graph.in_weights,
                    self.in_edge_owner, m,
                )
            )
            self._local_out.append(
                _restrict_csr(
                    n, graph.out_indptr, graph.out_indices, graph.out_weights,
                    self.out_edge_owner, m,
                )
            )
        # has_in_edges[m, v]: machine m stores at least one in-edge of v.
        self._has_in = np.stack(
            [adj.degrees() > 0 for adj in self._local_in]
        ) if self.num_machines else np.zeros((0, n), dtype=bool)
        self._has_out = np.stack(
            [adj.degrees() > 0 for adj in self._local_out]
        ) if self.num_machines else np.zeros((0, n), dtype=bool)

    # -- vertex placement ------------------------------------------------

    def masters_of(self, machine: int) -> np.ndarray:
        """Vertices whose master copy lives on ``machine``."""
        return np.flatnonzero(self.master_of == machine)

    def in_mirrors_of(self, machine: int) -> np.ndarray:
        """Vertices mirrored on ``machine`` for pull mode."""
        mask = self._has_in[machine] & (self.master_of != machine)
        return np.flatnonzero(mask)

    def out_mirrors_of(self, machine: int) -> np.ndarray:
        """Vertices mirrored on ``machine`` for push mode."""
        mask = self._has_out[machine] & (self.master_of != machine)
        return np.flatnonzero(mask)

    def has_in_edges(self, machine: int, v: int) -> bool:
        """Does ``machine`` store at least one in-edge of ``v``?"""
        return bool(self._has_in[machine, v])

    def in_replica_count(self, v: int) -> int:
        """Number of machines holding in-edges of ``v``."""
        return int(self._has_in[:, v].sum())

    def num_in_mirrors(self) -> int:
        """Total in-mirror count across machines."""
        mirrors = self._has_in.copy()
        cols = np.arange(self.graph.num_vertices)
        mirrors[self.master_of, cols] = False
        return int(mirrors.sum())

    # -- per-machine adjacency --------------------------------------------

    def local_in(self, machine: int) -> LocalAdjacency:
        """In-edges stored on ``machine`` (pull mode scan)."""
        return self._local_in[machine]

    def local_out(self, machine: int) -> LocalAdjacency:
        """Out-edges stored on ``machine`` (push mode scan)."""
        return self._local_out[machine]

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises PartitionError on failure."""
        total_in = sum(adj.num_edges for adj in self._local_in)
        total_out = sum(adj.num_edges for adj in self._local_out)
        if total_in != self.graph.num_edges:
            raise PartitionError("in-edge ownership does not cover all edges")
        if total_out != self.graph.num_edges:
            raise PartitionError("out-edge ownership does not cover all edges")
        # in/out owners must describe the same multiset of placements:
        # count edges per machine in both orderings.
        in_counts = np.bincount(self.in_edge_owner, minlength=self.num_machines)
        out_counts = np.bincount(self.out_edge_owner, minlength=self.num_machines)
        if not np.array_equal(in_counts, out_counts):
            raise PartitionError("in/out edge ownership disagree per machine")


class Partitioner(ABC):
    """Strategy interface for placing a graph onto machines."""

    name: str = "abstract"

    @abstractmethod
    def partition(self, graph: CSRGraph, num_machines: int) -> Partition:
        """Place ``graph`` on ``num_machines`` machines."""

    def _check_machines(self, num_machines: int) -> None:
        if num_machines <= 0:
            raise PartitionError("num_machines must be positive")
