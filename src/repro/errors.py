"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the sub-domains (graph construction, partitioning,
UDF analysis, runtime execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or access (bad vertex ids, bad shapes)."""


class PartitionError(ReproError):
    """Invalid or inconsistent graph partition."""


class AnalysisError(ReproError):
    """UDF analysis failed (unsupported construct, no neighbor loop...)."""


class InstrumentationError(AnalysisError):
    """UDF instrumentation (source-to-source transform) failed."""


class EngineError(ReproError):
    """Distributed engine execution failed or was misconfigured."""


class ConvergenceError(EngineError):
    """An iterative algorithm exceeded its iteration budget."""


class UnsupportedAlgorithmError(EngineError):
    """The engine cannot run this algorithm (e.g. sampling on D-Galois,
    which the paper also reports as N/A in Table 4)."""
