"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the sub-domains (graph construction, partitioning,
UDF analysis, runtime execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or access (bad vertex ids, bad shapes)."""


class PartitionError(ReproError):
    """Invalid or inconsistent graph partition."""


class AnalysisError(ReproError):
    """UDF analysis failed (unsupported construct, no neighbor loop...)."""


class InstrumentationError(AnalysisError):
    """UDF instrumentation (source-to-source transform) failed."""


class KernelSoundnessError(AnalysisError):
    """A kernel classification failed certification.

    Raised by the abstract-interpretation certifier
    (:mod:`repro.analysis.verify`) when a UDF's derived effects exceed
    the contract of the :class:`~repro.analysis.kernelspec.KernelSpec`
    shape it was classified as.  Carries the violated ``obligation``
    id and the ``program_point`` (``file:line``) it was refuted at.
    """

    def __init__(
        self,
        message: str,
        obligation: str = "",
        program_point: str = "",
    ) -> None:
        prefix = f"{program_point}: " if program_point else ""
        tag = f" [{obligation}]" if obligation else ""
        super().__init__(f"{prefix}{message}{tag}")
        self.obligation = obligation
        self.program_point = program_point


class VerificationError(AnalysisError):
    """A strict verification run refused to certify a UDF or config."""


class EngineError(ReproError):
    """Distributed engine execution failed or was misconfigured."""


class ConvergenceError(EngineError):
    """An iterative algorithm exceeded its iteration budget."""


class UnsupportedAlgorithmError(EngineError):
    """The engine cannot run this algorithm (e.g. sampling on D-Galois,
    which the paper also reports as N/A in Table 4)."""


class FaultPlanError(ReproError):
    """A fault plan is malformed or inconsistent with the cluster."""


class ServeError(ReproError):
    """The query service was misconfigured or refused a request."""


class FaultError(EngineError):
    """An injected fault interrupted execution.  Recoverable through
    :func:`repro.fault.run_recoverable`; fatal otherwise."""


class MachineCrashError(FaultError):
    """A simulated machine crashed mid-execution."""

    def __init__(self, machine: int, iteration: int, step: int = 0) -> None:
        super().__init__(
            f"machine {machine} crashed at iteration {iteration}, "
            f"step {step}"
        )
        self.machine = machine
        self.iteration = iteration
        self.step = step


class MessageLossError(FaultError):
    """A message could not be delivered within the retry budget —
    the destination is treated as unreachable (escalates to recovery)."""
