"""Process-pool executor backend.

Forked worker processes execute the per-machine task functions.  The
immutable CSR topology (per-machine ``indptr``/``indices``/``weights``
plus the master map) is published to POSIX shared memory once per bind;
vertex-state arrays are mirrored into reusable segments before every
map call, so workers build zero-copy views instead of unpickling
megabytes per task.

Compiled artifacts never cross the process boundary: the parent strips
an :class:`AnalyzedSignal` down to its original function (which pickles
by reference) and workers re-derive the instrumented form and kernel
spec locally, cached per function.  Anything that genuinely cannot be
pickled — closure UDFs, exotic state objects — degrades gracefully:
the map runs inline on the parent and the engine reports an
``exec_fallback`` event with the reason.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import weakref
from concurrent import futures
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.instrument import AnalyzedSignal
from repro.exec.base import Executor
from repro.exec.shm import ShmArena, ship, unship

__all__ = ["ProcessPoolExecutor"]

_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


@atexit.register
def _close_leaked_arenas() -> None:  # pragma: no cover - exit path
    for arena in list(_ARENAS):
        arena.close()


# -- worker side -----------------------------------------------------------

_CTX = None


def _init_worker(manifest) -> None:
    """Build the worker's dataset context from the shipped manifest."""
    global _CTX
    from repro.exec.work import WorkerContext
    from repro.partition.base import LocalAdjacency

    data = unship(manifest)
    local_in = [
        LocalAdjacency(d["indptr"], d["indices"], d["weights"])
        for d in data["local_in"]
    ]
    local_out = [
        LocalAdjacency(d["indptr"], d["indices"], d["weights"])
        for d in data["local_out"]
    ]
    _CTX = WorkerContext(
        local_in, local_out, data["master_of"], data["num_vertices"]
    )


def _build_state(state_spec):
    from repro.engine.state import StateStore

    arrays, scalars, num_vertices = state_spec
    state = StateStore(num_vertices)
    for name, shipped in unship(arrays).items():
        state.set(name, shipped)
    for name, value in scalars.items():
        state.set(name, value)
    return state


def _worker_run(fn, shared, item, state_spec, stall: float):
    ctx = _CTX
    ctx.state = _build_state(state_spec)
    shared = unship(shared)
    item = unship(item)
    t0 = time.perf_counter()
    result = fn(ctx, shared, item)
    if stall > 1.0:
        time.sleep((stall - 1.0) * (time.perf_counter() - t0))
    return result


# -- parent side -----------------------------------------------------------


class ProcessPoolExecutor(Executor):
    """Run tasks on forked worker processes over shared-memory views."""

    kind = "process"
    parallel = True

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers or os.cpu_count() or 1)
        self._pool: Optional[futures.ProcessPoolExecutor] = None
        self._arena = ShmArena()
        _ARENAS.add(self._arena)
        self._manifest = None

    # -- dataset publication ----------------------------------------------

    def _rebind(self) -> None:
        partition = self._partition
        p = partition.num_machines

        def adjacency(local, key):
            return {
                "indptr": self._arena.publish(f"{key}.indptr", local.indptr),
                "indices": self._arena.publish(
                    f"{key}.indices", local.indices
                ),
                "weights": (
                    None
                    if local.weights is None
                    else self._arena.publish(f"{key}.weights", local.weights)
                ),
            }

        self._manifest = {
            "local_in": [
                adjacency(partition.local_in(m), f"in{m}") for m in range(p)
            ],
            "local_out": [
                adjacency(partition.local_out(m), f"out{m}") for m in range(p)
            ],
            "master_of": self._arena.publish(
                "master_of", partition.master_of
            ),
            "num_vertices": int(partition.graph.num_vertices),
        }
        if self._pool is not None:
            # the old workers hold views of the previous partition
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._manifest,),
            )
        return self._pool

    # -- per-call state sync ----------------------------------------------

    def _state_spec(self, state):
        import numpy as np

        arrays: Dict[str, Any] = {}
        scalars: Dict[str, Any] = {}
        for name in state:
            value = getattr(state, name)
            if isinstance(value, np.ndarray):
                arrays[name] = self._arena.mirror(f"state.{name}", value)
            else:
                scalars[name] = value
        return arrays, scalars, int(state.num_vertices)

    @staticmethod
    def _strip(shared: Dict[str, Any]) -> Dict[str, Any]:
        """Signal functions travel by reference, not compiled form."""
        out = dict(shared)
        signal = out.get("signal")
        if isinstance(signal, AnalyzedSignal):
            out["signal"] = signal.original
        return out

    def map_machines(self, fn, shared, items, state, stalls=None):
        self.last_fallback = None
        shipped_shared = ship(self._strip(shared), self._arena, "shared")
        shipped_items = [
            ship(item, self._arena, f"item{i}")
            for i, item in enumerate(items)
        ]
        state_spec = self._state_spec(state)
        try:
            pickle.dumps(
                (fn, shipped_shared, shipped_items, state_spec),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:
            # closure UDFs / exotic state objects: run inline instead
            self.last_fallback = f"{type(exc).__name__}: {exc}"
            ctx = self._ctx
            ctx.state = state
            return [fn(ctx, shared, item) for item in items]
        pool = self._ensure_pool()
        pending = [
            pool.submit(
                _worker_run,
                fn,
                shipped_shared,
                item,
                state_spec,
                float(stalls[int(item["m"])]) if stalls is not None else 1.0,
            )
            for item in shipped_items
        ]
        return [f.result() for f in pending]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._arena.close()
