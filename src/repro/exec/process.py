"""Process-pool executor backend: persistent workers over a shm arena.

Forked worker processes execute the per-machine task functions.  The
pool is spawned lazily on the first map and then **kept warm** for the
executor's whole life — across ``Session.run`` calls, across engines,
and across graph rebinds:

* **Topology generations.**  The immutable CSR topology (per-machine
  ``indptr``/``indices``/``weights`` plus the master map) is published
  to POSIX shared memory once per bind under a generation tag.  Every
  chunk message carries the current generation and (tiny) manifest;
  a worker that sees a new generation re-attaches the new segments and
  rebuilds its dataset context in place — **no respawn**.
* **State adoption.**  On first contact with a
  :class:`~repro.engine.state.StateStore`, its vertex arrays are
  copied into dedicated segments *once* and the store's fields are
  replaced with parent-side views over the same pages.  Slot writes in
  the parent land directly in shared memory, so warm maps publish no
  state bytes at all; workers cache their attached ``StateStore`` per
  (generation, spec-version) and only scalars travel per map.
* **Delta arena.**  Per-map payload arrays — frontier index sets,
  candidate slices, dependency-bitmap and carried-data slices — go
  through a double-buffered bump-allocated :class:`DeltaArena`
  (preallocated, grown geometrically) instead of one segment per key.
* **Chunked dispatch.**  The per-machine work units of one map call
  are split into at most ``workers`` contiguous chunks — one IPC
  round-trip per worker per superstep instead of one per machine —
  and the flattened results come back in item order, so the parent's
  deterministic ascending-machine merge is unchanged.

Compiled artifacts never cross the process boundary: the parent strips
an :class:`AnalyzedSignal` down to its original function (which pickles
by reference) and workers re-derive the instrumented form and kernel
spec locally, cached per function.  Anything that genuinely cannot be
pickled — closure UDFs, exotic state objects — degrades gracefully:
the map runs inline on the parent and the engine reports an
``exec_fallback`` event with the reason.

A worker crash mid-map breaks the whole pool; the executor respawns it
(visible as an ``exec_pool_spawn`` event with a bumped ``spawns``
count) and retries the map's chunks once — tasks are pure, so a retry
is safe.  A second consecutive crash raises
:class:`~repro.errors.EngineError`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import weakref
from collections import deque
from concurrent import futures
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.instrument import AnalyzedSignal
from repro.errors import EngineError
from repro.exec.base import Executor
from repro.exec.shm import DeltaArena, ShmArena, ship, unship

__all__ = ["ProcessPoolExecutor"]

_CLEANUP: "weakref.WeakSet[Any]" = weakref.WeakSet()


@atexit.register
def _close_leaked() -> None:  # pragma: no cover - exit path
    for arena in list(_CLEANUP):
        arena.close()


# -- worker side -----------------------------------------------------------

# per-worker caches: dataset context per topology generation, state
# store per (generation, spec version) — both survive across maps
_WORKER: Dict[str, Any] = {
    "gen": -1,
    "ctx": None,
    "state_key": None,
    "state": None,
}


def _worker_context(gen: int, manifest) -> Any:
    ws = _WORKER
    if ws["gen"] != gen:
        from repro.exec.work import WorkerContext
        from repro.partition.base import LocalAdjacency

        data = unship(manifest)
        local_in = [
            LocalAdjacency(d["indptr"], d["indices"], d["weights"])
            for d in data["local_in"]
        ]
        local_out = [
            LocalAdjacency(d["indptr"], d["indices"], d["weights"])
            for d in data["local_out"]
        ]
        ws["ctx"] = WorkerContext(
            local_in, local_out, data["master_of"], data["num_vertices"]
        )
        ws["gen"] = gen
        ws["state_key"] = None
        ws["state"] = None
    return ws["ctx"]


def _worker_state(gen: int, state_spec):
    """(Re)build the worker's StateStore only when the spec changed.

    Adopted arrays are live views of the parent's pages, so a cached
    store is always current; only scalars are rebound per chunk.
    """
    from repro.engine.state import StateStore

    arrays, scalars, num_vertices, version = state_spec
    ws = _WORKER
    key = (gen, version)
    if ws["state_key"] != key:
        state = StateStore(num_vertices)
        for name, ref in arrays.items():
            state.set(name, unship(ref))
        ws["state"] = state
        ws["state_key"] = key
    state = ws["state"]
    for name, value in scalars.items():
        state.set(name, value)
    return state


def _run_chunk(payload: bytes) -> List[Any]:
    """Execute one contiguous chunk of a map call's items."""
    gen, manifest, fn, shared, items, state_spec, stalls = pickle.loads(
        payload
    )
    ctx = _worker_context(gen, manifest)
    ctx.state = _worker_state(gen, state_spec)
    shared = unship(shared)
    out: List[Any] = []
    for item, stall in zip(items, stalls):
        item = unship(item)
        t0 = time.perf_counter()
        out.append(fn(ctx, shared, item))
        if stall > 1.0:
            time.sleep((stall - 1.0) * (time.perf_counter() - t0))
    return out


# -- parent side -----------------------------------------------------------


class _StateRecord:
    """Adoption bookkeeping for one StateStore."""

    __slots__ = ("views", "refs", "keymap", "keys", "version")

    def __init__(self) -> None:
        self.views: Dict[str, np.ndarray] = {}
        self.refs: Dict[str, tuple] = {}
        self.keymap: Dict[str, str] = {}
        # shared with the state's weakref finalizer, which retires
        # whatever keys are live when the store is garbage-collected
        self.keys: List[str] = []
        self.version = 0


class ProcessPoolExecutor(Executor):
    """Run tasks on persistent forked workers over shared-memory views."""

    kind = "process"
    parallel = True

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers or os.cpu_count() or 1)
        self._pool: Optional[futures.ProcessPoolExecutor] = None
        self._arena = ShmArena()
        self._delta = DeltaArena(
            on_grow=lambda cap: self.events.append(
                ("arena_grow", {"arena": "delta", "bytes": int(cap)})
            )
        )
        _CLEANUP.add(self._arena)
        _CLEANUP.add(self._delta)
        self._generation = 0
        self._manifest = None
        self._topo_keys: List[str] = []
        self._states: "weakref.WeakKeyDictionary[Any, _StateRecord]" = (
            weakref.WeakKeyDictionary()
        )
        self._state_seq = 0
        self._spec_seq = 0
        self.spawns = 0

    # -- dataset publication ----------------------------------------------

    def _rebind(self) -> None:
        """Publish the newly bound partition under a fresh generation.

        The warm pool is untouched: workers notice the bumped
        generation on their next chunk and re-attach in place.
        """
        partition = self._partition
        p = partition.num_machines
        self._generation += 1
        g = self._generation
        new_keys: List[str] = []

        def put(key: str, array) -> tuple:
            key = f"t{g}.{key}"
            new_keys.append(key)
            return self._arena.publish(key, array)

        def adjacency(local, key):
            return {
                "indptr": put(f"{key}.indptr", local.indptr),
                "indices": put(f"{key}.indices", local.indices),
                "weights": (
                    None
                    if local.weights is None
                    else put(f"{key}.weights", local.weights)
                ),
            }

        self._manifest = {
            "local_in": [
                adjacency(partition.local_in(m), f"in{m}") for m in range(p)
            ],
            "local_out": [
                adjacency(partition.local_out(m), f"out{m}") for m in range(p)
            ],
            "master_of": put("master_of", partition.master_of),
            "num_vertices": int(partition.graph.num_vertices),
        }
        self._arena.retire_many(self._topo_keys)
        self._topo_keys = new_keys

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
            self.spawns += 1
            self.events.append(
                (
                    "pool_spawn",
                    {
                        "workers": int(self.workers),
                        "generation": int(self._generation),
                        "spawns": int(self.spawns),
                    },
                )
            )
        return self._pool

    def _restart_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- per-call state sync ----------------------------------------------

    def _state_spec(self, state) -> Tuple[dict, dict, int, int]:
        """Adopt the store's arrays into the arena; return the spec.

        Arrays already adopted (field still bound to the arena view)
        cost nothing; new or rebound arrays are copied once and the
        store's field is replaced with the shared view, so every later
        parent write is immediately worker-visible.  The spec version
        only moves when the array layout changed, which is what lets
        workers keep their attached StateStore across maps.
        """
        rec = self._states.get(state)
        if rec is None:
            rec = _StateRecord()
            self._states[state] = rec
            # retire this store's segments when it is garbage-collected
            # (rec.keys is mutated in place as fields come and go)
            weakref.finalize(state, self._arena.retire_many, rec.keys)
        arrays: Dict[str, tuple] = {}
        scalars: Dict[str, Any] = {}
        changed = False
        live = set()
        for name in state:
            value = getattr(state, name)
            if isinstance(value, np.ndarray) and not value.dtype.hasobject:
                live.add(name)
                if rec.views.get(name) is value:
                    arrays[name] = rec.refs[name]
                    continue
                key = f"s{self._state_seq}"
                self._state_seq += 1
                view, ref = self._arena.adopt(key, value)
                state.set(name, view)
                old_key = rec.keymap.get(name)
                if old_key is not None:
                    self._arena.retire(old_key)
                    rec.keys.remove(old_key)
                rec.keys.append(key)
                rec.keymap[name] = key
                rec.views[name] = view
                rec.refs[name] = ref
                arrays[name] = ref
                changed = True
            else:
                scalars[name] = value
        for name in set(rec.views) - live:
            del rec.views[name]
            del rec.refs[name]
            old_key = rec.keymap.pop(name)
            self._arena.retire(old_key)
            rec.keys.remove(old_key)
            changed = True
        if changed:
            self._spec_seq += 1
            rec.version = self._spec_seq
        return arrays, scalars, int(state.num_vertices), rec.version

    @staticmethod
    def _strip(shared: Dict[str, Any]) -> Dict[str, Any]:
        """Signal functions travel by reference, not compiled form."""
        out = dict(shared)
        signal = out.get("signal")
        if isinstance(signal, AnalyzedSignal):
            out["signal"] = signal.original
        return out

    # -- dispatch ----------------------------------------------------------

    def map_machines(self, fn, shared, items, state, stalls=None):
        self.last_fallback = None
        if not items:
            return []
        state_spec = self._state_spec(state)
        self._delta.begin()
        shipped_shared = ship(self._strip(shared), self._delta)
        shipped_items = [ship(item, self._delta) for item in items]
        stall_list = [
            float(stalls[int(item["m"])]) if stalls is not None else 1.0
            for item in items
        ]
        n = len(items)
        chunks = min(self.workers, n)
        bounds = [
            (n * c // chunks, n * (c + 1) // chunks) for c in range(chunks)
        ]
        try:
            payloads = [
                pickle.dumps(
                    (
                        self._generation,
                        self._manifest,
                        fn,
                        shipped_shared,
                        shipped_items[lo:hi],
                        state_spec,
                        stall_list[lo:hi],
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                for lo, hi in bounds
            ]
        except Exception as exc:
            # closure UDFs / exotic state objects: run inline instead
            self.last_fallback = f"{type(exc).__name__}: {exc}"
            ctx = self._ctx
            ctx.state = state
            return [fn(ctx, shared, item) for item in items]
        return self._dispatch(payloads)

    def _dispatch(self, payloads: List[bytes]) -> List[Any]:
        """Submit chunk payloads; respawn + retry once after a crash."""
        try:
            return self._gather(payloads)
        except futures.process.BrokenProcessPool:
            self._restart_pool()
            try:
                return self._gather(payloads)
            except futures.process.BrokenProcessPool:
                self._restart_pool()
                raise EngineError(
                    "process executor lost its worker pool twice running "
                    "one map; a task is killing its worker (see the "
                    "exec_pool_spawn trace events for the respawn trail)"
                ) from None

    def _gather(self, payloads: List[bytes]) -> List[Any]:
        pool = self._ensure_pool()
        pending = [pool.submit(_run_chunk, blob) for blob in payloads]
        out: List[Any] = []
        for fut in pending:
            out.extend(fut.result())
        return out

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Warm-pool / arena numbers for benchmarks and ``/stats``."""
        return {
            "kind": self.kind,
            "workers": int(self.workers),
            "spawns": int(self.spawns),
            "generation": int(self._generation),
            "pool_live": self._pool is not None,
            "publish_bytes": int(
                self._arena.published_bytes + self._delta.written_bytes
            ),
            "state_publish_bytes": int(self._arena.published_bytes),
            "delta_bytes": int(self._delta.written_bytes),
            "delta_capacity": int(self._delta.capacity),
            "delta_grows": int(self._delta.grow_count),
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._delta.close()
        self._arena.close()
