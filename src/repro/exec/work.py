"""Pure per-machine work units shared by every executor backend.

Each task function here computes what one simulated machine does in one
(phase, step) — a neighbor scan, a batched kernel invocation, or a push
sweep — against a read-only view of the graph and vertex state, and
returns a plain, picklable result.  All side effects (network sends,
counter increments, update buffering, dependency-store writes, obs
events) happen in the *parent*, which merges results in ascending
machine order; that merge replays exactly the sequence of effects the
old in-engine loops produced, which is what keeps counters, traffic,
and results bit-identical across serial, thread, and process backends.

Task functions receive a :class:`WorkerContext` (graph topology + state
+ an analyzed-signal cache), a ``shared`` dict broadcast to every task
of one map call, and one per-machine ``item`` dict.  They must not
mutate anything reachable from the context: dependency-state writes are
returned as explicit slices for the parent to apply.  The no-mutation
rule is doubly load-bearing under the process backend, where the state
arrays are shared-memory views aliased across every worker — a task
that wrote to them would race its siblings *and* corrupt the parent's
authoritative copy; purity is also what makes the executor's
crash-retry (respawn the pool, rerun the map's chunks) safe.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.analysis.instrument import AnalyzedSignal, instrument_signal
from repro.engine.dep import DepStore
from repro.kernels import get_kernel

__all__ = [
    "WorkerContext",
    "parallel_pull_task",
    "circulant_kernel_task",
    "circulant_interp_task",
    "push_task",
]


class WorkerContext:
    """Read-only execution context a task function runs against.

    Holds the per-machine local adjacency lists, the master map, and
    the current :class:`~repro.engine.state.StateStore` (rebound before
    every map call).  ``analyzed()`` resolves a signal to its
    instrumented form: in-process backends pass the engine's cached
    :class:`AnalyzedSignal` through untouched; worker processes receive
    the original function (compiled UDFs do not pickle) and re-derive
    the analysis here, cached per function object.
    """

    def __init__(
        self,
        local_in: List[Any],
        local_out: List[Any],
        master_of: np.ndarray,
        num_vertices: int,
    ) -> None:
        self._local_in = local_in
        self._local_out = local_out
        self.master_of = master_of
        self.num_vertices = int(num_vertices)
        self.state = None
        self._analyzed: Dict[Any, AnalyzedSignal] = {}

    def local_in(self, m: int):
        return self._local_in[m]

    def local_out(self, m: int):
        return self._local_out[m]

    def analyzed(self, signal) -> AnalyzedSignal:
        if isinstance(signal, AnalyzedSignal):
            return signal
        cached = self._analyzed.get(signal)
        if cached is None:
            cached = instrument_signal(signal)
            self._analyzed[signal] = cached
        return cached


class _CountingNeighbors:
    """Neighbor iterable counting examined elements (edges traversed)."""

    __slots__ = ("_array", "count")

    def __init__(self, array: np.ndarray) -> None:
        self._array = array
        self.count = 0

    def __iter__(self):
        for value in self._array:
            self.count += 1
            yield int(value)

    def __len__(self) -> int:
        return int(self._array.size)


def _interp_scan(
    fn: Callable, local, cand: np.ndarray, state
) -> Dict[str, Any]:
    """Original-signal scan over ``cand``; per-vertex emissions kept."""
    emit_v: List[int] = []
    emit_values: List[list] = []
    edges = 0
    for v in cand:
        v = int(v)
        nbrs = _CountingNeighbors(local.neighbors(v))
        emitted: list = []
        fn(v, nbrs, state, emitted.append)
        edges += nbrs.count
        if emitted:
            emit_v.append(v)
            emit_values.append(emitted)
    return {"edges": edges, "emit_v": emit_v, "emit_values": emit_values}


def parallel_pull_task(
    ctx: WorkerContext, shared: Dict[str, Any], item: Dict[str, Any]
) -> Dict[str, Any]:
    """One machine of the BSP parallel pull (Gemini schedule).

    ``shared['use_kernel']`` selects the batched fast path; the parent
    already verified the kernel plan applies, so the worker only has to
    resolve spec and kernel from the analyzed signal.
    """
    m = int(item["m"])
    analyzed = ctx.analyzed(shared["signal"])
    local = ctx.local_in(m)
    degs = local.degrees()
    active = shared["active"]
    cand = active[degs[active] > 0]
    if shared["use_kernel"]:
        spec = analyzed.kernel
        kernel = get_kernel(spec.kind)
        t0 = perf_counter() if shared["timed"] else 0.0
        batch = kernel(spec, ctx.state, local, cand, carried_in=None)
        seconds = perf_counter() - t0 if shared["timed"] else 0.0
        return {
            "m": m,
            "kernel": spec.kind,
            "edges": int(batch.edges.sum()),
            "vertices": int(cand.size),
            "emit_v": cand[batch.emit_mask],
            "emit_values": batch.values[batch.emit_mask],
            "seconds": seconds,
        }
    out = _interp_scan(analyzed.original, local, cand, ctx.state)
    out.update({"m": m, "kernel": None, "vertices": int(cand.size)})
    return out


def circulant_kernel_task(
    ctx: WorkerContext, shared: Dict[str, Any], item: Dict[str, Any]
) -> Dict[str, Any]:
    """One (step, machine) circulant batch on the kernel fast path.

    The parent resolves the dependency store: ``item['run']`` is the
    not-yet-broken high-degree slice, ``item['carried']`` its restored
    carried data (or None), ``item['low']`` the Gemini-scheduled rest.
    The worker only invokes the two kernel batches; break bits and
    carried values come back for the parent to write.
    """
    m = int(item["m"])
    analyzed = ctx.analyzed(shared["signal"])
    spec = analyzed.kernel
    kernel = get_kernel(spec.kind)
    local = ctx.local_in(m)
    timed = shared["timed"]

    t0 = perf_counter() if timed else 0.0
    batch = kernel(
        spec, ctx.state, local, item["run"], carried_in=item["carried"]
    )
    high_seconds = perf_counter() - t0 if timed else 0.0
    t0 = perf_counter() if timed else 0.0
    low_batch = kernel(spec, ctx.state, local, item["low"])
    low_seconds = perf_counter() - t0 if timed else 0.0

    return {
        "m": m,
        "kind": spec.kind,
        "high_edges": int(batch.edges.sum()),
        "high_emit_mask": batch.emit_mask,
        "high_values": batch.values,
        "broke": batch.broke,
        "carried": batch.carried,
        "high_seconds": high_seconds,
        "low_edges": int(low_batch.edges.sum()),
        "low_emit_mask": low_batch.emit_mask,
        "low_values": low_batch.values,
        "low_seconds": low_seconds,
    }


def circulant_interp_task(
    ctx: WorkerContext, shared: Dict[str, Any], item: Dict[str, Any]
) -> Dict[str, Any]:
    """One (step, machine) circulant scan on the per-vertex interpreter.

    Rebuilds a machine-local :class:`DepStore` seeded with the incoming
    dependency slices for this machine's candidates, runs the exact
    per-vertex loop the serial engine runs (skip-bit filtering,
    instrumented UDF for high-degree vertices, original UDF for the
    rest), and returns emissions plus the outgoing dependency slices.
    """
    m = int(item["m"])
    analyzed = ctx.analyzed(shared["signal"])
    instrumented = analyzed.instrumented
    original = analyzed.original
    cand = item["cand"]
    high_sel = item["high_sel"]
    is_last = shared["is_last"]

    store = DepStore(
        ctx.num_vertices,
        shared["carried_vars"],
        share_data=shared["share_dep_data"],
    )
    store.skip[cand] = item["skip"]
    for name in store.data:
        store.data[name][cand] = item["data"][name]
        store.present[name][cand] = item["present"][name]

    local = ctx.local_in(m)
    state = ctx.state
    high_edges = low_edges = high_vertices = low_vertices = 0
    emit_v: List[int] = []
    emit_values: List[list] = []
    for i, v in enumerate(cand.tolist()):
        emitted: list = []
        if high_sel[i]:
            if store.skip[v]:
                continue
            handle = store.handle(v, is_last=is_last)
            nbrs = _CountingNeighbors(local.neighbors(v))
            instrumented(v, nbrs, state, emitted.append, handle)
            high_edges += nbrs.count
            high_vertices += 1
        else:
            nbrs = _CountingNeighbors(local.neighbors(v))
            original(v, nbrs, state, emitted.append)
            low_edges += nbrs.count
            low_vertices += 1
        if emitted:
            emit_v.append(v)
            emit_values.append(emitted)

    high = cand[high_sel]
    return {
        "m": m,
        "high_edges": high_edges,
        "low_edges": low_edges,
        "high_vertices": high_vertices,
        "low_vertices": low_vertices,
        "emit_v": emit_v,
        "emit_values": emit_values,
        "skip_out": store.skip[high],
        "data_out": {name: store.data[name][high] for name in store.data},
        "present_out": {
            name: store.present[name][high] for name in store.present
        },
    }


def push_task(
    ctx: WorkerContext, shared: Dict[str, Any], item: Dict[str, Any]
) -> Dict[str, Any]:
    """One machine of the sparse push phase.

    Returns the ordered effect log (``ops``) the parent replays:
    ``("u", owner)`` for a remote frontier-state transfer, and
    ``("e", v, value, dst_master)`` for each emitted update — the exact
    interleaving the serial loop produced, so coalesced push messages
    accumulate in the same dict order.
    """
    m = int(item["m"])
    local = ctx.local_out(m)
    degs = local.degrees()
    frontier = shared["frontier"]
    cand = frontier[degs[frontier] > 0]
    master_of = ctx.master_of
    push_signal = shared["signal"]
    state = ctx.state
    ops: List[tuple] = []
    edges = 0
    for u in cand:
        u = int(u)
        owner = int(master_of[u])
        if owner != m:
            ops.append(("u", owner))
        for v in local.neighbors(u):
            v = int(v)
            edges += 1
            value = push_signal(u, v, state)
            if value is None:
                continue
            ops.append(("e", v, value, int(master_of[v])))
    return {"m": m, "edges": edges, "vertices": int(cand.size), "ops": ops}
