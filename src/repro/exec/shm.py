"""Shared-memory publication for the process executor.

The parent publishes NumPy arrays into POSIX shared memory once (the
immutable CSR topology) or mirrors them before each map call (vertex
state, per-call index arrays); workers attach the segments by name and
build zero-copy array views.  Arrays travel in payloads as small
placeholder tuples — :func:`ship` walks a payload replacing every
ndarray, :func:`unship` reverses it on the worker side.

Tiny arrays are shipped inline as bytes (a pickle round-trip beats a
segment for anything under a page); everything else goes through an
:class:`ShmArena` block that is reused across calls while the capacity
fits and transparently replaced (new name) when it does not.

Python 3.11's ``SharedMemory`` registers every *attach* with the
resource tracker, which would double-unlink the parent's segments (and,
under fork, strip the parent's own registration from the shared tracker
process); workers therefore attach with registration suppressed — the
parent remains the sole owner and unlinks everything at close.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["ShmArena", "ship", "unship", "attach_array"]

_SHM_TAG = "__repro_shm__"
_INLINE_TAG = "__repro_arr__"
# below this many bytes an array ships inline with the pickled payload
INLINE_LIMIT = 2048


class ShmArena:
    """Named shared-memory blocks owned by the parent process.

    ``publish`` writes an array once under a stable key; ``mirror``
    rewrites it on every call, growing (and renaming) the backing block
    only when the array outgrows the current capacity.  ``close``
    unlinks everything — the arena is the single owner of its segments.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}

    def _place(self, key: str, array: np.ndarray) -> Tuple[str, str, tuple]:
        nbytes = int(array.nbytes)
        block = self._blocks.get(key)
        if block is not None and block.size < nbytes:
            block.close()
            block.unlink()
            block = None
            del self._blocks[key]
        if block is None:
            # grow with slack so repeated mirrors of slightly varying
            # sizes do not reallocate (and rename) every call
            block = shared_memory.SharedMemory(
                create=True, size=max(nbytes * 2, 64)
            )
            self._blocks[key] = block
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        return block.name, array.dtype.str, array.shape

    def publish(self, key: str, array: np.ndarray) -> tuple:
        """Copy ``array`` into shared memory under ``key``, once."""
        return (_SHM_TAG, *self._place(key, np.ascontiguousarray(array)))

    def mirror(self, key: str, array: np.ndarray) -> tuple:
        """Copy the current contents of ``array`` under ``key``."""
        return self.publish(key, array)

    def close(self) -> None:
        for block in self._blocks.values():
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._blocks.clear()


def ship(value: Any, arena: ShmArena, key: str) -> Any:
    """Replace every ndarray in ``value`` with a shipped placeholder.

    Recurses through dicts, lists, and tuples; ``key`` namespaces the
    arena blocks so distinct payload slots never alias.
    """
    if isinstance(value, np.ndarray):
        if value.nbytes <= INLINE_LIMIT:
            arr = np.ascontiguousarray(value)
            return (_INLINE_TAG, arr.dtype.str, arr.shape, arr.tobytes())
        return arena.mirror(key, value)
    if isinstance(value, dict):
        return {
            k: ship(v, arena, f"{key}.{k}") for k, v in value.items()
        }
    if isinstance(value, list):
        return [ship(v, arena, f"{key}.{i}") for i, v in enumerate(value)]
    if isinstance(value, tuple):
        return tuple(
            ship(v, arena, f"{key}.{i}") for i, v in enumerate(value)
        )
    return value


# -- worker side -----------------------------------------------------------

# attached segments, cached per name for the life of the worker
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_array(name: str, dtype: str, shape: tuple) -> np.ndarray:
    """Zero-copy view of a published array inside a worker process."""
    block = _ATTACHED.get(name)
    if block is None:
        if len(_ATTACHED) > 512:
            # stale mirrors from outgrown blocks; drop the cache (the
            # parent unlinked the files, closing is safe)
            for old in _ATTACHED.values():
                old.close()
            _ATTACHED.clear()
        # suppress the 3.11 attach-side tracker registration: with a
        # forked worker the tracker process is shared, so registering
        # (then unregistering at exit) would strip the parent's claim
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            block = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        _ATTACHED[name] = block
    return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=block.buf)


def unship(value: Any) -> Any:
    """Reverse :func:`ship` on the worker side."""
    if isinstance(value, tuple) and value:
        if value[0] == _SHM_TAG:
            _, name, dtype, shape = value
            return attach_array(name, dtype, shape)
        if value[0] == _INLINE_TAG:
            _, dtype, shape, raw = value
            return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
        return tuple(unship(v) for v in value)
    if isinstance(value, dict):
        return {k: unship(v) for k, v in value.items()}
    if isinstance(value, list):
        return [unship(v) for v in value]
    return value
