"""Shared-memory publication for the process executor.

Three movement patterns, three costs:

* **Publish** (:meth:`ShmArena.publish`) — immutable arrays written
  once per topology generation (the CSR adjacency, the master map).
  Each key owns a dedicated segment; workers attach by name and build
  zero-copy views.
* **Adopt** (:meth:`ShmArena.adopt`) — long-lived *mutable* arrays
  (vertex state).  The array is copied into a fresh segment once and
  the caller receives a parent-side view over the same pages; from then
  on parent mutations are visible to attached workers with **zero**
  per-map republish cost.  Adopted segments are retired when the
  owning state store dies or the field is rebound.
* **Delta** (:class:`DeltaArena.write`) — per-map payload arrays
  (frontier index sets, candidate slices, dependency-bitmap slices,
  carried-data slices).  A double-buffered bump allocator: two
  preallocated segments alternate between map calls, grown
  geometrically (the old segment is retired only after a full flip, so
  in-flight references — including a crash-retry of the current map —
  stay valid).

Arrays travel in payloads as small placeholder tuples — :func:`ship`
walks a payload replacing every ndarray, :func:`unship` reverses it on
the worker side.  Tiny arrays ship inline as bytes (a pickle
round-trip beats a segment attach for anything under a page).

Lifecycle rules: the parent is the sole owner of every segment and
unlinks each one exactly once (at retire or close), so ``/dev/shm``
never accumulates orphans; unmapping is best-effort — a segment whose
pages are still exported by a live NumPy view (a result array handed
to the caller) stays mapped until that view dies (``BufferError`` is
tolerated, never fatal), which is what makes state adoption safe.

Python 3.11's ``SharedMemory`` registers every *attach* with the
resource tracker, which would double-unlink the parent's segments (and,
under fork, strip the parent's own registration from the shared tracker
process); workers therefore attach with registration suppressed — the
parent remains the sole owner and unlinks everything at close.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

__all__ = ["ShmArena", "DeltaArena", "ship", "unship", "attach_array"]

_SHM_TAG = "__repro_shm__"
_INLINE_TAG = "__repro_arr__"
# below this many bytes an array ships inline with the pickled payload
INLINE_LIMIT = 2048
# bump-allocation alignment inside a DeltaArena segment
_ALIGN = 64


def _unlink_quietly(block: shared_memory.SharedMemory) -> None:
    try:
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _close_or_zombie(
    block: shared_memory.SharedMemory, zombies: List[Any]
) -> None:
    """Unmap a segment, tolerating live exports.

    A segment whose pages back a NumPy view that escaped to the caller
    (a result array) cannot be unmapped yet — ``mmap`` refuses with
    ``BufferError`` while exports exist.  Such blocks park on the
    zombie list (already unlinked, so no ``/dev/shm`` entry remains)
    and free themselves when the last view is garbage-collected.
    """
    try:
        block.close()
    except BufferError:
        zombies.append(block)


class ShmArena:
    """Named shared-memory segments owned by the parent process.

    ``publish`` (re)writes an immutable array under a stable key;
    ``adopt`` copies a mutable array once and hands back a live view;
    ``retire`` releases one key; ``close`` releases everything.  The
    arena is the single owner of its segments — every segment is
    unlinked exactly once.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self._zombies: List[shared_memory.SharedMemory] = []
        #: cumulative bytes memcpy'd into segments (publish + adopt)
        self.published_bytes = 0
        #: current capacity of live segments
        self.allocated_bytes = 0

    def _alloc(self, key: str, nbytes: int) -> shared_memory.SharedMemory:
        block = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._blocks[key] = block
        self.allocated_bytes += block.size
        return block

    def publish(self, key: str, array: np.ndarray) -> tuple:
        """Copy ``array`` into shared memory under ``key``.

        Re-publishing a key reuses its segment while the capacity fits
        and transparently replaces it (new name) when it does not.
        """
        array = np.ascontiguousarray(array)
        block = self._blocks.get(key)
        if block is not None and block.size < array.nbytes:
            self.retire(key)
            block = None
        if block is None:
            block = self._alloc(key, array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        self.published_bytes += array.nbytes
        return (_SHM_TAG, block.name, array.dtype.str, array.shape, 0)

    def adopt(self, key: str, array: np.ndarray):
        """Move ``array`` into a fresh segment; return ``(view, ref)``.

        The returned view aliases the shared pages: parent writes are
        immediately visible to every attached worker with no further
        copies.  Each adoption gets its own segment so earlier views
        (e.g. result arrays from a previous run) are never overwritten.
        """
        array = np.ascontiguousarray(array)
        if key in self._blocks:
            self.retire(key)
        block = self._alloc(key, array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        self.published_bytes += array.nbytes
        return view, (_SHM_TAG, block.name, array.dtype.str, array.shape, 0)

    def retire(self, key: str) -> None:
        """Unlink and (best-effort) unmap one key's segment."""
        block = self._blocks.pop(key, None)
        if block is None:
            return
        self.allocated_bytes -= block.size
        _unlink_quietly(block)
        _close_or_zombie(block, self._zombies)

    def retire_many(self, keys: Iterable[str]) -> None:
        for key in list(keys):
            self.retire(key)

    def close(self) -> None:
        for key in list(self._blocks):
            self.retire(key)
        still: List[shared_memory.SharedMemory] = []
        for block in self._zombies:
            _close_or_zombie(block, still)
        self._zombies = still


class DeltaArena:
    """Double-buffered bump allocator for per-map payload arrays.

    ``begin()`` flips the active buffer and resets its cursor; every
    subsequent ``write`` appends into the active segment and returns a
    ``(name, offset)`` reference.  When a map's payload outgrows the
    segment, a new one is allocated at twice the size; the outgrown
    segment is parked and retired only when its buffer slot next
    becomes active again — by then no in-flight map (not even a
    crash-retry of the previous one) can still reference it.
    """

    def __init__(
        self,
        initial_bytes: int = 1 << 20,
        on_grow: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.initial_bytes = int(initial_bytes)
        self.on_grow = on_grow
        self._blocks: List[Optional[shared_memory.SharedMemory]] = [None, None]
        self._parked: List[List[shared_memory.SharedMemory]] = [[], []]
        self._zombies: List[shared_memory.SharedMemory] = []
        self._active = 0
        self._offset = 0
        #: number of geometric growths (first allocation excluded)
        self.grow_count = 0
        #: cumulative bytes written across all maps
        self.written_bytes = 0

    @property
    def capacity(self) -> int:
        """Current capacity of the active buffer (0 before first use)."""
        block = self._blocks[self._active]
        return 0 if block is None else block.size

    def begin(self) -> None:
        """Flip buffers for a new map call."""
        self._active ^= 1
        self._offset = 0
        for block in self._parked[self._active]:
            _unlink_quietly(block)
            _close_or_zombie(block, self._zombies)
        self._parked[self._active] = []

    def _grow(self, need: int) -> shared_memory.SharedMemory:
        old = self._blocks[self._active]
        size = max(self.initial_bytes, need * 2)
        if old is not None:
            size = max(size, old.size * 2)
            self._parked[self._active].append(old)
            self.grow_count += 1
        block = shared_memory.SharedMemory(create=True, size=size)
        self._blocks[self._active] = block
        if self.on_grow is not None:
            self.on_grow(block.size)
        return block

    def write(self, array: np.ndarray) -> tuple:
        """Bump-allocate ``array`` into the active buffer; return a ref."""
        array = np.ascontiguousarray(array)
        nbytes = int(array.nbytes)
        offset = (self._offset + _ALIGN - 1) & ~(_ALIGN - 1)
        block = self._blocks[self._active]
        if block is None or offset + nbytes > block.size:
            block = self._grow(offset + nbytes)
            offset = 0
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=block.buf, offset=offset
        )
        view[...] = array
        self._offset = offset + nbytes
        self.written_bytes += nbytes
        return (_SHM_TAG, block.name, array.dtype.str, array.shape, offset)

    def close(self) -> None:
        for slot in (0, 1):
            block = self._blocks[slot]
            if block is not None:
                _unlink_quietly(block)
                _close_or_zombie(block, self._zombies)
                self._blocks[slot] = None
            for parked in self._parked[slot]:
                _unlink_quietly(parked)
                _close_or_zombie(parked, self._zombies)
            self._parked[slot] = []
        still: List[shared_memory.SharedMemory] = []
        for block in self._zombies:
            _close_or_zombie(block, still)
        self._zombies = still


def ship(value: Any, arena) -> Any:
    """Replace every ndarray in ``value`` with a shipped placeholder.

    Recurses through dicts, lists, and tuples; ``arena`` is anything
    with a ``write(array) -> ref`` method (normally a
    :class:`DeltaArena` between ``begin()`` and the map dispatch).
    """
    if isinstance(value, np.ndarray):
        if value.nbytes <= INLINE_LIMIT:
            arr = np.ascontiguousarray(value)
            return (_INLINE_TAG, arr.dtype.str, arr.shape, arr.tobytes())
        return arena.write(value)
    if isinstance(value, dict):
        return {k: ship(v, arena) for k, v in value.items()}
    if isinstance(value, list):
        return [ship(v, arena) for v in value]
    if isinstance(value, tuple):
        return tuple(ship(v, arena) for v in value)
    return value


# -- worker side -----------------------------------------------------------

# attached segments, cached per name for the life of the worker
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_array(
    name: str, dtype: str, shape: tuple, offset: int = 0
) -> np.ndarray:
    """Zero-copy view of a published array inside a worker process."""
    block = _ATTACHED.get(name)
    if block is None:
        if len(_ATTACHED) > 512:
            # stale names from retired segments; drop what can be
            # dropped (the parent already unlinked the files; blocks
            # with live exports survive until their views die)
            for stale, old in list(_ATTACHED.items()):
                try:
                    old.close()
                except BufferError:
                    continue
                del _ATTACHED[stale]
        # suppress the 3.11 attach-side tracker registration: with a
        # forked worker the tracker process is shared, so registering
        # (then unregistering at exit) would strip the parent's claim
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            block = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        _ATTACHED[name] = block
    return np.ndarray(
        tuple(shape), dtype=np.dtype(dtype), buffer=block.buf, offset=offset
    )


def unship(value: Any) -> Any:
    """Reverse :func:`ship` on the worker side."""
    if isinstance(value, tuple) and value:
        if value[0] == _SHM_TAG:
            _, name, dtype, shape, offset = value
            return attach_array(name, dtype, shape, offset)
        if value[0] == _INLINE_TAG:
            _, dtype, shape, raw = value
            return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
        return tuple(unship(v) for v in value)
    if isinstance(value, dict):
        return {k: unship(v) for k, v in value.items()}
    if isinstance(value, list):
        return [unship(v) for v in value]
    return value
