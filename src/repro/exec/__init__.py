"""Pluggable executors: where per-machine work units run.

``SerialExecutor`` (default) runs tasks inline; ``ThreadPoolExecutor``
and ``ProcessPoolExecutor`` run them concurrently with a deterministic
merge, so every backend produces bit-identical results, counters, and
traffic.  The process backend is a *persistent* pool over a
shared-memory arena — workers stay warm across runs and graph rebinds
(see :mod:`repro.exec.process` and :mod:`repro.exec.shm`).  See
:mod:`repro.exec.base` for the contract and :mod:`repro.exec.work` for
the task functions.
"""

from repro.exec.base import (
    EXECUTOR_KINDS,
    Executor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]


def __getattr__(name):
    # ProcessPoolExecutor pulls in multiprocessing; import on demand
    if name == "ProcessPoolExecutor":
        from repro.exec.process import ProcessPoolExecutor

        return ProcessPoolExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
