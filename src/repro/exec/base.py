"""Executor abstraction: where per-machine work units actually run.

Engines route every per-(machine, step) work unit through
``executor.map_machines(task_fn, shared, items, state, stalls)``; the
executor decides *where* the task functions run — inline
(:class:`SerialExecutor`), on a thread pool
(:class:`ThreadPoolExecutor`), or on forked worker processes mapping
the CSR topology and vertex state zero-copy out of shared memory
(:class:`~repro.exec.process.ProcessPoolExecutor`).  Results always
come back in item order and the parent merges them deterministically,
so counters, traffic, and results are bit-identical across backends —
the backend is purely a wall-clock knob, exactly like ``use_kernels``.

``stalls`` carries the fault controller's per-machine straggler
factors: the simulated cost model already charges them, and the
concurrent backends additionally turn them into real wall-clock stalls
(a machine slowed by factor f sleeps (f-1) x its compute time).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent import futures
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.exec.work import WorkerContext

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "thread", "process")


def _run_with_stall(fn, ctx, shared, item, factor: float):
    """Run one task, then sleep out its straggler delay for real."""
    t0 = time.perf_counter()
    result = fn(ctx, shared, item)
    if factor > 1.0:
        time.sleep((factor - 1.0) * (time.perf_counter() - t0))
    return result


class Executor:
    """Maps per-machine task functions; backends differ in where."""

    kind = "abstract"
    #: whether tasks may run concurrently — the verification gate uses
    #: this to decide if determinism hazards are load-bearing
    parallel = False

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = int(workers) if workers else 1
        self._ctx: Optional[WorkerContext] = None
        self._partition = None
        # reason the last map ran serially despite the backend, if any
        self.last_fallback: Optional[str] = None
        #: lifecycle events (``(kind, payload)``) accumulated since the
        #: last drain — pool spawns, arena growths; engines drain these
        #: into the observability stream after each map call
        self.events: "deque[Tuple[str, Dict[str, Any]]]" = deque(maxlen=256)

    def drain_events(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Pop and return all pending lifecycle events, oldest first."""
        out: List[Tuple[str, Dict[str, Any]]] = []
        while self.events:
            out.append(self.events.popleft())
        return out

    def stats(self) -> Dict[str, Any]:
        """Backend introspection snapshot (pool/arena numbers)."""
        return {"kind": self.kind, "workers": int(self.workers)}

    def bind(self, engine) -> None:
        """Target this executor at an engine's partition.

        Called by :meth:`BaseEngine.attach_executor`; rebinding to a
        different partition re-derives every cached view.
        """
        partition = engine.partition
        if partition is self._partition:
            return
        self._partition = partition
        p = partition.num_machines
        self._ctx = WorkerContext(
            [partition.local_in(m) for m in range(p)],
            [partition.local_out(m) for m in range(p)],
            partition.master_of,
            partition.graph.num_vertices,
        )
        self._rebind()

    def _rebind(self) -> None:
        """Backend hook run after the partition changed."""

    def map_machines(
        self,
        fn,
        shared: Dict[str, Any],
        items: Sequence[Dict[str, Any]],
        state,
        stalls=None,
    ) -> List[Any]:
        """Run ``fn(ctx, shared, item)`` for every item; results in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pools and shared-memory segments."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every task inline — the default, and the reference order."""

    kind = "serial"

    def map_machines(self, fn, shared, items, state, stalls=None):
        ctx = self._ctx
        ctx.state = state
        return [fn(ctx, shared, item) for item in items]


class ThreadPoolExecutor(Executor):
    """Run tasks on a thread pool.

    Python bytecode serializes on the GIL, but the batched NumPy
    kernels release it, so kernel-classified workloads overlap; the
    backend also exercises the full concurrent merge path with zero
    serialization cost, making it the cheap determinism check.
    """

    kind = "thread"
    parallel = True

    def __init__(self, workers: Optional[int] = None) -> None:
        import os

        super().__init__(workers or os.cpu_count() or 1)
        self._pool: Optional[futures.ThreadPoolExecutor] = None

    def map_machines(self, fn, shared, items, state, stalls=None):
        if self._pool is None:
            self._pool = futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec",
            )
        ctx = self._ctx
        ctx.state = state
        pending = [
            self._pool.submit(
                _run_with_stall,
                fn,
                ctx,
                shared,
                item,
                float(stalls[int(item["m"])]) if stalls is not None else 1.0,
            )
            for item in items
        ]
        return [f.result() for f in pending]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(spec=None, workers: Optional[int] = None) -> Executor:
    """Build an executor from a kind string, an instance, or ``None``.

    ``None`` and ``"serial"`` give the in-process reference backend;
    an :class:`Executor` instance passes through unchanged (``workers``
    must then be left unset).
    """
    if isinstance(spec, Executor):
        if workers is not None and workers != spec.workers:
            raise EngineError(
                "workers= conflicts with the explicit Executor instance; "
                "configure the instance instead"
            )
        return spec
    if spec is None or spec == "serial":
        return SerialExecutor(workers)
    if spec == "thread":
        return ThreadPoolExecutor(workers)
    if spec == "process":
        from repro.exec.process import ProcessPoolExecutor

        return ProcessPoolExecutor(workers)
    raise EngineError(
        f"unknown executor {spec!r}; expected one of {EXECUTOR_KINDS} "
        "or an Executor instance"
    )
