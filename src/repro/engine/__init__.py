"""Distributed engines: Gemini, SympleGraph, D-Galois, single-thread."""

from typing import Optional, Union

from repro.engine.base import BaseEngine, PullResult, PushResult
from repro.engine.dgalois import DGaloisEngine
from repro.engine.gemini import GeminiEngine
from repro.engine.single_thread import SingleThreadEngine
from repro.engine.state import StateStore
from repro.engine.symple import (
    SympleGraphEngine,
    SympleOptions,
    circulant_machine_order,
    circulant_partition,
)
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.partition.base import Partition
from repro.partition.edge_cut import OutgoingEdgeCut
from repro.partition.vertex_cut import CartesianVertexCut

__all__ = [
    "BaseEngine",
    "PullResult",
    "PushResult",
    "GeminiEngine",
    "SympleGraphEngine",
    "SympleOptions",
    "DGaloisEngine",
    "SingleThreadEngine",
    "StateStore",
    "make_engine",
    "circulant_partition",
    "circulant_machine_order",
]

_ENGINE_KINDS = ("gemini", "symple", "dgalois", "single")


def make_engine(
    kind: str,
    graph_or_partition: Union[CSRGraph, Partition],
    num_machines: int = 16,
    options: Optional[SympleOptions] = None,
    obs=None,
) -> BaseEngine:
    """Build an engine with its canonical partition strategy.

    ``gemini`` and ``symple`` run on Gemini's chunked outgoing
    edge-cut; ``dgalois`` on the Cartesian vertex-cut it defaults to at
    scale; ``single`` on one machine.  Pass a pre-built
    :class:`Partition` to override the strategy.  ``obs`` attaches an
    observability hub (an :class:`~repro.obs.hooks.ObsHub`, a
    :class:`~repro.obs.tracer.Tracer`, or a trace-file path).
    """
    if kind not in _ENGINE_KINDS:
        raise EngineError(
            f"unknown engine kind {kind!r}; expected one of {_ENGINE_KINDS}"
        )

    if kind == "single":
        if isinstance(graph_or_partition, Partition):
            graph = graph_or_partition.graph
        else:
            graph = graph_or_partition
        return SingleThreadEngine(graph, obs=obs)

    if isinstance(graph_or_partition, Partition):
        partition = graph_or_partition
    else:
        if kind == "dgalois":
            partition = CartesianVertexCut().partition(
                graph_or_partition, num_machines
            )
        else:
            partition = OutgoingEdgeCut().partition(
                graph_or_partition, num_machines
            )

    if kind == "gemini":
        return GeminiEngine(partition, obs=obs)
    if kind == "dgalois":
        return DGaloisEngine(partition, obs=obs)
    return SympleGraphEngine(partition, options=options, obs=obs)
