"""Distributed engines: Gemini, SympleGraph, D-Galois, single-thread."""

from typing import Optional, Union

from repro.engine.base import BaseEngine, PullResult, PushResult
from repro.engine.dgalois import DGaloisEngine
from repro.engine.gemini import GeminiEngine
from repro.engine.single_thread import SingleThreadEngine
from repro.engine.state import StateStore
from repro.engine.symple import (
    SympleGraphEngine,
    SympleOptions,
    circulant_machine_order,
    circulant_partition,
)
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.partition.base import Partition
from repro.partition.edge_cut import OutgoingEdgeCut
from repro.partition.vertex_cut import CartesianVertexCut

__all__ = [
    "BaseEngine",
    "PullResult",
    "PushResult",
    "GeminiEngine",
    "SympleGraphEngine",
    "SympleOptions",
    "DGaloisEngine",
    "SingleThreadEngine",
    "StateStore",
    "make_engine",
    "circulant_partition",
    "circulant_machine_order",
]

_ENGINE_KINDS = ("gemini", "symple", "dgalois", "single")


def make_engine(
    kind: str,
    graph_or_partition: Union[CSRGraph, Partition],
    num_machines: int = 16,
    *,
    options: Optional[SympleOptions] = None,
    obs=None,
    executor=None,
    workers: Optional[int] = None,
    verify: str = "off",
) -> BaseEngine:
    """Build an engine with its canonical partition strategy.

    ``gemini`` and ``symple`` run on Gemini's chunked outgoing
    edge-cut; ``dgalois`` on the Cartesian vertex-cut it defaults to at
    scale; ``single`` on one machine.  Pass a pre-built
    :class:`Partition` to override the strategy.  ``obs`` attaches an
    observability hub (an :class:`~repro.obs.hooks.ObsHub`, a
    :class:`~repro.obs.tracer.Tracer`, or a trace-file path);
    ``executor`` selects the backend per-machine work runs on
    (``"serial"``/``"thread"``/``"process"`` or an
    :class:`~repro.exec.Executor` instance) with ``workers`` bounding
    its concurrency.  ``verify`` gates the batched kernel fast path on
    static certification of each classification
    (``"warn"`` drops an uncertified kernel back to the per-vertex
    interpreter, ``"strict"`` raises
    :class:`~repro.errors.KernelSoundnessError`).

    This is the low-level constructor; :class:`repro.Session` with a
    :class:`repro.RunConfig` is the supported entry point for whole
    runs.
    """
    if kind not in _ENGINE_KINDS:
        raise EngineError(
            f"unknown engine kind {kind!r}; expected one of {_ENGINE_KINDS}"
        )
    if options is not None and kind != "symple":
        raise EngineError(
            f"options= is a SympleGraph knob; the {kind!r} engine does "
            "not accept it (drop it, or use kind='symple')"
        )
    if not isinstance(graph_or_partition, Partition) and num_machines < 1:
        raise EngineError(
            f"num_machines must be >= 1, got {num_machines}"
        )
    if workers is not None or executor is not None:
        from repro.exec import make_executor

        executor = make_executor(executor, workers=workers)

    if kind == "single":
        if isinstance(graph_or_partition, Partition):
            graph = graph_or_partition.graph
        else:
            graph = graph_or_partition
        return SingleThreadEngine(
            graph, obs=obs, executor=executor, verify=verify
        )

    if isinstance(graph_or_partition, Partition):
        partition = graph_or_partition
    else:
        if kind == "dgalois":
            partition = CartesianVertexCut().partition(
                graph_or_partition, num_machines
            )
        else:
            partition = OutgoingEdgeCut().partition(
                graph_or_partition, num_machines
            )

    if kind == "gemini":
        return GeminiEngine(
            partition, obs=obs, executor=executor, verify=verify
        )
    if kind == "dgalois":
        return DGaloisEngine(
            partition, obs=obs, executor=executor, verify=verify
        )
    return SympleGraphEngine(
        partition, options=options, obs=obs, executor=executor,
        verify=verify,
    )
