"""Gemini baseline engine (Zhu et al., OSDI'16).

Dense pull: every machine scans its local in-edges of every active
destination vertex *independently and in parallel*, running the
original (un-instrumented) signal UDF.  A machine's local ``break``
only stops its own scan — the loop-carried dependency is an "illusion"
(paper Section 1): other machines keep traversing and keep sending
updates the master will discard.  This engine is the measurement
baseline for Tables 2-6.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.base import BaseEngine, PullResult, SignalLike
from repro.engine.state import StateStore
from repro.partition.base import Partition
from repro.runtime.cost_model import GEMINI_COST, CostModel

__all__ = ["GeminiEngine"]


class GeminiEngine(BaseEngine):
    """BSP signal-slot engine without dependency propagation."""

    kind = "gemini"
    cost_kind = "gemini"
    supports_dependency = False
    supports_async = True

    def __init__(
        self,
        partition: Partition,
        cost_model: CostModel = GEMINI_COST,
        use_kernels: bool = True,
        obs=None,
        executor=None,
        verify: str = "off",
    ) -> None:
        super().__init__(
            partition, cost_model, use_kernels=use_kernels, obs=obs,
            executor=executor, verify=verify,
        )

    def pull(
        self,
        signal: SignalLike,
        slot: Callable,
        state: StateStore,
        active: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
        dep_data_bytes: int = 4,
        allow_differentiated: bool = True,
        share_dep_data: bool = True,
    ) -> PullResult:
        """Dense pull on the shared BSP schedule (kernel fast path
        included); the dependency-related parameters are accepted for
        interface compatibility and ignored."""
        active_idx = self._check_active(active)
        analyzed = self.ensure_analyzed(signal)
        return self._pull_parallel(
            analyzed, slot, state, active_idx, update_bytes, sync_bytes
        )
