"""Gemini baseline engine (Zhu et al., OSDI'16).

Dense pull: every machine scans its local in-edges of every active
destination vertex *independently and in parallel*, running the
original (un-instrumented) signal UDF.  A machine's local ``break``
only stops its own scan — the loop-carried dependency is an "illusion"
(paper Section 1): other machines keep traversing and keep sending
updates the master will discard.  This engine is the measurement
baseline for Tables 2-6.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.base import (
    BaseEngine,
    CountingNeighbors,
    PullResult,
    SignalLike,
    _UpdateBuffer,
)
from repro.engine.state import StateStore
from repro.partition.base import Partition
from repro.runtime.cost_model import GEMINI_COST, CostModel
from repro.runtime.counters import IterationRecord, StepRecord

__all__ = ["GeminiEngine"]


class GeminiEngine(BaseEngine):
    """BSP signal-slot engine without dependency propagation."""

    kind = "gemini"
    cost_kind = "gemini"
    supports_dependency = False

    def __init__(
        self, partition: Partition, cost_model: CostModel = GEMINI_COST
    ) -> None:
        super().__init__(partition, cost_model)

    def pull(
        self,
        signal: SignalLike,
        slot: Callable,
        state: StateStore,
        active: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
        dep_data_bytes: int = 4,
        allow_differentiated: bool = True,
        share_dep_data: bool = True,
    ) -> PullResult:
        phase = self._phase_begin()
        active_idx = self._check_active(active)
        analyzed = self.ensure_analyzed(signal)
        fn = analyzed.original
        master_of = self.partition.master_of

        record = IterationRecord(mode="pull")
        step = self._make_step(phase)
        buffer = _UpdateBuffer()

        for m in range(self.num_machines):
            local = self.partition.local_in(m)
            for v in self._active_candidates(active_idx, m):
                v = int(v)
                nbrs = CountingNeighbors(local.neighbors(v))
                emitted: list = []
                fn(v, nbrs, state, emitted.append)
                step.high_edges[m] += nbrs.count
                step.high_vertices[m] += 1
                if not emitted:
                    continue
                master = int(master_of[v])
                if master != m:
                    nbytes = update_bytes * len(emitted)
                    self.network.send(m, master, "update", nbytes)
                    step.update_bytes[m] += nbytes
                for value in emitted:
                    buffer.add(v, value)

        changed, applied = buffer.apply(slot, state)
        record.steps = [step]
        self._count_sync(changed, sync_bytes, record)
        self.counters.add_iteration(record)
        self.counters.add_edges(int(step.high_edges.sum()))
        self.counters.add_vertices(int(step.high_vertices.sum()))
        return PullResult(changed, applied, int(step.high_edges.sum()))
