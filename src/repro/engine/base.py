"""Shared engine machinery.

A *distributed engine* executes signal-slot vertex programs over a
:class:`~repro.partition.base.Partition`, metering every neighbor scan
and every remote byte.  Concrete engines differ in how the dense pull
phase is scheduled:

* :class:`~repro.engine.gemini.GeminiEngine` — every machine scans its
  local in-edges independently and in parallel (the BSP baseline);
* :class:`~repro.engine.symple.SympleGraphEngine` — circulant
  scheduling with dependency propagation;
* :class:`~repro.engine.dgalois.DGaloisEngine` — BSP over a vertex-cut
  with Gluon-style reduce+broadcast synchronization.

The sparse push phase and the slot/update/sync protocol are shared.
Slot application is deferred to the end of the phase (bulk-synchronous
visibility): signals never observe same-iteration writes, matching
Definition 2.2 semantics so all engines compute identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.instrument import AnalyzedSignal, instrument_signal
from repro.engine.state import StateStore
from repro.exec import work
from repro.errors import EngineError
from repro.kernels import get_kernel
from repro.obs.hooks import ObsHub
from repro.partition.base import Partition
from repro.runtime.cost_model import CostModel
from repro.runtime.counters import Counters, IterationRecord, StepRecord
from repro.runtime.network import SimulatedNetwork

__all__ = [
    "CountingNeighbors",
    "PullResult",
    "PushResult",
    "BaseEngine",
    "SignalLike",
]

SignalLike = Union[Callable, AnalyzedSignal]


class CountingNeighbors:
    """Iterable over a neighbor array that counts examined elements.

    The count includes every neighbor the UDF's loop touched, including
    the one that triggered the break — the paper's "edges traversed"
    metric (Table 5).
    """

    __slots__ = ("_array", "count")

    def __init__(self, array: np.ndarray) -> None:
        self._array = array
        self.count = 0

    def __iter__(self):
        for value in self._array:
            self.count += 1
            yield int(value)

    def __len__(self) -> int:
        return int(self._array.size)


@dataclass
class PullResult:
    """Outcome of one dense pull phase."""

    changed: np.ndarray
    updates_applied: int
    edges_traversed: int

    @property
    def any_changed(self) -> bool:
        return self.changed.size > 0


@dataclass
class PushResult:
    """Outcome of one sparse push phase."""

    changed: np.ndarray
    updates_applied: int
    edges_traversed: int

    @property
    def any_changed(self) -> bool:
        return self.changed.size > 0


@dataclass
class _UpdateBuffer:
    """Updates collected during a phase, applied bulk-synchronously."""

    items: List[Tuple[int, object]] = field(default_factory=list)

    def add(self, v: int, value: object) -> None:
        self.items.append((v, value))

    def apply(
        self, slot: Callable, state: StateStore
    ) -> Tuple[np.ndarray, int]:
        changed: Dict[int, None] = {}
        for v, value in self.items:
            if slot(v, value, state):
                changed[v] = None
        return np.fromiter(changed.keys(), dtype=np.int64), len(self.items)


class BaseEngine:
    """Common state and protocol shared by all distributed engines."""

    kind = "abstract"
    cost_kind = "gemini"  # which CostModel pricing function applies
    supports_dependency = False
    supports_async = False  # per-bucket activation (engine.async_mode)
    sync_scope = "in"  # which replica holders receive state broadcasts

    def __init__(
        self,
        partition: Partition,
        default_cost: CostModel,
        use_kernels: bool = True,
        obs: Optional[ObsHub] = None,
        executor=None,
        verify: str = "off",
    ) -> None:
        self.partition = partition
        self.graph = partition.graph
        self.num_machines = partition.num_machines
        self.counters = Counters(self.num_machines)
        self.network = SimulatedNetwork(self.num_machines, self.counters)
        self.default_cost = default_cost
        self.use_kernels = use_kernels
        self.verify = verify
        self._analyzed: Dict[int, AnalyzedSignal] = {}
        self._certified: Dict[int, bool] = {}
        self._fault_controller = None
        self.executor = None
        self.attach_executor(executor)
        self.obs: Optional[ObsHub] = None
        if obs is not None:
            self.attach_observer(obs)

    # -- execution backend --------------------------------------------------

    def attach_executor(self, executor=None) -> None:
        """Install the executor that runs per-machine work units.

        Accepts an :class:`~repro.exec.base.Executor` instance, a kind
        string (``"serial"``/``"thread"``/``"process"``), or ``None``
        for the default serial backend.  The executor is (re)bound to
        this engine's partition; every backend produces bit-identical
        results — see :mod:`repro.exec`.
        """
        from repro.exec import make_executor

        self.executor = make_executor(executor)
        self.executor.bind(self)

    def _map_machines(self, fn, shared, items, state, step=None):
        """Dispatch per-machine tasks, bracketing with ``exec_*`` events.

        ``step`` supplies the straggler slowdown factors the concurrent
        backends turn into real wall-clock stalls; results come back in
        item order for the deterministic merge.
        """
        ex = self.executor
        if self.obs is None:
            return ex.map_machines(
                fn, shared, items, state,
                stalls=step.slowdown if step is not None else None,
            )
        self.obs.exec_map_begin(ex.kind, ex.workers, len(items))
        t0 = perf_counter()
        results = ex.map_machines(
            fn, shared, items, state,
            stalls=step.slowdown if step is not None else None,
        )
        if ex.last_fallback is not None:
            self.obs.exec_fallback(ex.kind, ex.last_fallback)
        for kind, payload in ex.drain_events():
            if kind == "pool_spawn":
                self.obs.exec_pool_spawn(ex.kind, **payload)
            elif kind == "arena_grow":
                self.obs.exec_arena_grow(ex.kind, **payload)
        self.obs.exec_map_end(ex.kind, len(items), perf_counter() - t0)
        return results

    # -- observability ------------------------------------------------------

    def attach_observer(self, obs) -> None:
        """Attach (or with ``None``, detach) an observability hub.

        Accepts an :class:`~repro.obs.hooks.ObsHub`, a bare
        :class:`~repro.obs.tracer.Tracer`, or a trace-file path.  With
        no hub attached the engines pay a single None check per call
        site — the tracing-off overhead contract.
        """
        self.obs = None if obs is None else ObsHub.coerce(obs)
        if self._fault_controller is not None:
            # the controller caches the hub reference at bind time
            self._fault_controller.bind(self)

    # -- fault injection ---------------------------------------------------

    def attach_faults(self, controller) -> None:
        """Install (or with ``None``, remove) a fault controller.

        The controller's delivery hook goes on the network; phase and
        step boundaries consult it for crash events and straggler
        slowdowns.  See :mod:`repro.fault`.
        """
        self._fault_controller = controller
        self.network.delivery_hook = None
        if controller is not None:
            controller.bind(self)

    def _phase_begin(self, mode: str = "pull") -> int:
        """Phase index of the phase about to run; fires crash events."""
        phase = len(self.counters.iterations)
        if self._fault_controller is not None:
            self._fault_controller.check_crash(phase, 0)
        if self.obs is not None:
            self.obs.phase_begin(phase, mode, self.cost_kind,
                                 self.num_machines)
        return phase

    def _obs_commit(self, record: IterationRecord) -> None:
        """Emit step + phase-end events for a committed one-shot record.

        The circulant engine emits step spans live at real step
        boundaries; single-step phases (parallel pull, push) report
        theirs here, right after the record is committed.
        """
        if self.obs is None:
            return
        for s, step in enumerate(record.steps):
            self.obs.step_begin(s)
            self.obs.step_end(s, step)
        self.obs.phase_end(record)

    def _make_step(self, phase: int) -> StepRecord:
        """New step record, with straggler slowdowns applied."""
        step = StepRecord(self.num_machines)
        if self._fault_controller is not None:
            step.slowdown[:] = self._fault_controller.slowdown(phase)
        return step

    # -- state -----------------------------------------------------------

    def new_state(self) -> StateStore:
        """Fresh vertex-state namespace sized for this engine's graph."""
        return StateStore(self.graph.num_vertices)

    # -- UDF analysis -------------------------------------------------------

    def ensure_analyzed(self, signal: SignalLike) -> AnalyzedSignal:
        """Analyze and instrument a signal, caching per function object."""
        if isinstance(signal, AnalyzedSignal):
            return signal
        key = id(signal)
        cached = self._analyzed.get(key)
        if cached is None:
            cached = instrument_signal(signal)
            self._analyzed[key] = cached
        return cached

    # -- phases ---------------------------------------------------------------

    def pull(
        self,
        signal: SignalLike,
        slot: Callable,
        state: StateStore,
        active: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
        dep_data_bytes: int = 4,
        allow_differentiated: bool = True,
        share_dep_data: bool = True,
    ) -> PullResult:
        """Dense pull phase over active destination vertices.

        ``allow_differentiated=False`` forces dependency propagation for
        every vertex regardless of degree: required when the UDF is not
        Gemini-correct on its own (e.g. sampling's prefix sum, which has
        no meaning when machines scan independently).
        """
        raise NotImplementedError

    def push(
        self,
        push_signal: Callable,
        slot: Callable,
        state: StateStore,
        frontier: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
    ) -> PushResult:
        """Sparse push phase from the frontier along out-edges.

        ``push_signal(u, v, state)`` returns an update value or None.
        The paper's optimization targets pull mode; push is identical
        across the distributed engines.
        """
        phase = self._phase_begin("push")
        frontier_idx = self._as_indices(frontier)
        record = IterationRecord(mode="push")
        step = self._make_step(phase)
        buffer = _UpdateBuffer()
        push_msg: Dict[Tuple[int, int], int] = {}

        results = self._map_machines(
            work.push_task,
            {"signal": push_signal, "frontier": frontier_idx},
            [{"m": m} for m in range(self.num_machines)],
            state,
            step=step,
        )
        for res in results:
            m = res["m"]
            step.high_edges[m] += res["edges"]
            step.high_vertices[m] += res["vertices"]
            for op in res["ops"]:
                if op[0] == "u":
                    # frontier state of u must reach this machine's
                    # out-edge replicas (free under outgoing edge-cut).
                    self.network.send(op[1], m, "push", 8)
                    step.update_bytes[op[1]] += 8
                else:
                    _, v, value, dst_master = op
                    if dst_master != m:
                        key = (m, dst_master)
                        push_msg[key] = push_msg.get(key, 0) + update_bytes
                        step.update_bytes[m] += update_bytes
                    buffer.add(v, value)

        for (src, dst), nbytes in push_msg.items():
            self.network.send(src, dst, "push", nbytes)

        changed, applied = buffer.apply(slot, state)
        record.push_bytes = sum(push_msg.values())
        record.steps = [step]
        self._count_sync(changed, sync_bytes, record)
        self.counters.add_iteration(record)
        self._obs_commit(record)
        self.counters.add_edges(int(step.high_edges.sum()))
        self.counters.add_vertices(int(step.high_vertices.sum()))
        return PushResult(changed, applied, int(step.high_edges.sum()))

    # -- batched kernel fast path ---------------------------------------------

    def _kernel_plan(self, analyzed: AnalyzedSignal, state: StateStore):
        """``(spec, kernel)`` when the batched fast path applies, else None.

        Requires the engine opt-in (``use_kernels``), a classification
        from the analyzer, a registered kernel for its kind, and a
        state layout matching the arrays the compiled expressions read.
        Any miss means the per-vertex interpreter runs — the fallback
        contract documented in ``docs/API.md``.
        """
        if not self.use_kernels:
            return None
        spec = analyzed.kernel
        if spec is None:
            return None
        if self.verify != "off" and not self._certify_kernel(analyzed, spec):
            return None
        kernel = get_kernel(spec.kind)
        if kernel is None or not spec.compatible(state):
            return None
        return spec, kernel

    def _certify_kernel(self, analyzed: AnalyzedSignal, spec) -> bool:
        """Cross-check a classification before dispatching its kernel.

        With ``verify="warn"`` a refuted contract drops the fast path
        (the per-vertex interpreter is always correct) and emits a
        ``RuntimeWarning``; ``verify="strict"`` re-raises the
        :class:`~repro.errors.KernelSoundnessError`.  Verdicts cache
        per signal function for the engine's lifetime.
        """
        key = id(analyzed.original)
        cached = self._certified.get(key)
        if cached is not None:
            return cached
        # lazy: certification is a verify-mode-only dependency
        from repro.analysis.ast_analysis import analyze_parsed, parse_signal
        from repro.analysis.verify import certify_spec
        from repro.errors import KernelSoundnessError

        try:
            sig = parse_signal(analyzed.original)
            certify_spec(sig, analyze_parsed(sig), spec)
        except KernelSoundnessError as exc:
            if self.verify == "strict":
                raise
            import warnings

            warnings.warn(
                "kernel fast path disabled for "
                f"{getattr(analyzed.original, '__name__', '?')}: {exc}",
                RuntimeWarning,
                stacklevel=4,
            )
            self._certified[key] = False
            return False
        self._certified[key] = True
        return True

    def _run_kernel(
        self,
        m: int,
        kernel,
        spec,
        state: StateStore,
        local,
        vertices: np.ndarray,
        carried_in=None,
    ):
        """Invoke one batched kernel, wall-clock profiled when observed.

        The timing call is skipped entirely with no hub attached so the
        fast path's hot loop stays unperturbed (the <2% overhead
        contract of the perf-smoke gate).
        """
        if self.obs is None:
            return kernel(spec, state, local, vertices,
                          carried_in=carried_in)
        t0 = perf_counter()
        batch = kernel(spec, state, local, vertices, carried_in=carried_in)
        self.obs.kernel_batch(
            m, spec.kind, int(vertices.size), int(batch.edges.sum()),
            perf_counter() - t0,
        )
        return batch

    def _grouped_sends_ok(self) -> bool:
        """May per-vertex update messages be coalesced into one send?

        Grouping keeps bytes_by_tag/messages_by_tag identical (via
        ``messages=count``) but would change what a delivery hook or
        the trace log observes per message, so both force the
        one-send-per-vertex path.
        """
        return self.network.delivery_hook is None and not self.network.trace

    def _emit_kernel_batch(
        self,
        m: int,
        vertices: np.ndarray,
        values: np.ndarray,
        update_bytes: int,
        step: StepRecord,
        buffer: "_UpdateBuffer",
    ) -> None:
        """Meter and buffer a batch of emitting vertices on machine ``m``.

        Send order matches the interpreter (ascending vertex within the
        batch); when grouping is allowed, each destination master gets
        one coalesced send carrying the same bytes and message count.
        """
        if vertices.size == 0:
            return
        masters = self.partition.master_of[vertices]
        remote = masters != m
        n_remote = int(remote.sum())
        if n_remote:
            if self._grouped_sends_ok():
                dsts, counts = np.unique(masters[remote], return_counts=True)
                for dst, cnt in zip(dsts, counts):
                    self.network.send(
                        m,
                        int(dst),
                        "update",
                        update_bytes * int(cnt),
                        messages=int(cnt),
                    )
            else:
                for dst in masters[remote]:
                    self.network.send(m, int(dst), "update", update_bytes)
            step.update_bytes[m] += update_bytes * n_remote
        for v, value in zip(vertices.tolist(), values):
            buffer.add(v, value)

    def _pull_parallel(
        self,
        analyzed: AnalyzedSignal,
        slot: Callable,
        state: StateStore,
        active_idx: np.ndarray,
        update_bytes: int,
        sync_bytes: int,
    ) -> PullResult:
        """BSP parallel pull: every machine scans its local in-edges
        of every active vertex with the original (un-instrumented)
        signal — Gemini's schedule, shared by all engines when there is
        no dependency to enforce.  Dispatches whole per-machine batches
        to a classified kernel when one applies."""
        phase = self._phase_begin("pull")
        master_of = self.partition.master_of
        record = IterationRecord(mode="pull")
        step = self._make_step(phase)
        buffer = _UpdateBuffer()
        plan = self._kernel_plan(analyzed, state)
        results = self._map_machines(
            work.parallel_pull_task,
            {
                "signal": analyzed,
                "active": active_idx,
                "use_kernel": plan is not None,
                "timed": self.obs is not None,
            },
            [{"m": m} for m in range(self.num_machines)],
            state,
            step=step,
        )
        for res in results:
            m = res["m"]
            step.high_edges[m] += res["edges"]
            step.high_vertices[m] += res["vertices"]
            if res["kernel"] is not None:
                if self.obs is not None:
                    self.obs.kernel_batch(
                        m, res["kernel"], res["vertices"], res["edges"],
                        res["seconds"],
                    )
                self._emit_kernel_batch(
                    m,
                    res["emit_v"],
                    res["emit_values"],
                    update_bytes,
                    step,
                    buffer,
                )
                continue
            for v, values in zip(res["emit_v"], res["emit_values"]):
                master = int(master_of[v])
                if master != m:
                    nbytes = update_bytes * len(values)
                    self.network.send(m, master, "update", nbytes)
                    step.update_bytes[m] += nbytes
                for value in values:
                    buffer.add(v, value)
        changed, applied = buffer.apply(slot, state)
        record.steps = [step]
        self._count_sync(changed, sync_bytes, record)
        self.counters.add_iteration(record)
        self._obs_commit(record)
        self.counters.add_edges(int(step.high_edges.sum()))
        self.counters.add_vertices(int(step.high_vertices.sum()))
        return PullResult(changed, applied, int(step.high_edges.sum()))

    # -- protocol helpers -------------------------------------------------------

    @staticmethod
    def _as_indices(vertices: Union[np.ndarray, Sequence[int]]) -> np.ndarray:
        arr = np.asarray(vertices)
        if arr.dtype == bool:
            return np.flatnonzero(arr)
        return np.sort(arr.astype(np.int64))

    def _count_sync(
        self, changed: np.ndarray, sync_bytes: int, record: IterationRecord
    ) -> None:
        """Broadcast changed master state to replica holders.

        Every machine holding edges of a changed vertex needs the new
        flag value before the next phase (e.g. the "visited" filter in
        bottom-up BFS).  Counted per (vertex, holder) pair.
        """
        if changed.size == 0 or sync_bytes == 0 or self.num_machines == 1:
            return
        holders = self.partition._has_in[:, changed].copy()
        if self.sync_scope == "both":
            holders |= self.partition._has_out[:, changed]
        masters = self.partition.master_of[changed]
        holders[masters, np.arange(changed.size)] = False
        per_pair = holders.sum(axis=1)  # entries per receiving machine
        total = 0
        for m in range(self.num_machines):
            count = int(per_pair[m])
            if count == 0:
                continue
            # sender is each vertex's master; aggregate by receiver and
            # charge each master->receiver pair.
            send_masters, counts = np.unique(
                masters[holders[m]], return_counts=True
            )
            for src, cnt in zip(send_masters, counts):
                nbytes = int(cnt) * sync_bytes
                self.network.send(int(src), m, "sync", nbytes)
                total += nbytes
        record.sync_bytes += total

    def sync_state(self, vertices: np.ndarray, sync_bytes: int = 4) -> None:
        """Explicitly broadcast changed master state to replica holders.

        For algorithm steps that mutate vertex state outside a slot
        (e.g. MIS finalization marking new members inactive).  Bytes
        attach to the most recent iteration record.
        """
        vertices = self._as_indices(vertices)
        if vertices.size == 0:
            return
        if not self.counters.iterations:
            record = IterationRecord(mode="pull")
            record.steps = [StepRecord(self.num_machines)]
            self.counters.add_iteration(record)
            if self.obs is not None:
                self.obs.implicit_record(self.num_machines)
        target = self.counters.iterations[-1]
        before = target.sync_bytes
        self._count_sync(vertices, sync_bytes, target)
        if self.obs is not None and target.sync_bytes != before:
            # the delta mutates an already-committed record; the trace
            # carries it so reconstruction stays exact
            self.obs.sync_update(
                len(self.counters.iterations) - 1,
                target.sync_bytes - before,
            )

    def _active_candidates(
        self, active_idx: np.ndarray, machine: int
    ) -> np.ndarray:
        """Active vertices with local in-edges on ``machine``."""
        degs = self.partition.local_in(machine).degrees()
        return active_idx[degs[active_idx] > 0]

    # -- results --------------------------------------------------------------

    def execution_time(self, cost_model: Optional[CostModel] = None) -> float:
        """Simulated execution time of everything run so far."""
        model = cost_model or self.default_cost
        return model.execution_time(self.counters, self.cost_kind)

    def reset_metrics(self) -> None:
        """Clear counters and traffic (state/partition untouched)."""
        self.counters = Counters(self.num_machines)
        self.network = SimulatedNetwork(self.num_machines, self.counters)
        if self._fault_controller is not None:
            self._fault_controller.bind(self)

    def _check_active(self, active: np.ndarray) -> np.ndarray:
        arr = np.asarray(active)
        if arr.dtype != bool or arr.shape != (self.graph.num_vertices,):
            raise EngineError(
                "active must be a boolean mask over all vertices"
            )
        return np.flatnonzero(arr)
