"""Asynchronous priority-driven execution: the bucket scheduler.

The BSP engines run every active vertex in lock-step supersteps.  This
module adds the ASYMP-style alternative: a *priority bucket scheduler*
that drains vertices in priority order (BFS depth, tentative SSSP
distance, CC label, PageRank residual mass) and only activates the
vertices whose priority falls inside the current bucket.  Each
*activation wave* is one engine pull/push phase — so every wave is one
:class:`~repro.runtime.counters.IterationRecord`, the cost model
charges per wave, the executor's deterministic ascending-machine merge
makes each wave bit-identical across serial/thread/process backends,
and the SympleGraph engine rebuilds its circulant dependency bitmaps
per pull — i.e. dependency notifications are evaluated *at activation
time against the freshest remote state*, per bucket rather than per
superstep, which is exactly the paper's loop-carried guarantee carried
over to a non-BSP schedule.

Determinism contract: the schedule is a pure function of (graph, seed,
bucket width).  The seed jitters the bucket *boundary offset* (the
classic randomized delta-stepping trick), so different seeds genuinely
produce different schedules, yet a fixed seed + fixed width gives
bit-identical results across executor backends.  For the monotone
algorithms (BFS, SSSP with non-negative weights, CC) every schedule
converges to the same unique fixpoint, so async results digest equal
to sync; PageRank converges epsilon-bounded (see ``docs/API.md``).

``dgalois`` is excluded: its Gluon-style reduce/broadcast only
synchronizes replicas at phase granularity over a vertex cut, which
has no per-bucket activation story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.algorithms.bfs import BFSResult, bottom_up_signal
from repro.algorithms.cc import CCResult, _min_slot, cc_signal
from repro.algorithms.pagerank import PageRankResult
from repro.algorithms.sssp import (
    SSSPResult,
    _relax_slot,
    _weight_lookup,
    sssp_signal,
)
from repro.engine.base import BaseEngine
from repro.engine.state import StateStore
from repro.errors import ConvergenceError, EngineError, GraphError
from repro.fault.program import VertexProgram

__all__ = [
    "ASYNC_ENGINES",
    "AsyncBFSProgram",
    "AsyncBFSResult",
    "AsyncCCResult",
    "AsyncPageRankResult",
    "AsyncSSSPResult",
    "async_cc",
    "async_pagerank",
    "async_sssp",
    "default_bucket_width",
]

#: engine kinds whose phase protocol supports per-bucket activation
ASYNC_ENGINES = ("symple", "gemini", "single")


def _require_async(engine: BaseEngine) -> None:
    if not getattr(engine, "supports_async", False):
        raise EngineError(
            f"the {engine.kind!r} engine does not support mode='async'; "
            f"bucket scheduling runs on {ASYNC_ENGINES}"
        )


def default_bucket_width(algorithm: str, graph) -> float:
    """The bucket width a ``RunConfig(async_bucket_width=None)`` run uses.

    Deterministic functions of the graph alone, so the default stays
    inside the fixed-(seed, width) reproducibility contract:

    * ``bfs`` — 1 depth level per bucket;
    * ``sssp`` — 4x the mean edge weight (the delta-stepping
      rule of thumb), or 1.0 on an edgeless graph;
    * ``cc`` — one eighth of the label space per bucket;
    * ``pagerank`` — threshold halves per bucket (width 1.0 means
      a decay factor of ``2**-1``).
    """
    if algorithm == "sssp":
        if graph.num_edges == 0:
            return 1.0
        mean = float(graph.in_weights.mean())
        return 4.0 * mean if mean > 0 else 1.0
    if algorithm == "cc":
        return float(max(1, graph.num_vertices // 8))
    return 1.0


def _resolve_width(algorithm: str, graph, width: Optional[float]) -> float:
    if width is None:
        return default_bucket_width(algorithm, graph)
    width = float(width)
    if not width > 0:
        raise EngineError(
            f"async_bucket_width must be > 0, got {width}"
        )
    return width


def _out_candidates(graph, frontier_idx: np.ndarray, n: int) -> np.ndarray:
    """Boolean mask of out-neighbors of the frontier."""
    candidates = np.zeros(n, dtype=bool)
    for u in frontier_idx:
        candidates[graph.out_neighbors(int(u))] = True
    return candidates


def _bucket_begin(engine, bucket: int, lo: float, hi: float,
                  size: int) -> None:
    if engine.obs is not None:
        engine.obs.bucket_begin(bucket, float(lo), float(hi), int(size))


def _bucket_end(engine, bucket: int, waves: int, activations: int) -> None:
    if engine.obs is not None:
        engine.obs.bucket_end(bucket, int(waves), int(activations))


# -- async BFS ---------------------------------------------------------------


@dataclass
class AsyncBFSResult(BFSResult):
    """BFS output plus the bucket scheduler's activation stats."""

    buckets: int = 0
    waves: int = 0
    activations: int = 0


def _async_visit_slot(v, parent, s):
    """Master-side visit under the async schedule: first update wins.

    Unlike the BSP slot there is no global ``level`` scalar — the depth
    is derived from the discovered parent, which the frontier invariant
    (every wave's frontier is a single depth) keeps exact.
    """
    if s.visited[v]:
        return False
    s.visited[v] = True
    s.parent[v] = parent
    s.depth[v] = s.depth[parent] + 1
    return True


class AsyncBFSProgram(VertexProgram):
    """Bucketed BFS: drain pending vertices in depth order.

    Expressed as a :class:`VertexProgram` whose :meth:`step` is one
    *bucket epoch* (drain the minimum-depth bucket completely), so the
    recoverable driver checkpoints exactly at bucket-epoch boundaries —
    the non-BSP schedule the fault subsystem is exercised under.

    A bucket of integer width ``W`` covers depths ``[lo, lo + W)``; the
    seeded offset shifts every boundary by the same amount so the
    partition of depths into buckets depends on the seed.  Within a
    bucket, waves proceed one depth at a time (a discovered vertex at
    depth ``d+1 < hi`` activates in the next wave of the *same* epoch),
    which keeps depths exact for any width and makes the visited/depth
    fixpoint equal to the synchronous run's.
    """

    name = "async-bfs"

    def __init__(self, root: int, width: Optional[float] = None,
                 seed: int = 0) -> None:
        self.root = int(root)
        self.width = width
        self.seed = int(seed)
        self._has_in: Optional[np.ndarray] = None

    def setup(self, engine: BaseEngine, ctx: Dict[str, Any]) -> StateStore:
        _require_async(engine)
        graph = engine.graph
        width = int(_resolve_width("bfs", graph, self.width))
        width = max(1, width)
        rng = np.random.default_rng(self.seed)
        ctx["width"] = width
        ctx["offset"] = int(rng.integers(0, width)) if width > 1 else 0
        ctx["buckets"] = 0
        ctx["waves"] = 0
        ctx["activations"] = 0
        self._has_in = graph.in_degrees() > 0

        s = engine.new_state()
        s.add_array("visited", bool, False)
        s.add_array("expanded", bool, False)
        s.add_array("frontier", bool, False)
        s.add_array("parent", np.int64, -1)
        s.add_array("depth", np.int64, -1)
        s.visited[self.root] = True
        s.parent[self.root] = self.root
        s.depth[self.root] = 0
        engine.sync_state(np.asarray([self.root]), sync_bytes=4)
        return s

    def step(self, engine: BaseEngine, s: StateStore,
             ctx: Dict[str, Any]) -> bool:
        pending = s.visited & ~s.expanded
        if not pending.any():
            return False
        graph = engine.graph
        n = graph.num_vertices
        width, offset = ctx["width"], ctx["offset"]
        bucket = (int(s.depth[pending].min()) + offset) // width
        lo = bucket * width - offset
        hi = lo + width
        _bucket_begin(engine, ctx["buckets"], lo, hi, int(pending.sum()))
        waves = 0
        activations = 0
        while True:
            frontier_idx = np.flatnonzero(pending & (s.depth < hi))
            if frontier_idx.size == 0:
                break
            s.frontier[:] = False
            s.frontier[frontier_idx] = True
            s.expanded[frontier_idx] = True
            waves += 1
            activations += int(frontier_idx.size)
            candidates = _out_candidates(graph, frontier_idx, n)
            candidates &= ~s.visited
            candidates &= self._has_in
            if candidates.any():
                engine.pull(
                    bottom_up_signal,
                    _async_visit_slot,
                    s,
                    candidates,
                    update_bytes=8,
                    sync_bytes=4,
                )
            pending = s.visited & ~s.expanded
        _bucket_end(engine, ctx["buckets"], waves, activations)
        ctx["buckets"] += 1
        ctx["waves"] += waves
        ctx["activations"] += activations
        return True

    def result(self, engine: BaseEngine, s: StateStore,
               ctx: Dict[str, Any]) -> AsyncBFSResult:
        return AsyncBFSResult(
            parent=s.parent.copy(),
            depth=s.depth.copy(),
            visited=s.visited.copy(),
            iterations=ctx["waves"],
            directions=["async"] * ctx["waves"],
            buckets=ctx["buckets"],
            waves=ctx["waves"],
            activations=ctx["activations"],
        )


# -- async SSSP (delta-stepping) --------------------------------------------


@dataclass
class AsyncSSSPResult(SSSPResult):
    """SSSP output plus the bucket scheduler's activation stats."""

    buckets: int = 0
    waves: int = 0
    activations: int = 0


def async_sssp(
    engine: BaseEngine,
    source: int,
    width: Optional[float] = None,
    seed: int = 0,
) -> AsyncSSSPResult:
    """Delta-stepping from ``source``: drain distance buckets in order.

    Buckets cover ``[k*W - offset, (k+1)*W - offset)`` with a seeded
    uniform offset in ``[0, W)``.  Non-negative weights make the drain
    monotone — once a bucket empties, no later relaxation can produce a
    distance below its upper edge — so the converged distances are the
    unique Bellman-Ford fixpoint regardless of seed or width, and
    digest bit-identically to the synchronous run.
    """
    _require_async(engine)
    graph = engine.graph
    if not graph.is_weighted:
        raise GraphError("SSSP needs a weighted graph")
    if graph.num_edges and graph.in_weights.min() < 0:
        raise GraphError("SSSP requires non-negative edge weights")
    n = graph.num_vertices
    width = _resolve_width("sssp", graph, width)
    rng = np.random.default_rng(seed)
    offset = float(rng.uniform(0.0, width))

    s = engine.new_state()
    s.set("dist", np.full(n, np.inf))
    s.dist[source] = 0.0
    s.set("wview", _weight_lookup(graph))
    active = graph.in_degrees() > 0
    pending = np.zeros(n, dtype=bool)
    pending[source] = True
    engine.sync_state(np.asarray([source]), sync_bytes=8)

    limit = 64 + 8 * (n + graph.num_edges)
    buckets = waves = activations = 0
    while pending.any():
        dmin = float(s.dist[pending].min())
        b = math.floor((dmin + offset) / width)
        hi = (b + 1) * width - offset
        while hi <= dmin:  # float edge: dmin landed on a boundary
            b += 1
            hi = (b + 1) * width - offset
        _bucket_begin(engine, buckets, hi - width, hi, int(pending.sum()))
        bucket_waves = bucket_activations = 0
        while True:
            frontier_idx = np.flatnonzero(pending & (s.dist < hi))
            if frontier_idx.size == 0:
                break
            if waves + bucket_waves >= limit:
                raise ConvergenceError(
                    "async SSSP exceeded its wave budget"
                )
            pending[frontier_idx] = False
            bucket_waves += 1
            bucket_activations += int(frontier_idx.size)
            candidates = _out_candidates(graph, frontier_idx, n)
            candidates &= active
            if candidates.any():
                result = engine.pull(
                    sssp_signal,
                    _relax_slot,
                    s,
                    candidates,
                    update_bytes=12,
                    sync_bytes=8,
                )
                if result.any_changed:
                    pending[result.changed] = True
        _bucket_end(engine, buckets, bucket_waves, bucket_activations)
        buckets += 1
        waves += bucket_waves
        activations += bucket_activations

    return AsyncSSSPResult(
        dist=s.dist.copy(),
        iterations=waves,
        buckets=buckets,
        waves=waves,
        activations=activations,
    )


# -- async CC ----------------------------------------------------------------


@dataclass
class AsyncCCResult(CCResult):
    """CC output plus the bucket scheduler's activation stats."""

    buckets: int = 0
    waves: int = 0
    activations: int = 0


def async_cc(
    engine: BaseEngine,
    width: Optional[float] = None,
    seed: int = 0,
) -> AsyncCCResult:
    """Label propagation draining label buckets smallest-first.

    The priority is the vertex's current label: small labels propagate
    first, which front-loads the labels that win anyway.  Monotone —
    every label a drained bucket can ever produce is at least the
    bucket's lower edge, so drained buckets stay drained and the
    converged labels are the unique least fixpoint (equal to the
    synchronous run's for every seed and width).
    """
    _require_async(engine)
    graph = engine.graph
    n = graph.num_vertices
    width = max(1, int(_resolve_width("cc", graph, width)))
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, width)) if width > 1 else 0

    s = engine.new_state()
    s.set("label", np.arange(n, dtype=np.int64))
    active = graph.in_degrees() > 0
    pending = np.ones(n, dtype=bool)

    limit = 64 + 8 * (n + graph.num_edges)
    buckets = waves = activations = 0
    while pending.any():
        lmin = int(s.label[pending].min())
        b = (lmin + offset) // width
        lo = b * width - offset
        hi = lo + width
        _bucket_begin(engine, buckets, lo, hi, int(pending.sum()))
        bucket_waves = bucket_activations = 0
        while True:
            frontier_idx = np.flatnonzero(pending & (s.label < hi))
            if frontier_idx.size == 0:
                break
            if waves + bucket_waves >= limit:
                raise ConvergenceError(
                    "async CC exceeded its wave budget"
                )
            pending[frontier_idx] = False
            bucket_waves += 1
            bucket_activations += int(frontier_idx.size)
            candidates = _out_candidates(graph, frontier_idx, n)
            candidates &= active
            if candidates.any():
                result = engine.pull(
                    cc_signal,
                    _min_slot,
                    s,
                    candidates,
                    update_bytes=8,
                    sync_bytes=8,
                )
                if result.any_changed:
                    pending[result.changed] = True
        _bucket_end(engine, buckets, bucket_waves, bucket_activations)
        buckets += 1
        waves += bucket_waves
        activations += bucket_activations

    return AsyncCCResult(
        label=s.label.copy(),
        iterations=waves,
        buckets=buckets,
        waves=waves,
        activations=activations,
    )


# -- async PageRank (residual push) -----------------------------------------


@dataclass
class AsyncPageRankResult(PageRankResult):
    """PageRank output plus the bucket scheduler's activation stats.

    ``residual`` is the total probability mass still unprocessed at
    termination and ``mass`` the processed mass the ranks were
    normalized by; :attr:`epsilon` bounds ``|rank - pr*|_1``.
    """

    buckets: int = 0
    waves: int = 0
    activations: int = 0
    mass: float = 1.0
    damping: float = 0.85

    @property
    def epsilon(self) -> float:
        """Documented L1 error bound against the exact fixpoint.

        The unprocessed residual ``R`` still owes the unnormalized
        limit at most ``R / (1-d)`` mass, and renormalization can at
        most double the relative effect — hence
        ``2R / ((1-d) * mass)``.
        """
        return (
            2.0 * self.residual / ((1.0 - self.damping) * self.mass)
        )


def _pr_push_signal(u, v, s):
    """Push u's processed residual share to out-neighbor v."""
    return s.push_value[u]


def _pr_accumulate_slot(v, value, s):
    s.residual[v] += value
    return True


def async_pagerank(
    engine: BaseEngine,
    damping: float = 0.85,
    width: Optional[float] = None,
    seed: int = 0,
    stop_mass: float = 1e-8,
    max_waves: int = 100_000,
) -> AsyncPageRankResult:
    """Residual-driven (delta) PageRank draining top priority bands.

    Every vertex starts with residual ``(1-d)/n``.  Each *bucket*
    covers the top band of the current residual distribution: with the
    current maximum ``rmax``, the seeded jitter picks a threshold in
    ``[rmax * 2**-width, rmax)`` and the bucket drains every vertex at
    or above it — their residual moves into their rank and
    ``d/outdeg``-th of it pushes to each out-neighbor's residual.
    Re-tracking the maximum per bucket is what makes this genuine
    priority scheduling: every activation moves near-maximal mass, so
    on skewed graphs hubs are processed many times and the tail a
    handful — the activation savings over the power iteration.

    Mass processed at a dangling vertex simply exits; because uniform
    dangling redistribution is parallel to the uniform teleport vector,
    the fixpoint direction is unchanged and a final renormalization
    (``rank /= rank.sum()``) recovers the standard PageRank exactly —
    without the per-wave all-vertex residual re-seeding that uniform
    redistribution would cost the scheduler.  The run stops once the
    unprocessed mass falls below ``stop_mass``, leaving the ranks
    within :attr:`AsyncPageRankResult.epsilon` of the exact fixpoint
    in L1.
    """
    _require_async(engine)
    graph = engine.graph
    n = graph.num_vertices
    if n == 0:
        return AsyncPageRankResult(np.empty(0), 0, 0.0)
    width = _resolve_width("pagerank", graph, width)
    decay = 2.0 ** (-width)
    rng = np.random.default_rng(seed)

    safe_deg = np.maximum(graph.out_degrees(), 1).astype(np.float64)

    s = engine.new_state()
    s.add_array("rank", np.float64, 0.0)
    s.set("residual", np.full(n, (1.0 - damping) / n))
    s.add_array("push_value", np.float64, 0.0)

    buckets = waves = activations = 0
    while float(s.residual.sum()) > stop_mass:
        rmax = float(s.residual.max())
        theta = rmax * float(decay ** rng.uniform(0.0, 1.0))
        if theta >= rmax:  # float edge: jitter landed on the top
            theta = rmax * decay
        sel = s.residual >= theta
        _bucket_begin(engine, buckets, theta, rmax, int(sel.sum()))
        bucket_waves = bucket_activations = 0
        while sel.any():
            if waves + bucket_waves >= max_waves:
                raise ConvergenceError(
                    "async PageRank exceeded its wave budget"
                )
            s.rank[sel] += s.residual[sel]
            s.push_value[:] = 0.0
            s.push_value[sel] = damping * s.residual[sel] / safe_deg[sel]
            s.residual[sel] = 0.0
            bucket_waves += 1
            bucket_activations += int(sel.sum())
            engine.push(
                _pr_push_signal,
                _pr_accumulate_slot,
                s,
                sel,
                update_bytes=12,
                sync_bytes=8,
            )
            sel = s.residual >= theta
        _bucket_end(engine, buckets, bucket_waves, bucket_activations)
        buckets += 1
        waves += bucket_waves
        activations += bucket_activations

    mass = float(s.rank.sum())
    rank = s.rank.copy()
    if mass > 0:
        rank /= mass
    return AsyncPageRankResult(
        rank=rank,
        iterations=waves,
        residual=float(s.residual.sum()),
        buckets=buckets,
        waves=waves,
        activations=activations,
        mass=mass,
        damping=damping,
    )
