"""SympleGraph engine: circulant scheduling + dependency propagation.

The paper's core runtime (Section 5).  A dense pull iteration is split
into ``p`` steps.  In step ``s`` machine ``m`` processes the in-edges it
stores whose destination masters live on machine ``(m + s + 1) % p`` —
the subgraph ``[m, (m+s+1)%p]`` in Figure 7's matrix view.  Every
destination partition is therefore scanned by exactly one machine per
step, and across steps its in-edges are processed *sequentially* in a
fixed machine order, finishing on the master's own machine.

At each step boundary a machine sends the dependency state of the
partition it just processed to the machine on its left (the one that
will process that partition next): the control bitmap plus any carried
data (K-core's running count, sampling's prefix sum).  A vertex whose
bit is set is skipped outright by all following machines — eliminating
the redundant computation and update communication that Gemini incurs.

Optimizations (Sections 5.2-5.3), all individually toggleable for the
Figure 11 ablation:

* ``differentiated``: only vertices with in-degree >= threshold take
  part in dependency propagation; low-degree vertices fall back to the
  Gemini schedule (their savings wouldn't pay for the messages).
* ``double_buffering``: each step's dependency ships in two halves so
  transfer overlaps compute — a timing-model effect (bytes unchanged).
* ``schedule="naive"``: enforce sequentiality without circulant
  scheduling (one machine active at a time) — the strawman circulant
  scheduling exists to beat.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.engine.base import (
    BaseEngine,
    CountingNeighbors,
    PullResult,
    SignalLike,
    _UpdateBuffer,
)
from repro.engine.dep import DepStore
from repro.engine.state import StateStore
from repro.exec import work
from repro.errors import EngineError
from repro.partition.base import Partition
from repro.runtime.bitmap import Bitmap
from repro.runtime.cost_model import SYMPLE_COST, CostModel
from repro.runtime.counters import IterationRecord, StepRecord

__all__ = ["SympleGraphEngine", "SympleOptions", "circulant_partition", "circulant_machine_order"]

# The paper selects its production threshold (32) by sweeping powers
# of two on 1-4 billion-edge graphs (Section 6).  At this repo's ~1000x
# smaller graphs the same sweep (benchmarks/bench_ablation_threshold)
# selects a proportionally smaller value.
DEFAULT_DEGREE_THRESHOLD = 4


@dataclass
class SympleOptions:
    """Feature switches for the SympleGraph runtime.

    ``use_kernels`` enables the batched NumPy fast path
    (:mod:`repro.kernels`) for UDFs the analyzer classified into a
    vectorizable shape; results, counters, and traffic are bit-identical
    either way, so this is purely a wall-clock switch (and the escape
    hatch if a kernel is ever suspected of disagreeing).

    ``trace`` streams a structured JSONL event trace of every phase,
    circulant step, dependency hand-off, and kernel batch to the given
    path (see :mod:`repro.obs`); ``None`` — the default — disables
    tracing entirely, with no instrumentation overhead.

    Dependency-loss injection (the old ``dep_loss_rate``/
    ``dep_loss_seed`` knobs) lives in the fault subsystem: build
    ``FaultPlan.dep_loss(rate, seed)`` and attach it with
    :meth:`BaseEngine.attach_faults` or ``RunConfig(faults=...)``; the
    plan's single seeded generator drives every fault draw.
    """

    degree_threshold: int = DEFAULT_DEGREE_THRESHOLD
    differentiated: bool = True
    double_buffering: bool = True
    schedule: str = "circulant"
    use_kernels: bool = True
    trace: Optional[str] = None
    # removed in this release (deprecated since the fault subsystem
    # landed); InitVars so passing them raises a pointed error instead
    # of a bare TypeError
    dep_loss_rate: InitVar[Optional[float]] = None
    dep_loss_seed: InitVar[Optional[int]] = None

    def __post_init__(self, dep_loss_rate=None, dep_loss_seed=None) -> None:
        if dep_loss_rate is not None or dep_loss_seed is not None:
            raise EngineError(
                "SympleOptions.dep_loss_rate/dep_loss_seed were removed; "
                "build FaultPlan.dep_loss(rate, seed) and attach it via "
                "engine.attach_faults(FaultController(plan, num_machines)) "
                "or RunConfig(faults=plan)"
            )
        if self.schedule not in ("circulant", "naive"):
            raise EngineError(f"unknown schedule {self.schedule!r}")
        if self.degree_threshold < 0:
            raise EngineError("degree_threshold must be non-negative")


def circulant_partition(machine: int, step: int, num_machines: int) -> int:
    """Destination partition machine ``machine`` processes at ``step``."""
    return (machine + step + 1) % num_machines


def circulant_machine_order(partition_id: int, num_machines: int) -> List[int]:
    """Machines that process ``partition_id``'s in-edges, in step order.

    The sequence ends with the partition's own (master) machine, so the
    final dependency state lands where the masters live.
    """
    return [
        (partition_id - 1 - s) % num_machines for s in range(num_machines)
    ]


class SympleGraphEngine(BaseEngine):
    """Distributed engine with precise loop-carried dependency."""

    kind = "symple"
    cost_kind = "symple"
    supports_dependency = True
    supports_async = True

    def __init__(
        self,
        partition: Partition,
        options: Optional[SympleOptions] = None,
        cost_model: CostModel = SYMPLE_COST,
        obs=None,
        executor=None,
        verify: str = "off",
    ) -> None:
        self.options = options or SympleOptions()
        super().__init__(
            partition, cost_model, use_kernels=self.options.use_kernels,
            obs=obs, executor=executor, verify=verify,
        )
        if self.obs is None and self.options.trace is not None:
            self.attach_observer(self.options.trace)
        if self.options.differentiated:
            self._high_mask = (
                partition.graph.in_degrees() >= self.options.degree_threshold
            )
        else:
            self._high_mask = np.ones(partition.graph.num_vertices, dtype=bool)

    # -- pull ---------------------------------------------------------------

    def pull(
        self,
        signal: SignalLike,
        slot: Callable,
        state: StateStore,
        active: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
        dep_data_bytes: int = 4,
        allow_differentiated: bool = True,
        share_dep_data: bool = True,
    ) -> PullResult:
        """Dense pull: circulant scheduling with dependency propagation
        when the signal carries one, Gemini-style parallel otherwise."""
        active_idx = self._check_active(active)
        analyzed = self.ensure_analyzed(signal)
        if not analyzed.has_dependency or self.num_machines == 1:
            # No loop-carried dependency: Gemini is the special case of
            # SympleGraph without dependency communication (Section 5.1).
            return self._pull_parallel(
                analyzed, slot, state, active_idx, update_bytes, sync_bytes
            )
        return self._pull_circulant(
            analyzed,
            slot,
            state,
            active_idx,
            update_bytes,
            sync_bytes,
            dep_data_bytes,
            allow_differentiated,
            share_dep_data,
        )

    def _pull_circulant(
        self,
        analyzed,
        slot: Callable,
        state: StateStore,
        active_idx: np.ndarray,
        update_bytes: int,
        sync_bytes: int,
        dep_data_bytes: int,
        allow_differentiated: bool,
        share_dep_data: bool,
    ) -> PullResult:
        p = self.num_machines
        phase = self._phase_begin("pull")
        master_of = self.partition.master_of
        dep_store = DepStore(
            self.graph.num_vertices,
            analyzed.info.carried_vars,
            share_data=share_dep_data,
        )
        has_data = bool(analyzed.info.carried_vars) and share_dep_data
        instrumented = analyzed.instrumented
        original = analyzed.original
        if allow_differentiated:
            high_mask = self._high_mask
        else:
            high_mask = np.ones(self.graph.num_vertices, dtype=bool)

        # Dependency-loss draws come from the attached FaultController's
        # single plan-seeded stream.  When active, the draw order is a
        # per-vertex observable, so the phase stays on the in-engine
        # serial path regardless of the executor backend (see below).
        controller = self._fault_controller
        if controller is not None and controller.dep_loss_rate > 0.0:
            dep_lost = controller.dep_lost
        else:
            dep_lost = None

        plan = self._kernel_plan(analyzed, state)
        if (
            plan is not None
            and controller is not None
            and controller.dep_loss_rate > 0.0
            and controller.delivery_faults_active
        ):
            # Dep-loss draws and delivery-fault draws come from the
            # plan's single generator, interleaved per vertex by the
            # interpreter; batching would reorder them, so a combined
            # schedule keeps the per-vertex path.
            plan = None

        # Loop-invariant hoisting: local degree arrays, the
        # per-partition candidate split, and each partition's
        # circulated-vertex count are step-independent — computed once
        # per pull (O(p * |active|)) instead of once per
        # (step, machine) pair (O(p^2 * |active|)).
        machine_degs = [
            self.partition.local_in(m).degrees() for m in range(p)
        ]
        by_master = [active_idx[master_of[active_idx] == j] for j in range(p)]
        part_high_size = [
            int(np.count_nonzero(high_mask[part])) for part in by_master
        ]
        dep_payload_bytes = (
            dep_data_bytes * len(analyzed.info.carried_vars)
            if has_data
            else 0
        )

        record = IterationRecord(mode="pull")
        buffer = _UpdateBuffer()
        steps: List[StepRecord] = []
        total_edges = 0
        # Dependency-loss draws interleave per vertex with the plan's
        # single generator, so only a draw-free phase may fan its
        # per-machine batches out to the executor; a faulted phase runs
        # the in-engine serial loop below (which the serial backend
        # matches bit for bit anyway).
        route = dep_lost is None

        for s in range(p):
            if s > 0 and controller is not None:
                # A mid-step crash severs the dependency circulation:
                # the whole phase aborts and recovery restarts it from
                # the step-0 boundary with blanked bitmaps (Section 5.1
                # guarantees correctness under incomplete information).
                controller.check_crash(phase, s)
            step = self._make_step(phase)
            if self.obs is not None:
                self.obs.step_begin(s)
            is_last = s == p - 1
            if route:
                # one (machine -> destination partition) batch per task
                batches = []
                for m in range(p):
                    j = circulant_partition(m, s, p)
                    part = by_master[j]
                    batches.append((m, j, part[machine_degs[m][part] > 0]))
                if plan is not None:
                    self._circulant_kernel_step(
                        plan, analyzed, state, batches, high_mask,
                        dep_store, has_data, update_bytes, step, buffer,
                        s, part_high_size, dep_payload_bytes,
                    )
                else:
                    self._circulant_interp_step(
                        analyzed, state, batches, high_mask, dep_store,
                        share_dep_data, is_last, update_bytes, step,
                        buffer, s, part_high_size, dep_payload_bytes,
                    )
                steps.append(step)
                total_edges += step.total_edges()
                if self.obs is not None:
                    self.obs.step_end(s, step)
                continue
            for m in range(p):
                j = circulant_partition(m, s, p)
                local = self.partition.local_in(m)
                part = by_master[j]
                cand = part[machine_degs[m][part] > 0]
                if plan is not None:
                    self._circulant_kernel_batch(
                        plan,
                        state,
                        local,
                        cand,
                        high_mask,
                        dep_store,
                        has_data,
                        dep_lost,
                        m,
                        j,
                        update_bytes,
                        step,
                        buffer,
                    )
                    self._circulant_handoff(
                        s, m, part_high_size[j], dep_payload_bytes, step
                    )
                    continue
                for v in cand:
                    v = int(v)
                    emitted: list = []
                    if high_mask[v]:
                        handle = dep_store.handle(v, is_last=is_last)
                        if dep_store.skip[v]:
                            # Failure injection: with probability
                            # dep_loss_rate this machine started before
                            # the control bit arrived and processes the
                            # vertex blind — losing savings, never
                            # correctness.  Only control-only UDFs are
                            # eligible (a lost *data* dependency is not
                            # an incomplete-information case).
                            lost = (
                                dep_lost is not None
                                and not has_data
                                and dep_lost()
                            )
                            if not lost:
                                continue
                            handle = dep_store.blind_handle(
                                v, is_last=is_last
                            )
                        nbrs = CountingNeighbors(local.neighbors(v))
                        instrumented(
                            v,
                            nbrs,
                            state,
                            emitted.append,
                            handle,
                        )
                        step.high_edges[m] += nbrs.count
                        step.high_vertices[m] += 1
                    else:
                        nbrs = CountingNeighbors(local.neighbors(v))
                        original(v, nbrs, state, emitted.append)
                        step.low_edges[m] += nbrs.count
                        step.low_vertices[m] += 1
                    if not emitted:
                        continue
                    master = int(master_of[v])
                    if master != m:
                        nbytes = update_bytes * len(emitted)
                        self.network.send(m, master, "update", nbytes)
                        step.update_bytes[m] += nbytes
                    for value in emitted:
                        buffer.add(v, value)

                self._circulant_handoff(
                    s, m, part_high_size[j], dep_payload_bytes, step
                )
            steps.append(step)
            total_edges += step.total_edges()
            if self.obs is not None:
                self.obs.step_end(s, step)

        changed, applied = buffer.apply(slot, state)
        record.steps = steps
        self._count_sync(changed, sync_bytes, record)
        self.counters.add_iteration(record)
        if self.obs is not None:
            self.obs.phase_end(record)
        self.counters.add_edges(total_edges)
        self.counters.add_vertices(
            int(
                sum(
                    st.high_vertices.sum() + st.low_vertices.sum()
                    for st in steps
                )
            )
        )
        return PullResult(changed, applied, total_edges)

    def _circulant_handoff(
        self,
        s: int,
        m: int,
        part_high: int,
        dep_payload_bytes: int,
        step: StepRecord,
    ) -> None:
        """Dependency hand-off to the machine on the left (skipped
        after the final step: the master now holds the complete state
        locally).

        Control bits travel as a packed bitmap; carried data travels as
        the SoA array slice for every circulated vertex (Section 6's
        layout) — this is why sampling's dependency traffic is large
        while BFS/MIS pay one bit per vertex.
        """
        if s >= self.num_machines - 1 or part_high == 0:
            return
        nbytes = Bitmap.wire_bytes(part_high) + part_high * dep_payload_bytes
        left = (m - 1) % self.num_machines
        self.network.send(m, left, "dep", nbytes)
        step.dep_bytes[m] += nbytes
        if self.obs is not None:
            self.obs.dep_transfer(m, left, nbytes)

    def _circulant_kernel_batch(
        self,
        plan,
        state: StateStore,
        local,
        cand: np.ndarray,
        high_mask: np.ndarray,
        dep_store: DepStore,
        has_data: bool,
        dep_lost,
        m: int,
        j: int,
        update_bytes: int,
        step: StepRecord,
        buffer: _UpdateBuffer,
    ) -> None:
        """One (step, machine) circulant batch on the kernel fast path.

        Replays the interpreter exactly: skip-bit filtering (with
        per-vertex dependency-loss draws in ascending vertex order),
        restored carried data for the high-degree batch, dep-store
        write-back of break bits and final carried values, separate
        high/low metering, and emissions merged back into ascending
        vertex order before buffering/sending.
        """
        spec, kernel = plan
        high_sel = high_mask[cand]
        high = cand[high_sel]
        low = cand[~high_sel]

        run_mask = ~dep_store.skip[high]
        blind = np.zeros(high.size, dtype=bool)
        if dep_lost is not None and not has_data:
            # One draw per skipped vertex, ascending — the same
            # sequence of generator calls the interpreter makes.
            for i in np.flatnonzero(~run_mask):
                if dep_lost():
                    blind[i] = True
            run_mask |= blind
        run = high[run_mask]
        blind_run = blind[run_mask]

        carried_name = spec.carried_vars[0] if spec.carried_vars else None
        carried_in = None
        if has_data and carried_name is not None:
            present = dep_store.present[carried_name][run] & ~blind_run
            carried_in = (present, dep_store.data[carried_name][run])
        batch = self._run_kernel(
            m, kernel, spec, state, local, run, carried_in=carried_in
        )
        step.high_edges[m] += int(batch.edges.sum())
        step.high_vertices[m] += int(run.size)
        if batch.broke is not None:
            dep_store.skip[run[batch.broke]] = True
        if has_data and carried_name is not None and run.size:
            dep_store.data[carried_name][run] = batch.carried
            dep_store.present[carried_name][run] = True

        low_batch = self._run_kernel(m, kernel, spec, state, local, low)
        step.low_edges[m] += int(low_batch.edges.sum())
        step.low_vertices[m] += int(low.size)

        emit_v = np.concatenate(
            [run[batch.emit_mask], low[low_batch.emit_mask]]
        )
        if emit_v.size == 0:
            return
        emit_vals = np.concatenate(
            [
                batch.values[batch.emit_mask],
                low_batch.values[low_batch.emit_mask],
            ]
        )
        order = np.argsort(emit_v)
        emit_v = emit_v[order]
        emit_vals = emit_vals[order]
        if j != m:
            count = int(emit_v.size)
            if self._grouped_sends_ok():
                self.network.send(
                    m, j, "update", update_bytes * count, messages=count
                )
            else:
                for _ in range(count):
                    self.network.send(m, j, "update", update_bytes)
            step.update_bytes[m] += update_bytes * count
        for v, value in zip(emit_v.tolist(), emit_vals):
            buffer.add(v, value)

    def _circulant_kernel_step(
        self,
        plan,
        analyzed,
        state: StateStore,
        batches,
        high_mask: np.ndarray,
        dep_store: DepStore,
        has_data: bool,
        update_bytes: int,
        step: StepRecord,
        buffer: _UpdateBuffer,
        s: int,
        part_high_size,
        dep_payload_bytes: int,
    ) -> None:
        """One circulant step on the kernel fast path, via the executor.

        The parent resolves the dependency store up front (skip-bit
        filtering, restored carried data), fans the per-machine kernel
        batches out through ``map_machines``, then replays the serial
        loop's side effects machine by machine in ascending order —
        dep-store write-back, metering, obs events, sends, buffering,
        and the dependency hand-off — so every backend is bit-identical
        to the old in-engine loop.
        """
        spec, _ = plan
        carried_name = spec.carried_vars[0] if spec.carried_vars else None
        items = []
        runs = []
        lows = []
        for m, j, cand in batches:
            high_sel = high_mask[cand]
            high = cand[high_sel]
            low = cand[~high_sel]
            run = high[~dep_store.skip[high]]
            carried_in = None
            if has_data and carried_name is not None:
                carried_in = (
                    dep_store.present[carried_name][run].copy(),
                    dep_store.data[carried_name][run],
                )
            items.append({"m": m, "run": run, "carried": carried_in,
                          "low": low})
            runs.append(run)
            lows.append(low)

        shared = {"signal": analyzed, "timed": self.obs is not None}
        results = self._map_machines(
            work.circulant_kernel_task, shared, items, state, step=step
        )
        for (m, j, _), run, low, res in zip(batches, runs, lows, results):
            if self.obs is not None:
                self.obs.kernel_batch(
                    m, res["kind"], int(run.size), res["high_edges"],
                    res["high_seconds"],
                )
            step.high_edges[m] += res["high_edges"]
            step.high_vertices[m] += int(run.size)
            if res["broke"] is not None:
                dep_store.skip[run[res["broke"]]] = True
            if has_data and carried_name is not None and run.size:
                dep_store.data[carried_name][run] = res["carried"]
                dep_store.present[carried_name][run] = True
            if self.obs is not None:
                self.obs.kernel_batch(
                    m, res["kind"], int(low.size), res["low_edges"],
                    res["low_seconds"],
                )
            step.low_edges[m] += res["low_edges"]
            step.low_vertices[m] += int(low.size)

            emit_v = np.concatenate(
                [run[res["high_emit_mask"]], low[res["low_emit_mask"]]]
            )
            if emit_v.size:
                emit_vals = np.concatenate(
                    [
                        res["high_values"][res["high_emit_mask"]],
                        res["low_values"][res["low_emit_mask"]],
                    ]
                )
                order = np.argsort(emit_v)
                emit_v = emit_v[order]
                emit_vals = emit_vals[order]
                if j != m:
                    count = int(emit_v.size)
                    if self._grouped_sends_ok():
                        self.network.send(
                            m, j, "update", update_bytes * count,
                            messages=count,
                        )
                    else:
                        for _ in range(count):
                            self.network.send(m, j, "update", update_bytes)
                    step.update_bytes[m] += update_bytes * count
                for v, value in zip(emit_v.tolist(), emit_vals):
                    buffer.add(v, value)
            self._circulant_handoff(
                s, m, part_high_size[j], dep_payload_bytes, step
            )

    def _circulant_interp_step(
        self,
        analyzed,
        state: StateStore,
        batches,
        high_mask: np.ndarray,
        dep_store: DepStore,
        share_dep_data: bool,
        is_last: bool,
        update_bytes: int,
        step: StepRecord,
        buffer: _UpdateBuffer,
        s: int,
        part_high_size,
        dep_payload_bytes: int,
    ) -> None:
        """One circulant step on the per-vertex interpreter, via the
        executor.

        Each task rebuilds a machine-local dependency store seeded with
        this machine's candidate slices (a step's partitions are
        disjoint, so slices never conflict); the parent writes the
        outgoing slices back and replays sends/buffering in the serial
        loop's order.
        """
        master_of = self.partition.master_of
        items = []
        for m, j, cand in batches:
            high_sel = high_mask[cand]
            items.append({
                "m": m,
                "cand": cand,
                "high_sel": high_sel,
                "skip": dep_store.skip[cand],
                "data": {
                    name: dep_store.data[name][cand]
                    for name in dep_store.data
                },
                "present": {
                    name: dep_store.present[name][cand]
                    for name in dep_store.present
                },
            })
        shared = {
            "signal": analyzed,
            "is_last": is_last,
            "carried_vars": list(analyzed.info.carried_vars),
            "share_dep_data": share_dep_data,
        }
        results = self._map_machines(
            work.circulant_interp_task, shared, items, state, step=step
        )
        for (m, j, cand), item, res in zip(batches, items, results):
            step.high_edges[m] += res["high_edges"]
            step.low_edges[m] += res["low_edges"]
            step.high_vertices[m] += res["high_vertices"]
            step.low_vertices[m] += res["low_vertices"]
            for v, values in zip(res["emit_v"], res["emit_values"]):
                master = int(master_of[v])
                if master != m:
                    nbytes = update_bytes * len(values)
                    self.network.send(m, master, "update", nbytes)
                    step.update_bytes[m] += nbytes
                for value in values:
                    buffer.add(v, value)
            high = cand[item["high_sel"]]
            dep_store.skip[high] = res["skip_out"]
            for name in dep_store.data:
                dep_store.data[name][high] = res["data_out"][name]
                dep_store.present[name][high] = res["present_out"][name]
            self._circulant_handoff(
                s, m, part_high_size[j], dep_payload_bytes, step
            )

    # -- timing ---------------------------------------------------------------

    def execution_time(self, cost_model: Optional[CostModel] = None) -> float:
        """Simulated time, honoring this engine's schedule/DB options."""
        model = cost_model or self.default_cost
        return model.execution_time(
            self.counters,
            "symple",
            double_buffering=self.options.double_buffering,
            schedule=self.options.schedule,
        )
