"""Vertex state store.

Algorithms keep their per-vertex arrays (and scalar parameters) in a
:class:`StateStore`, accessed in UDFs as attributes: ``s.frontier[u]``,
``s.k``.  In the real system these arrays are distributed and mirror
replicas are kept consistent by update/sync communication, which the
engines meter; the store itself is a plain namespace of NumPy arrays —
the Struct-of-Arrays layout of the paper's Section 6.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

import numpy as np

from repro.errors import EngineError

__all__ = ["StateStore"]


class StateStore:
    """Attribute-style namespace of named vertex arrays and scalars."""

    def __init__(self, num_vertices: int) -> None:
        object.__setattr__(self, "_num_vertices", int(num_vertices))
        object.__setattr__(self, "_fields", {})

    # -- declaration -------------------------------------------------------

    def add_array(self, name: str, dtype, fill: Any = 0) -> np.ndarray:
        """Declare a per-vertex array initialized to ``fill``."""
        array = np.full(self._num_vertices, fill, dtype=dtype)
        self._fields[name] = array
        return array

    def add_scalar(self, name: str, value: Any) -> Any:
        """Declare a scalar parameter (e.g. the K of K-core)."""
        self._fields[name] = value
        return value

    def set(self, name: str, value: Any) -> None:
        """Bind ``name`` to any value (array, scalar, or helper object)."""
        self._fields[name] = value

    # -- access -------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        fields: Dict[str, Any] = object.__getattribute__(self, "_fields")
        try:
            return fields[name]
        except KeyError:
            raise AttributeError(
                f"state has no field {name!r}; declared: {sorted(fields)}"
            ) from None

    def __setattr__(self, name: str, value: Any) -> None:
        self._fields[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    def array(self, name: str) -> np.ndarray:
        """The named field, checked to be a NumPy array."""
        value = self._fields.get(name)
        if not isinstance(value, np.ndarray):
            raise EngineError(f"state field {name!r} is not an array")
        return value

    def snapshot(self) -> Dict[str, Any]:
        """Deep copy of all fields (for tests and checkpointing)."""
        return {
            name: value.copy() if isinstance(value, np.ndarray) else value
            for name, value in self._fields.items()
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Replace all fields with (copies of) a snapshot's.

        The inverse of :meth:`snapshot`, used by crash recovery: arrays
        are copied in, so later mutation of this store cannot corrupt
        the snapshot it was restored from.
        """
        fields: Dict[str, Any] = object.__getattribute__(self, "_fields")
        fields.clear()
        for name, value in snapshot.items():
            fields[name] = value.copy() if isinstance(value, np.ndarray) else value
