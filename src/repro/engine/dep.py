"""Dependency state runtime (the paper's DepMessage, Section 4.1 & 6).

Per-vertex dependency state is stored Struct-of-Arrays: one bitmap for
the control bit ("skip?"), plus one typed array per carried data
variable.  Instrumented UDFs interact with a lightweight per-vertex
:class:`DepHandle` exposing the primitives the generated code calls:

* ``dep.skip`` — the received control bit (``receive_dep``);
* ``dep.mark_break()`` — set the control bit (``emit_dep``);
* ``dep.load(name, default)`` / ``dep.store(name, value)`` — carried
  data state.

The engine owns the arrays; "sending" the dependency between machines
is a matter of byte accounting since the simulation shares memory.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

__all__ = ["DepStore", "DepHandle", "BlindDepHandle"]


class DepStore:
    """SoA dependency state for every vertex.

    With ``share_data=False`` the store propagates only the control bit
    between machines: ``load`` always answers the local default and
    ``store`` is a no-op.  This models control-only dependency — valid
    whenever the UDF is already Gemini-correct (e.g. K-core, where
    partial counts sum at the master and only the saturation *break*
    must travel) and the reference implementations ship exactly that.
    """

    def __init__(
        self,
        num_vertices: int,
        data_vars: Sequence[str] = (),
        share_data: bool = True,
    ) -> None:
        self.num_vertices = num_vertices
        self.share_data = share_data
        self.skip = np.zeros(num_vertices, dtype=bool)
        if not share_data:
            data_vars = ()
        self.data: Dict[str, np.ndarray] = {
            name: np.zeros(num_vertices, dtype=np.float64) for name in data_vars
        }
        self.present: Dict[str, np.ndarray] = {
            name: np.zeros(num_vertices, dtype=bool) for name in data_vars
        }

    def reset(self) -> None:
        self.skip[:] = False
        for name in self.data:
            self.data[name][:] = 0.0
            self.present[name][:] = False

    def handle(self, v: int, is_last: bool = False) -> "DepHandle":
        return DepHandle(self, v, is_last)

    def blind_handle(self, v: int, is_last: bool = False) -> "BlindDepHandle":
        """Handle for a machine that missed the dependency message:
        sees no skip bit and no carried data, but its own break still
        registers for machines further down the schedule."""
        return BlindDepHandle(self, v, is_last)

    def live_mask(self, vertices: np.ndarray) -> np.ndarray:
        """Which of ``vertices`` have not yet hit their break."""
        return ~self.skip[vertices]


class DepHandle:
    """Per-vertex view of the dependency state, passed to UDFs."""

    __slots__ = ("_store", "_v", "is_last")

    def __init__(self, store: DepStore, v: int, is_last: bool = False) -> None:
        self._store = store
        self._v = v
        self.is_last = is_last

    @property
    def skip(self) -> bool:
        """Control bit: a previous machine already broke for this vertex."""
        return bool(self._store.skip[self._v])

    def mark_break(self) -> None:
        """Record the break so following machines skip this vertex."""
        self._store.skip[self._v] = True

    def load(self, name: str, default: Any) -> Any:
        """Carried data from the previous machine, or ``default``."""
        if not self._store.share_data:
            return default
        if self._store.present[name][self._v]:
            return self._store.data[name][self._v]
        return default

    def store(self, name: str, value: Any) -> None:
        """Persist carried data for the next machine in the schedule."""
        if not self._store.share_data:
            return
        self._store.data[name][self._v] = value
        self._store.present[name][self._v] = True


class BlindDepHandle(DepHandle):
    """A handle whose incoming state was lost in transit (Section 5.1's
    incomplete-information case).  Outgoing state still propagates."""

    __slots__ = ()

    @property
    def skip(self) -> bool:
        return False

    def load(self, name: str, default: Any) -> Any:
        return default
