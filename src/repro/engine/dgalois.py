"""D-Galois / Gluon baseline engine (Dathathri et al., PLDI'18).

Structural model of the comparison system: bulk-synchronous execution
over a Cartesian vertex-cut, with Gluon's partition-agnostic
synchronization substrate.  Because a vertex-cut splits both edge
directions, the substrate must run a *reduce* (mirror -> master) and a
*broadcast* (master -> all mirrors) phase every round — the engine's
``sync_scope = "both"`` and its cost preset reflect that.  No
dependency propagation; local breaks are again only local.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.base import BaseEngine, PullResult, SignalLike
from repro.engine.state import StateStore
from repro.partition.base import Partition
from repro.runtime.cost_model import DGALOIS_COST, CostModel

__all__ = ["DGaloisEngine"]


class DGaloisEngine(BaseEngine):
    """BSP engine over a vertex-cut with reduce+broadcast sync."""

    kind = "dgalois"
    cost_kind = "dgalois"
    supports_dependency = False
    sync_scope = "both"

    def __init__(
        self,
        partition: Partition,
        cost_model: CostModel = DGALOIS_COST,
        use_kernels: bool = True,
        obs=None,
        executor=None,
        verify: str = "off",
    ) -> None:
        super().__init__(
            partition, cost_model, use_kernels=use_kernels, obs=obs,
            executor=executor, verify=verify,
        )

    def pull(
        self,
        signal: SignalLike,
        slot: Callable,
        state: StateStore,
        active: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
        dep_data_bytes: int = 4,
        allow_differentiated: bool = True,
        share_dep_data: bool = True,
    ) -> PullResult:
        """Dense pull on the shared BSP schedule (kernel fast path
        included); only the sync scope differs from Gemini."""
        active_idx = self._check_active(active)
        analyzed = self.ensure_analyzed(signal)
        return self._pull_parallel(
            analyzed, slot, state, active_idx, update_bytes, sync_bytes
        )
