"""D-Galois / Gluon baseline engine (Dathathri et al., PLDI'18).

Structural model of the comparison system: bulk-synchronous execution
over a Cartesian vertex-cut, with Gluon's partition-agnostic
synchronization substrate.  Because a vertex-cut splits both edge
directions, the substrate must run a *reduce* (mirror -> master) and a
*broadcast* (master -> all mirrors) phase every round — the engine's
``sync_scope = "both"`` and its cost preset reflect that.  No
dependency propagation; local breaks are again only local.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.base import (
    BaseEngine,
    CountingNeighbors,
    PullResult,
    SignalLike,
    _UpdateBuffer,
)
from repro.engine.state import StateStore
from repro.partition.base import Partition
from repro.runtime.cost_model import DGALOIS_COST, CostModel
from repro.runtime.counters import IterationRecord, StepRecord

__all__ = ["DGaloisEngine"]


class DGaloisEngine(BaseEngine):
    """BSP engine over a vertex-cut with reduce+broadcast sync."""

    kind = "dgalois"
    cost_kind = "dgalois"
    supports_dependency = False
    sync_scope = "both"

    def __init__(
        self, partition: Partition, cost_model: CostModel = DGALOIS_COST
    ) -> None:
        super().__init__(partition, cost_model)

    def pull(
        self,
        signal: SignalLike,
        slot: Callable,
        state: StateStore,
        active: np.ndarray,
        update_bytes: int = 8,
        sync_bytes: int = 8,
        dep_data_bytes: int = 4,
        allow_differentiated: bool = True,
        share_dep_data: bool = True,
    ) -> PullResult:
        phase = self._phase_begin()
        active_idx = self._check_active(active)
        analyzed = self.ensure_analyzed(signal)
        fn = analyzed.original
        master_of = self.partition.master_of

        record = IterationRecord(mode="pull")
        step = self._make_step(phase)
        buffer = _UpdateBuffer()

        for m in range(self.num_machines):
            local = self.partition.local_in(m)
            for v in self._active_candidates(active_idx, m):
                v = int(v)
                nbrs = CountingNeighbors(local.neighbors(v))
                emitted: list = []
                fn(v, nbrs, state, emitted.append)
                step.high_edges[m] += nbrs.count
                step.high_vertices[m] += 1
                if not emitted:
                    continue
                master = int(master_of[v])
                if master != m:
                    nbytes = update_bytes * len(emitted)
                    self.network.send(m, master, "update", nbytes)
                    step.update_bytes[m] += nbytes
                for value in emitted:
                    buffer.add(v, value)

        changed, applied = buffer.apply(slot, state)
        record.steps = [step]
        self._count_sync(changed, sync_bytes, record)
        self.counters.add_iteration(record)
        self.counters.add_edges(int(step.high_edges.sum()))
        self.counters.add_vertices(int(step.high_vertices.sum()))
        return PullResult(changed, applied, int(step.high_edges.sum()))
