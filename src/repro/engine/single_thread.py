"""Single-thread reference engine.

Runs the signal-slot program sequentially on one machine.  Serves two
purposes:

* the *semantic oracle*: with one machine, local breaks are the true
  loop-carried dependency, so its outputs define correct results and
  its edge counts equal SympleGraph's precise counts (Definition 2.4);
* the *COST baseline* (McSherry et al., reproduced in Section 7.4):
  timed with the lean single-thread cost preset standing in for
  Galois/GAPBS hand-optimized codes.
"""

from __future__ import annotations

from repro.engine.gemini import GeminiEngine
from repro.graph.csr import CSRGraph
from repro.partition.edge_cut import OutgoingEdgeCut
from repro.runtime.cost_model import SINGLE_THREAD_COST, CostModel

__all__ = ["SingleThreadEngine"]


class SingleThreadEngine(GeminiEngine):
    """Sequential oracle engine (one machine, no communication)."""

    kind = "single"
    cost_kind = "single"

    def __init__(
        self,
        graph: CSRGraph,
        cost_model: CostModel = SINGLE_THREAD_COST,
        use_kernels: bool = True,
        obs=None,
        executor=None,
        verify: str = "off",
    ) -> None:
        partition = OutgoingEdgeCut().partition(graph, 1)
        super().__init__(
            partition, cost_model, use_kernels=use_kernels, obs=obs,
            executor=executor, verify=verify,
        )
