"""Human-readable analysis reports.

`explain_signal` renders what the analyzer found and what the
instrumenter generated — the Python analogue of inspecting the
source-to-source output of the paper's clang tool (Figure 5).
"""

from __future__ import annotations

from typing import Callable, Union

from repro.analysis.ast_analysis import analyze_signal
from repro.analysis.instrument import AnalyzedSignal, instrument_signal

__all__ = ["explain_signal"]


def explain_signal(signal: Union[Callable, AnalyzedSignal]) -> str:
    """Describe a signal UDF's dependency structure and instrumentation."""
    if isinstance(signal, AnalyzedSignal):
        analyzed = signal
        info = signal.info
    else:
        info = analyze_signal(signal)
        analyzed = instrument_signal(signal) if info.has_dependency else None

    lines = []
    lines.append("SympleGraph UDF analysis")
    lines.append("========================")
    lines.append(f"neighbor loop found : {info.has_neighbor_loop}")
    if info.has_neighbor_loop:
        lines.append(f"loop variable       : {info.loop_var}")
        lines.append(f"neighbors parameter : {info.nbrs_param}")
    lines.append(f"control dependency  : {info.has_break} (break in loop)")
    lines.append(
        "data dependency     : "
        + (", ".join(info.carried_vars) if info.carried_vars else "none")
    )
    if not info.has_dependency:
        lines.append("verdict             : no loop-carried dependency;")
        lines.append("                      runs unmodified on every engine")
        return "\n".join(lines)

    lines.append("verdict             : loop-carried dependency detected;")
    lines.append("                      dependency propagation enabled")
    if analyzed is not None and analyzed.instrumented_source:
        lines.append("")
        lines.append("instrumented UDF (generated):")
        lines.append("-" * 40)
        lines.append(analyzed.instrumented_source)
    return "\n".join(lines)
