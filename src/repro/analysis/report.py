"""Analysis reports: human-readable explain plus lint writers.

`explain_signal` renders what the analyzer found and what the
instrumenter generated — the Python analogue of inspecting the
source-to-source output of the paper's clang tool (Figure 5).

The lint writers serialize a list of
:class:`~repro.analysis.rules.LintMessage` findings for ``repro
lint``: compiler-style text, a stable JSON shape for scripting, and
SARIF 2.1.0 for code-scanning UIs (one run, one ``repro-lint``
driver, rule metadata taken from the registry docstrings).
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Union

from repro.analysis.ast_analysis import analyze_signal
from repro.analysis.instrument import AnalyzedSignal, instrument_signal
from repro.analysis.rules import LintMessage, iter_rules

__all__ = ["explain_signal", "render_text", "render_json", "render_sarif"]


def explain_signal(signal: Union[Callable, AnalyzedSignal]) -> str:
    """Describe a signal UDF's dependency structure and instrumentation."""
    if isinstance(signal, AnalyzedSignal):
        analyzed = signal
        info = signal.info
    else:
        info = analyze_signal(signal)
        analyzed = instrument_signal(signal) if info.has_dependency else None

    lines = []
    lines.append("SympleGraph UDF analysis")
    lines.append("========================")
    lines.append(f"neighbor loop found : {info.has_neighbor_loop}")
    if info.has_neighbor_loop:
        lines.append(f"loop variable       : {info.loop_var}")
        lines.append(f"neighbors parameter : {info.nbrs_param}")
    lines.append(f"control dependency  : {info.has_break} (break in loop)")
    lines.append(
        "data dependency     : "
        + (", ".join(info.carried_vars) if info.carried_vars else "none")
    )
    if not info.has_dependency:
        lines.append("verdict             : no loop-carried dependency;")
        lines.append("                      runs unmodified on every engine")
        return "\n".join(lines)

    lines.append("verdict             : loop-carried dependency detected;")
    lines.append("                      dependency propagation enabled")
    if analyzed is not None and analyzed.instrumented_source:
        lines.append("")
        lines.append("instrumented UDF (generated):")
        lines.append("-" * 40)
        lines.append(analyzed.instrumented_source)
    return "\n".join(lines)


# -- lint writers ------------------------------------------------------


def render_text(messages: Iterable[LintMessage]) -> str:
    """Compiler-style one-line-per-finding text output."""
    lines = []
    for m in messages:
        lines.append(f"{m.location}: {m.level}[{m.code}]: {m.message}")
    return "\n".join(lines)


def render_json(messages: Iterable[LintMessage]) -> str:
    """Stable JSON array of findings, one object per message."""
    payload = [
        {
            "code": m.code,
            "level": m.level,
            "message": m.message,
            "path": m.path,
            "line": m.lineno,
            "function": m.func,
        }
        for m in messages
    ]
    return json.dumps(payload, indent=2)


# SARIF reserves "error"/"warning"/"note" as result levels — ours map 1:1.
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(messages: Iterable[LintMessage]) -> str:
    """SARIF 2.1.0 log with one run and the full rule catalog.

    Rule metadata (short description = the rule's registered
    rationale) is emitted for every registered rule plus any ad-hoc
    codes present in the findings (``analysis-error``/``load-error``),
    so viewers can resolve every ``ruleId``.
    """
    messages = list(messages)
    rules = {
        spec.code: {
            "id": spec.code,
            "shortDescription": {"text": spec.doc.splitlines()[0] if spec.doc else spec.code},
            "fullDescription": {"text": spec.doc or spec.code},
            "defaultConfiguration": {"level": spec.level},
        }
        for spec in iter_rules()
    }
    for m in messages:
        rules.setdefault(
            m.code,
            {
                "id": m.code,
                "shortDescription": {"text": m.code},
                "defaultConfiguration": {"level": m.level},
            },
        )
    results = []
    for m in messages:
        result = {
            "ruleId": m.code,
            "level": m.level,
            "message": {"text": m.message},
        }
        if m.path and m.lineno:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": m.path},
                        "region": {"startLine": m.lineno},
                    }
                }
            ]
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": sorted(rules.values(), key=lambda r: r["id"]),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
