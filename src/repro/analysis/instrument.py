"""UDF instrumentation pass (the paper's Section 4.2, second pass).

Given a signal UDF with loop-carried dependency, generate the
dependency-aware variant the distributed framework executes.  The
transformation mirrors Figure 5 of the paper:

* append a ``dep`` parameter (the per-vertex dependency handle the
  framework circulates between machines — ``receive_dep`` is the act of
  being handed this state);
* prologue: ``if dep.skip: return`` — the control dependency check;
* after each carried variable's initialization, restore its value from
  the dependency state (``x = dep.load('x', x)``);
* before every ``break``, persist carried state and mark the control
  bit (``dep.store(...)``, ``dep.mark_break()`` — the paper's
  ``emit_dep``);
* at normal loop exit, persist carried state so the next machine
  resumes the fold exactly where this one stopped.

The generated source is kept (``AnalyzedSignal.instrumented_source``)
so users can inspect what the "compiler" produced, and is compiled in
the original function's global namespace so closures over module-level
helpers keep working.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.ast_analysis import (
    DependencyInfo,
    SignalAst,
    analyze_parsed,
    parse_signal,
)
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ReachingDefinitions, definitely_assigned_at
from repro.analysis.kernelspec import KernelSpec, classify_kernel
from repro.errors import InstrumentationError

__all__ = ["AnalyzedSignal", "instrument_signal", "analyze_and_instrument"]

DEP_PARAM = "dep"


@dataclass
class AnalyzedSignal:
    """A signal UDF together with its dependency-aware compiled form."""

    original: Callable
    info: DependencyInfo
    instrumented: Optional[Callable] = None
    instrumented_source: Optional[str] = None
    kernel: Optional[KernelSpec] = None

    @property
    def has_dependency(self) -> bool:
        return self.info.has_dependency


def _store_stmts(carried: tuple[str, ...]) -> list[ast.stmt]:
    """``dep.store('x', x)`` for every carried variable."""
    stmts: list[ast.stmt] = []
    for name in carried:
        call = ast.Expr(
            value=ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=DEP_PARAM, ctx=ast.Load()),
                    attr="store",
                    ctx=ast.Load(),
                ),
                args=[
                    ast.Constant(value=name),
                    ast.Name(id=name, ctx=ast.Load()),
                ],
                keywords=[],
            )
        )
        stmts.append(call)
    return stmts


def _mark_break_stmt() -> ast.stmt:
    """``dep.mark_break()`` — the paper's emit_dep for the control bit."""
    return ast.Expr(
        value=ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=DEP_PARAM, ctx=ast.Load()),
                attr="mark_break",
                ctx=ast.Load(),
            ),
            args=[],
            keywords=[],
        )
    )


def _skip_prologue() -> ast.stmt:
    """``if dep.skip: return``"""
    return ast.If(
        test=ast.Attribute(
            value=ast.Name(id=DEP_PARAM, ctx=ast.Load()),
            attr="skip",
            ctx=ast.Load(),
        ),
        body=[ast.Return(value=None)],
        orelse=[],
    )


def _restore_stmt(name: str) -> ast.stmt:
    """``x = dep.load('x', x)``"""
    return ast.Assign(
        targets=[ast.Name(id=name, ctx=ast.Store())],
        value=ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=DEP_PARAM, ctx=ast.Load()),
                attr="load",
                ctx=ast.Load(),
            ),
            args=[
                ast.Constant(value=name),
                ast.Name(id=name, ctx=ast.Load()),
            ],
            keywords=[],
        ),
    )


class _BreakInstrumenter(ast.NodeTransformer):
    """Insert store + mark_break before each break of the neighbor loop."""

    def __init__(self, carried: tuple[str, ...]) -> None:
        self.carried = carried

    def _instrument_body(self, body: list[ast.stmt]) -> list[ast.stmt]:
        new_body: list[ast.stmt] = []
        for stmt in body:
            if isinstance(stmt, ast.Break):
                new_body.extend(_store_stmts(self.carried))
                new_body.append(_mark_break_stmt())
                new_body.append(stmt)
            else:
                new_body.append(self.visit(stmt))
        return new_body

    def visit_If(self, node: ast.If) -> ast.If:
        node.body = self._instrument_body(node.body)
        node.orelse = self._instrument_body(node.orelse)
        return node

    def instrument_loop(self, loop: ast.For) -> ast.For:
        loop.body = self._instrument_body(loop.body)
        return loop


def _stored_names(stmt: ast.stmt) -> set[str]:
    """All simple names (possibly) bound anywhere within a statement.

    Covers plain/augmented/annotated assignment, tuple unpacking, and
    conditional writes nested inside ``if`` branches — any Store
    context Name in the subtree counts.
    """
    return {
        node.id
        for node in ast.walk(stmt)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
    }


def instrument_signal(fn: Callable) -> AnalyzedSignal:
    """Run both analyzer passes and compile the instrumented UDF."""
    sig = parse_signal(fn)
    info = analyze_parsed(sig)
    kernel = classify_kernel(sig, info)
    if not info.has_dependency:
        return AnalyzedSignal(original=fn, info=info, kernel=kernel)
    analyzed = _transform(fn, sig, info)
    analyzed.kernel = kernel
    return analyzed


# Back-compat friendly alias used throughout the engines.
analyze_and_instrument = instrument_signal


def _transform(fn: Callable, sig: SignalAst, info: DependencyInfo) -> AnalyzedSignal:
    carried = info.carried_vars
    func = sig.func
    loop = sig.loop
    assert loop is not None

    # Each carried variable must be bound on *every* path into the
    # neighbor loop (conditional initialization is fine as long as all
    # branches assign) — checked by definite-assignment dataflow at the
    # loop header.  The restore is inserted after the *last* pre-loop
    # statement that can write the variable, so no later write clobbers
    # the restored dependency state and every later read (snapshot
    # idioms like ``start = cnt``) observes it.
    pre_loop = func.body[: sig.loop_index]
    cfg = build_cfg(func)
    rd = ReachingDefinitions(cfg, sig.params)
    header = cfg.header_of(loop)
    restore_after = {}
    for index, stmt in enumerate(pre_loop):
        for name in _stored_names(stmt):
            if name in carried:
                restore_after[name] = index
    for name in carried:
        if not definitely_assigned_at(cfg, rd, header, name):
            raise InstrumentationError(
                f"carried variable {name!r} must be initialized on every "
                f"path before the neighbor loop at {sig.location(loop)} "
                "(add an initialization or an else branch)"
            )
        if name not in restore_after:  # pragma: no cover - definite
            # assignment above implies a pre-loop write exists
            raise InstrumentationError(
                f"carried variable {name!r} has no pre-loop initialization"
            )

    new_func = ast.FunctionDef(
        name=func.name + "__dep",
        args=ast.arguments(
            posonlyargs=[],
            args=[*func.args.args, ast.arg(arg=DEP_PARAM)],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        ),
        body=[],
        decorator_list=[],
        returns=None,
    )

    body: list[ast.stmt] = [_skip_prologue()]
    for index, stmt in enumerate(pre_loop):
        body.append(stmt)
        for name in carried:
            if restore_after.get(name) == index:
                body.append(_restore_stmt(name))

    instrumented_loop = _BreakInstrumenter(carried).instrument_loop(loop)
    body.append(instrumented_loop)
    body.extend(_store_stmts(carried))
    body.extend(func.body[sig.loop_index + 1 :])
    new_func.body = body

    module = ast.Module(body=[new_func], type_ignores=[])
    ast.fix_missing_locations(module)
    source = ast.unparse(module)

    namespace = dict(sig.globals)
    try:
        code = compile(module, filename=f"<instrumented:{func.name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - compiling our own transform
    except Exception as exc:  # pragma: no cover - transform bug guard
        raise InstrumentationError(
            f"instrumented UDF failed to compile: {exc}\n{source}"
        ) from exc

    return AnalyzedSignal(
        original=fn,
        info=info,
        instrumented=namespace[new_func.name],
        instrumented_source=source,
    )
