"""UDF analysis pass (the paper's Section 4.2, first pass).

The SympleGraph analyzer inspects a *signal* UDF and decides:

1. does it traverse the neighbor sequence in a loop?
2. does the loop carry a dependency — a ``break`` (control dependency)
   and/or variables whose value flows across loop iterations (data
   dependency, e.g. K-core's running count or sampling's prefix sum)?
3. which variables make up the dependency state to propagate?

The paper implements this as two clang LibTooling passes over the
Clang AST of C++ lambdas; here the same analysis runs over the Python
``ast`` of a signal function.  Signal UDFs follow the signal-slot
convention::

    def signal(v, nbrs, s, emit):
        for u in nbrs:          # the neighbor loop (2nd parameter)
            ...
            emit(value)
            break               # loop-carried control dependency

Since the dataflow rewrite, carried variables are computed from
reaching definitions over the UDF's control-flow graph
(:mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`): a
variable is carried iff a definition inside the loop flows around the
back edge *and* a use inside the loop is upward-exposed to it.  This
accepts shapes the seed's syntactic matcher rejected — conditional
initialization, tuple unpacking, multiple pre-loop writes — while
still refusing the constructs that defeat the source-level transform
(nested loops and ``return`` inside the neighbor loop), now with
CFG-located error messages.  The seed heuristic survives behind
``analyze_signal(fn, legacy=True)`` for one release.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterator, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ReachingDefinitions, loop_carried_vars
from repro.errors import AnalysisError

__all__ = ["DependencyInfo", "analyze_signal", "parse_signal", "SignalAst"]


@dataclass(frozen=True)
class DependencyInfo:
    """Result of analyzing a signal UDF."""

    has_neighbor_loop: bool
    has_break: bool
    carried_vars: Tuple[str, ...] = ()
    loop_var: Optional[str] = None
    nbrs_param: Optional[str] = None

    @property
    def has_dependency(self) -> bool:
        """True if any loop-carried dependency (control or data) exists."""
        return self.has_break or bool(self.carried_vars)

    @property
    def has_control_dependency(self) -> bool:
        return self.has_break

    @property
    def has_data_dependency(self) -> bool:
        return bool(self.carried_vars)


@dataclass
class SignalAst:
    """Parsed signal function, shared between analysis and instrumentation."""

    func: ast.FunctionDef
    module: ast.Module
    params: Tuple[str, ...]
    loop: Optional[ast.For]
    loop_index: int  # position of the loop in func.body
    source: str
    globals: dict = field(repr=False, default_factory=dict)
    filename: str = "<string>"
    line_offset: int = 0  # first source line of the def, minus one

    def location(self, node: ast.AST) -> str:
        """``file:line`` of an AST node, in absolute file coordinates."""
        line = getattr(node, "lineno", 0) + self.line_offset
        return f"{self.filename}:{line}"


def parse_signal(fn: Callable) -> SignalAst:
    """Parse a signal function into its AST, validating the convention."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot retrieve source of {fn!r}; signal UDFs must be "
            "defined in source files (or use the fold_while DSL)"
        ) from exc
    try:
        module = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - getsource gave bad text
        raise AnalysisError(f"cannot parse signal source: {exc}") from exc
    if not module.body or not isinstance(module.body[0], ast.FunctionDef):
        raise AnalysisError("signal UDF must be a plain function definition")
    func = module.body[0]
    params = tuple(arg.arg for arg in func.args.args)
    if len(params) < 2:
        raise AnalysisError(
            "signal UDF needs at least (v, nbrs, ...) parameters"
        )
    nbrs_param = params[1]
    loop, loop_index = _find_neighbor_loop(func, nbrs_param)
    try:
        filename = inspect.getsourcefile(fn) or "<string>"
    except TypeError:  # pragma: no cover - builtins fail getsource first
        filename = "<string>"
    code = getattr(fn, "__code__", None)
    line_offset = (code.co_firstlineno - 1) if code is not None else 0
    return SignalAst(
        func=func,
        module=module,
        params=params,
        loop=loop,
        loop_index=loop_index,
        source=source,
        globals=getattr(fn, "__globals__", {}),
        filename=filename,
        line_offset=line_offset,
    )


def _find_neighbor_loop(
    func: ast.FunctionDef, nbrs_param: str
) -> Tuple[Optional[ast.For], int]:
    """Locate the top-level ``for u in nbrs`` loop."""
    for index, stmt in enumerate(func.body):
        if (
            isinstance(stmt, ast.For)
            and isinstance(stmt.iter, ast.Name)
            and stmt.iter.id == nbrs_param
        ):
            if not isinstance(stmt.target, ast.Name):
                raise AnalysisError(
                    "neighbor loop must bind a single variable"
                )
            return stmt, index
    return None, -1


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _check_loop_body(sig: SignalAst) -> bool:
    """Enforce the structural restrictions on the neighbor loop.

    Nested loops and ``return`` defeat the source-level transform (as
    they would the paper's clang one); both are rejected with a
    CFG-located message.  Breaks belonging to the loop are counted
    here; nested function definitions are opaque scopes and ignored.
    """
    loop = sig.loop
    assert loop is not None
    has_break = False
    for node in _walk_same_scope(loop):
        if isinstance(node, (ast.For, ast.While)):
            raise AnalysisError(
                f"nested loop at {sig.location(node)}: nested loops "
                "inside the neighbor loop are not supported by the "
                "analyzer (restructure the UDF or use fold_while)"
            )
        if isinstance(node, ast.Return):
            raise AnalysisError(
                f"return at {sig.location(node)}: return inside the "
                "neighbor loop defeats instrumentation; use break"
            )
        if isinstance(node, ast.Break):
            has_break = True
    return has_break


def analyze_signal(fn: Callable, legacy: bool = False) -> DependencyInfo:
    """Analyze a signal UDF for loop-carried dependency (first pass).

    ``legacy=True`` selects the seed's syntactic heuristic (single
    pre-loop assignment, stored-and-loaded detection) instead of the
    CFG/dataflow backend; it is kept for one release as an escape
    hatch and for differential testing.
    """
    sig = parse_signal(fn)
    return analyze_parsed(sig, legacy=legacy)


def analyze_parsed(sig: SignalAst, legacy: bool = False) -> DependencyInfo:
    """Analyze an already-parsed signal."""
    if legacy:
        return _legacy_analyze(sig)
    if sig.loop is None:
        return DependencyInfo(has_neighbor_loop=False, has_break=False)
    has_break = _check_loop_body(sig)
    cfg = build_cfg(sig.func)
    rd = ReachingDefinitions(cfg, sig.params)
    header = cfg.header_of(sig.loop)
    carried = tuple(
        name
        for name in loop_carried_vars(cfg, rd, header)
        if name not in sig.params
    )
    return DependencyInfo(
        has_neighbor_loop=True,
        has_break=has_break,
        carried_vars=carried,
        loop_var=sig.loop.target.id,
        nbrs_param=sig.params[1],
    )


# -- legacy (seed) backend ---------------------------------------------


def _legacy_analyze(sig: SignalAst) -> DependencyInfo:
    """The seed's syntactic analysis, verbatim."""
    if sig.loop is None:
        return DependencyInfo(has_neighbor_loop=False, has_break=False)
    _check_no_return_in_loop(sig.loop)
    has_break = _contains_break(sig.loop)

    pre_loop = sig.func.body[: sig.loop_index]
    candidates = _names_assigned(pre_loop)
    carried = tuple(
        sorted(name for name in candidates if _is_carried(sig.loop, name))
    )
    return DependencyInfo(
        has_neighbor_loop=True,
        has_break=has_break,
        carried_vars=carried,
        loop_var=sig.loop.target.id,
        nbrs_param=sig.params[1],
    )


def _contains_break(loop: ast.For) -> bool:
    """Does the loop body contain a break belonging to this loop?"""
    for node in ast.walk(loop):
        if isinstance(node, ast.Break):
            return True
        if node is not loop and isinstance(node, (ast.For, ast.While)):
            raise AnalysisError(
                "nested loops inside the neighbor loop are not supported "
                "by the analyzer (restructure the UDF or use fold_while)"
            )
    return False


def _names_assigned(stmts) -> FrozenSet[str]:
    """Top-level simple-Name assignment targets in a statement list."""
    names = set()
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return frozenset(names)


def _is_carried(loop: ast.For, name: str) -> bool:
    """Does ``name``'s value flow across iterations of the loop?

    Carried means the loop *modifies* the variable and the new value is
    observable by later iterations: either an augmented assignment
    (read-modify-write) or both a plain store and a load inside the
    loop body.  A variable that is only read (loop-invariant) or only
    written (post-loop flag) is not dependency state that must travel
    between machines.
    """
    stored = loaded = False
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and node.id == name:
            if isinstance(node.ctx, ast.Load):
                loaded = True
            elif isinstance(node.ctx, ast.Store):
                stored = True
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            return True
    return stored and loaded


def _check_no_return_in_loop(loop: ast.For) -> None:
    for node in ast.walk(loop):
        if isinstance(node, ast.Return):
            raise AnalysisError(
                "return inside the neighbor loop defeats instrumentation; "
                "use break"
            )
