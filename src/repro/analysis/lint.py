"""Static lint for signal UDFs (compatibility shim).

The lint implementation moved to :mod:`repro.analysis.rules`, which
rebuilds the seed's three heuristics as registered rules over the
CFG/dataflow facts and adds the dataflow-powered and purity rules.
This module re-exports the stable entry points so existing imports
(``from repro.analysis.lint import lint_signal``) keep working.
"""

from __future__ import annotations

from repro.analysis.rules import LintConfig, LintMessage, lint_signal, lint_slot

__all__ = ["LintMessage", "LintConfig", "lint_signal", "lint_slot"]
