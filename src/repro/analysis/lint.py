"""Static lint for signal UDFs.

Catches the authoring mistakes that type-check fine but corrupt results
or waste traffic under dependency propagation:

* **cumulative-emit** — emitting a carried accumulator directly.  Under
  circulant scheduling a machine resumes from its predecessor's value,
  so emitting the accumulator re-reports mass the predecessor already
  emitted and the master double-counts.  The fix is the delta idiom
  (snapshot at entry, emit the difference): see ``kcore_signal``.
* **missing-break** — a loop-carried data variable with no break means
  every machine scans everything and the dependency buys no skipping;
  often intentional (PageRank), so it is a note, not a warning.
* **emit-after-break-branch** — emit placed after the loop with no
  guard on whether anything was accumulated locally; fires on every
  machine and relies on slot idempotence.

These are heuristics over the same AST the analyzer uses; they do not
change execution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, List

from repro.analysis.ast_analysis import analyze_parsed, parse_signal

__all__ = ["LintMessage", "lint_signal"]


@dataclass(frozen=True)
class LintMessage:
    """One lint finding."""

    code: str
    level: str  # "warning" | "note"
    message: str

    def __str__(self) -> str:
        return f"{self.level}[{self.code}]: {self.message}"


def lint_signal(fn: Callable) -> List[LintMessage]:
    """Lint a signal UDF; returns an empty list when clean."""
    sig = parse_signal(fn)
    info = analyze_parsed(sig)
    messages: List[LintMessage] = []
    if not info.has_neighbor_loop:
        return messages

    carried = set(info.carried_vars)
    emit_param = sig.params[3] if len(sig.params) > 3 else "emit"

    if carried:
        for call in _emit_calls(sig.func, emit_param):
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id in carried:
                    messages.append(
                        LintMessage(
                            "cumulative-emit",
                            "warning",
                            f"emit({arg.id}) passes the carried "
                            f"accumulator {arg.id!r} directly; under "
                            "dependency propagation the master will "
                            "double-count — emit the local delta "
                            "instead (see kcore_signal)",
                        )
                    )

    if carried and not info.has_break:
        messages.append(
            LintMessage(
                "missing-break",
                "note",
                f"carried state {sorted(carried)} without a break: "
                "dependency propagation cannot skip any work for this "
                "UDF (fine for full folds like PageRank)",
            )
        )

    return messages


def _emit_calls(func: ast.FunctionDef, emit_name: str):
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == emit_name
        ):
            yield node
