"""The ``fold_while`` DSL (paper Section 4.3, "New Graph DSL").

Instead of relying on the analyzer, a programmer can express the loop-
carried dependency directly as a state machine: an initial dependency
value, a compose function folding in each neighbor, and an exit
condition.  The DSL compiles straight to an :class:`AnalyzedSignal`, so
the engines treat both authoring styles identically.

Example — weighted neighbor sampling::

    signal = fold_while(
        initial=0.0,
        compose=lambda acc, u, v, s: acc + s.weight[u],
        exit_when=lambda acc, u, v, s: acc >= s.r[v],
        on_exit=lambda acc, u, v, s, emit: emit(u),
    )
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.analysis.ast_analysis import DependencyInfo
from repro.analysis.instrument import AnalyzedSignal

__all__ = ["fold_while"]

ACC_VAR = "acc"


def fold_while(
    initial: Any,
    compose: Callable,
    exit_when: Callable,
    on_exit: Optional[Callable] = None,
    on_each: Optional[Callable] = None,
    on_finish: Optional[Callable] = None,
) -> AnalyzedSignal:
    """Build a dependency-aware signal from a fold specification.

    Parameters
    ----------
    initial:
        Initial dependency state (the accumulator).
    compose:
        ``(acc, u, v, s) -> acc`` folds neighbor ``u`` into the state.
    exit_when:
        ``(acc, u, v, s) -> bool``; when true after composing ``u``,
        the loop breaks (loop-carried control dependency).
    on_exit:
        ``(acc, u, v, s, emit)`` invoked on the breaking neighbor.
    on_each:
        ``(acc, u, v, s, emit)`` invoked after composing each neighbor
        (before the exit test).
    on_finish:
        ``(acc, v, s, emit)`` invoked when the loop ends without
        breaking; receives the final accumulator.
    """

    def original(v, nbrs, s, emit):
        acc = initial
        for u in nbrs:
            acc = compose(acc, u, v, s)
            if on_each is not None:
                on_each(acc, u, v, s, emit)
            if exit_when(acc, u, v, s):
                if on_exit is not None:
                    on_exit(acc, u, v, s, emit)
                break
        else:
            if on_finish is not None:
                on_finish(acc, v, s, emit)

    def instrumented(v, nbrs, s, emit, dep):
        if dep.skip:
            return
        acc = dep.load(ACC_VAR, initial)
        broke = False
        for u in nbrs:
            acc = compose(acc, u, v, s)
            if on_each is not None:
                on_each(acc, u, v, s, emit)
            if exit_when(acc, u, v, s):
                if on_exit is not None:
                    on_exit(acc, u, v, s, emit)
                dep.store(ACC_VAR, acc)
                dep.mark_break()
                broke = True
                break
        if not broke:
            dep.store(ACC_VAR, acc)
            if on_finish is not None and dep.is_last:
                on_finish(acc, v, s, emit)

    info = DependencyInfo(
        has_neighbor_loop=True,
        has_break=True,
        carried_vars=(ACC_VAR,),
        loop_var="u",
        nbrs_param="nbrs",
    )
    return AnalyzedSignal(
        original=original,
        info=info,
        instrumented=instrumented,
        instrumented_source=None,
    )
