"""Classic forward/backward dataflow over the signal-UDF CFG.

Three textbook analyses power the analyzer and the lint rules:

* **Reaching definitions** (forward, may): which assignments can still
  be "live" at a program point.  Synthetic definitions model function
  parameters and the *uninitialized* state of every local, so
  possibly-undefined uses fall out of the same fixpoint.
* **Live variables** (backward, may): which names are read later.
* **Def-use chains**: the edges between the two.

On top of these, :func:`loop_carried_vars` computes the paper's data
dependency *precisely*: a variable is loop-carried iff a definition
inside the loop flows around the back edge (it is in the OUT set of a
latch block) **and** some use inside the loop can observe it (the use
is upward-exposed — reachable from the loop header without an
intervening redefinition).  This replaces the seed analyzer's
"assigned before the loop + stored and loaded inside it" name
heuristic, and is what lifts the single-assignment restriction:
conditional initialization, augmented assignment, and tuple unpacking
are just definitions like any other.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, NamedTuple, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, Instr

__all__ = [
    "Definition",
    "ReachingDefinitions",
    "LiveVariables",
    "def_use_chains",
    "loop_carried_vars",
    "definitely_assigned_at",
    "instr_defs",
    "instr_uses",
]

PARAM_BLOCK = -1
UNINIT_BLOCK = -2


class Definition(NamedTuple):
    """One definition site: ``(var, block, index)``.

    ``block`` is ``-1`` for the synthetic parameter definition at
    function entry and ``-2`` for the synthetic "uninitialized"
    definition every local carries until a real assignment kills it.
    """

    var: str
    block: int
    index: int

    @property
    def is_uninit(self) -> bool:
        """True for the synthetic uninitialized definition."""
        return self.block == UNINIT_BLOCK

    @property
    def is_real(self) -> bool:
        """True for a definition written by actual code."""
        return self.block >= 0


class _Names(ast.NodeVisitor):
    """Collect loaded/stored names, respecting nested scopes.

    Nested function/class definitions are opaque (they only define
    their own name); comprehension targets are scoped out so they never
    surface as function-local definitions.
    """

    def __init__(self) -> None:
        self.loads: List[str] = []
        self.stores: List[str] = []

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loads.append(node.id)
        elif isinstance(node.ctx, ast.Store):
            self.stores.append(node.id)

    def visit_FunctionDef(self, node) -> None:
        self.stores.append(node.name)

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:  # opaque: no names leak out
        pass

    def _comprehension(self, node) -> None:
        inner = _Names()
        for child in ast.iter_child_nodes(node):
            inner.visit(child)
        # Only the comprehension's own for-targets are scoped out.
        # Walrus targets (PEP 572) bind in the *enclosing* function
        # scope and must surface as definitions here; nested
        # comprehensions have already scoped out their own targets.
        bound = set()
        for gen in node.generators:
            for t in ast.walk(gen.target):
                if isinstance(t, ast.Name):
                    bound.add(t.id)
        self.stores.extend(n for n in inner.stores if n not in bound)
        self.loads.extend(n for n in inner.loads if n not in bound)

    visit_ListComp = _comprehension
    visit_SetComp = _comprehension
    visit_DictComp = _comprehension
    visit_GeneratorExp = _comprehension


def _collect(node: ast.AST) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    names = _Names()
    names.visit(node)
    return tuple(names.stores), tuple(names.loads)


def instr_defs(instr: Instr) -> Tuple[str, ...]:
    """Names (possibly) defined by one CFG instruction."""
    return _defs_uses(instr)[0]


def instr_uses(instr: Instr) -> Tuple[str, ...]:
    """Names read by one CFG instruction (before its own definitions)."""
    return _defs_uses(instr)[1]


def _defs_uses(instr: Instr) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    node = instr.node
    if instr.kind == "for-header":
        defs, _ = _collect(node.target)
        # a walrus in the iterable (`for w in (ws := f())`) defines a
        # name too — collect stores from both sides
        iter_defs, uses = _collect(node.iter)
        return defs + iter_defs, uses
    if instr.kind == "test":
        defs, uses = _collect(node)
        return defs, uses
    if instr.kind == "with-enter":
        defs: List[str] = []
        uses: List[str] = []
        for item in node.items:
            d, u = _collect(item.context_expr)
            defs.extend(d)
            uses.extend(u)
            if item.optional_vars is not None:
                d, _ = _collect(item.optional_vars)
                defs.extend(d)
        return tuple(defs), tuple(uses)
    if isinstance(node, ast.AugAssign):
        defs, uses = _collect(node)
        # `x += e` reads x before writing it; the generic walker only
        # sees the Store context on the target.
        if isinstance(node.target, ast.Name):
            uses = uses + (node.target.id,)
        return defs, uses
    return _collect(node)


class ReachingDefinitions:
    """Forward may-analysis: which definitions reach each point.

    The boundary set at function entry holds one parameter definition
    per parameter and one *uninit* definition per local (a name with at
    least one real definition that is not a parameter).  A use reached
    by its uninit definition is possibly undefined on some path.
    """

    def __init__(self, cfg: CFG, params: Sequence[str]) -> None:
        self.cfg = cfg
        self.params = tuple(params)

        # enumerate real definitions and group all defs by var
        self.defs_by_var: Dict[str, Set[Definition]] = {}
        self._instr_defs: Dict[Tuple[int, int], Tuple[str, ...]] = {}
        self._instr_uses: Dict[Tuple[int, int], Tuple[str, ...]] = {}
        for block_id, index, instr in cfg.instructions():
            defs, uses = _defs_uses(instr)
            self._instr_defs[(block_id, index)] = defs
            self._instr_uses[(block_id, index)] = uses
            for var in defs:
                self.defs_by_var.setdefault(var, set()).add(
                    Definition(var, block_id, index)
                )

        self.local_vars: FrozenSet[str] = frozenset(
            v for v in self.defs_by_var if v not in self.params
        )
        boundary: Set[Definition] = set()
        for k, p in enumerate(self.params):
            d = Definition(p, PARAM_BLOCK, k)
            boundary.add(d)
            self.defs_by_var.setdefault(p, set()).add(d)
        for var in self.local_vars:
            d = Definition(var, UNINIT_BLOCK, 0)
            boundary.add(d)
            self.defs_by_var[var].add(d)
        self.boundary = frozenset(boundary)

        self._in: Dict[int, Set[Definition]] = {}
        self._out: Dict[int, Set[Definition]] = {}
        self._solve()

    def _transfer(self, block_id: int, facts: Set[Definition]) -> Set[Definition]:
        out = set(facts)
        for index, _ in enumerate(self.cfg.blocks[block_id].instrs):
            for var in self._instr_defs[(block_id, index)]:
                out -= self.defs_by_var.get(var, set())
                out.add(Definition(var, block_id, index))
        return out

    def _solve(self) -> None:
        blocks = list(self.cfg.blocks)
        for b in blocks:
            self._in[b] = set()
            self._out[b] = set()
        self._in[self.cfg.entry] = set(self.boundary)
        worklist = list(blocks)
        while worklist:
            b = worklist.pop(0)
            preds = self.cfg.blocks[b].preds
            if preds:
                new_in: Set[Definition] = set()
                for p in preds:
                    new_in |= self._out[p]
            else:
                new_in = set(self.boundary) if b == self.cfg.entry else set()
            new_out = self._transfer(b, new_in)
            changed = new_in != self._in[b] or new_out != self._out[b]
            self._in[b] = new_in
            self._out[b] = new_out
            if changed:
                for s in self.cfg.blocks[b].succs:
                    if s not in worklist:
                        worklist.append(s)

    # -- queries -------------------------------------------------------

    def reaching_in(self, block_id: int) -> Set[Definition]:
        """Definitions reaching the start of a block."""
        return set(self._in[block_id])

    def out_of(self, block_id: int) -> Set[Definition]:
        """Definitions reaching the end of a block."""
        return set(self._out[block_id])

    def reaching_at(self, block_id: int, index: int) -> Set[Definition]:
        """Definitions reaching instruction ``index`` (before it runs)."""
        facts = set(self._in[block_id])
        for i in range(index):
            for var in self._instr_defs[(block_id, i)]:
                facts -= self.defs_by_var.get(var, set())
                facts.add(Definition(var, block_id, i))
        return facts

    def defs_at(self, block_id: int, index: int) -> Tuple[str, ...]:
        """Names defined by the instruction at ``(block, index)``."""
        return self._instr_defs[(block_id, index)]

    def uses_at(self, block_id: int, index: int) -> Tuple[str, ...]:
        """Names used by the instruction at ``(block, index)``."""
        return self._instr_uses[(block_id, index)]

    def possibly_undefined(self, var: str, block_id: int, index: int) -> bool:
        """Can ``var`` be unbound when ``(block, index)`` reads it?"""
        if var not in self.local_vars:
            return False
        uninit = Definition(var, UNINIT_BLOCK, 0)
        return uninit in self.reaching_at(block_id, index)


class LiveVariables:
    """Backward may-analysis: names whose current value is read later."""

    def __init__(self, cfg: CFG, rd: ReachingDefinitions) -> None:
        self.cfg = cfg
        self._rd = rd
        self._use: Dict[int, Set[str]] = {}
        self._def: Dict[int, Set[str]] = {}
        for b, block in cfg.blocks.items():
            use: Set[str] = set()
            defined: Set[str] = set()
            for index, _ in enumerate(block.instrs):
                for var in rd.uses_at(b, index):
                    if var not in defined:
                        use.add(var)
                for var in rd.defs_at(b, index):
                    defined.add(var)
            self._use[b] = use
            self._def[b] = defined
        self._in: Dict[int, Set[str]] = {b: set() for b in cfg.blocks}
        self._out: Dict[int, Set[str]] = {b: set() for b in cfg.blocks}
        self._solve()

    def _solve(self) -> None:
        worklist = list(self.cfg.blocks)
        while worklist:
            b = worklist.pop(0)
            out: Set[str] = set()
            for s in self.cfg.blocks[b].succs:
                out |= self._in[s]
            new_in = self._use[b] | (out - self._def[b])
            changed = out != self._out[b] or new_in != self._in[b]
            self._out[b] = out
            self._in[b] = new_in
            if changed:
                for p in self.cfg.blocks[b].preds:
                    if p not in worklist:
                        worklist.append(p)

    def live_in(self, block_id: int) -> Set[str]:
        """Names live at block entry."""
        return set(self._in[block_id])

    def live_out(self, block_id: int) -> Set[str]:
        """Names live at block exit."""
        return set(self._out[block_id])


def def_use_chains(
    cfg: CFG, rd: ReachingDefinitions
) -> Dict[Definition, List[Tuple[int, int]]]:
    """Map each definition to the ``(block, index)`` sites that read it."""
    chains: Dict[Definition, List[Tuple[int, int]]] = {}
    for block_id, index, _ in cfg.instructions():
        reaching = rd.reaching_at(block_id, index)
        for var in rd.uses_at(block_id, index):
            for d in reaching:
                if d.var == var:
                    chains.setdefault(d, []).append((block_id, index))
    return chains


def loop_carried_vars(
    cfg: CFG, rd: ReachingDefinitions, header_id: int
) -> Tuple[str, ...]:
    """Variables whose value flows across iterations of one loop.

    ``x`` is loop-carried iff (a) some definition of ``x`` inside the
    loop reaches a latch block's exit — it survives to the end of an
    iteration — and (b) some use of ``x`` inside the loop is
    upward-exposed from the loop header, i.e. reachable without an
    intervening redefinition, so the next iteration can observe the
    previous one's value.  The loop target is never carried: the header
    redefines it before any use.
    """
    loop = cfg.natural_loop(header_id)

    # (a) definitions flowing around the back edge
    around: Set[str] = set()
    for latch in cfg.latches(header_id):
        for d in rd.out_of(latch):
            if d.is_real and d.block in loop:
                around.add(d.var)
    if not around:
        return ()

    # (b) upward-exposed uses: forward "maybe not yet redefined this
    # iteration" propagation over the loop subgraph only.
    maybe_in: Dict[int, Set[str]] = {b: set() for b in loop}
    maybe_in[header_id] = set(around)

    def transfer(block_id: int, facts: Set[str]) -> Set[str]:
        out = set(facts)
        for index, _ in enumerate(cfg.blocks[block_id].instrs):
            for var in rd.defs_at(block_id, index):
                out.discard(var)
        return out

    worklist = [header_id]
    while worklist:
        b = worklist.pop(0)
        out = transfer(b, maybe_in[b])
        for s in cfg.blocks[b].succs:
            if s not in loop or s == header_id:
                continue  # exits and back edges don't propagate
            if not out <= maybe_in[s]:
                maybe_in[s] |= out
                if s not in worklist:
                    worklist.append(s)

    exposed: Set[str] = set()
    for b in loop:
        facts = set(maybe_in[b])
        for index, _ in enumerate(cfg.blocks[b].instrs):
            for var in rd.uses_at(b, index):
                if var in facts:
                    exposed.add(var)
            for var in rd.defs_at(b, index):
                facts.discard(var)
    return tuple(sorted(exposed & around))


def definitely_assigned_at(
    cfg: CFG, rd: ReachingDefinitions, block_id: int, var: str
) -> bool:
    """Is ``var`` bound on *every* path reaching ``block_id``?

    Considers only forward edges, so for a loop header this asks about
    the state on loop entry (parameters are always bound).
    """
    if var in rd.params:
        return True
    if var not in rd.local_vars:
        return False
    uninit = Definition(var, UNINIT_BLOCK, 0)
    preds = cfg.forward_preds(block_id)
    if not preds:
        return False  # entry or unreachable: no binding yet
    return all(uninit not in rd.out_of(p) for p in preds)
