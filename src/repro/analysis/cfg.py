"""Control-flow graph construction for signal-UDF bodies.

The dataflow analyses in :mod:`repro.analysis.dataflow` run over a
conventional statement-level CFG: straight-line code groups into basic
blocks, ``if``/``for``/``while`` split blocks and add edges, ``break``
and ``continue`` jump to the enclosing loop's exit/header, and every
loop's closing edge is recorded as a *back edge* — the edge a
loop-carried dependency must cross.

Blocks hold :class:`Instr` wrappers rather than raw statements because
a compound statement contributes different reads/writes at different
CFG points: a ``for`` header defines its target and reads its iterable
once per iteration, while an ``if`` contributes only its test at the
branch point (the branch bodies live in successor blocks).

The builder is deliberately small: it covers the statement forms a
signal UDF can reasonably contain and raises a located
:class:`~repro.errors.AnalysisError` for the rest (``try``, ``match``,
async constructs), matching the paper's stance that the source-level
transform only needs the vertex-program subset of the language.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AnalysisError

__all__ = ["Instr", "BasicBlock", "CFG", "build_cfg"]


@dataclass
class Instr:
    """One CFG instruction: an AST node plus its role in the block.

    ``kind`` is ``"stmt"`` for a plain simple statement, ``"test"``
    for a branch/loop condition (the node is the test *expression*),
    or ``"for-header"`` for a ``for`` loop header (defines the loop
    target, reads the iterable).
    """

    node: ast.AST
    kind: str = "stmt"

    @property
    def lineno(self) -> int:
        """Source line of the underlying AST node (function-relative)."""
        return getattr(self.node, "lineno", 0)


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    id: int
    instrs: List[Instr] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    label: str = ""


class CFG:
    """Control-flow graph of one function body.

    Attributes of interest: ``blocks`` (id -> :class:`BasicBlock`),
    ``entry``/``exit`` block ids, ``back_edges`` (set of ``(src, dst)``
    pairs closing a loop), and ``loops`` mapping each loop-header block
    id to its ``ast.For``/``ast.While`` node.
    """

    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.blocks: Dict[int, BasicBlock] = {}
        self._next_id = 0
        self.entry = self.new_block("entry").id
        self.exit = self.new_block("exit").id
        self.back_edges: Set[Tuple[int, int]] = set()
        self.loops: Dict[int, ast.stmt] = {}

    # -- construction --------------------------------------------------

    def new_block(self, label: str = "") -> BasicBlock:
        """Allocate an empty block."""
        block = BasicBlock(id=self._next_id, label=label)
        self._next_id += 1
        self.blocks[block.id] = block
        return block

    def add_edge(self, src: int, dst: int, back: bool = False) -> None:
        """Add a directed edge; ``back=True`` records a loop back edge."""
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)
        if back:
            self.back_edges.add((src, dst))

    # -- queries -------------------------------------------------------

    def header_of(self, loop: ast.stmt) -> int:
        """Block id of the header created for ``loop`` (For/While node)."""
        for block_id, node in self.loops.items():
            if node is loop:
                return block_id
        raise KeyError("loop node is not part of this CFG")

    def forward_preds(self, block_id: int) -> List[int]:
        """Predecessors reached without crossing a back edge."""
        return [
            p
            for p in self.blocks[block_id].preds
            if (p, block_id) not in self.back_edges
        ]

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].succs)
        return seen

    def natural_loop(self, header_id: int) -> Set[int]:
        """Blocks of the natural loop of ``header_id`` (header included).

        Union of the natural loops of every back edge targeting the
        header: all blocks that reach a latch without passing through
        the header.
        """
        loop: Set[int] = {header_id}
        for src, dst in self.back_edges:
            if dst != header_id:
                continue
            stack = [src]
            while stack:
                b = stack.pop()
                if b in loop:
                    continue
                loop.add(b)
                stack.extend(self.blocks[b].preds)
        return loop

    def latches(self, header_id: int) -> List[int]:
        """Blocks with a back edge into ``header_id``."""
        return [src for (src, dst) in self.back_edges if dst == header_id]

    def instructions(self):
        """Iterate ``(block_id, index, Instr)`` over every block."""
        for block_id, block in self.blocks.items():
            for index, instr in enumerate(block.instrs):
                yield block_id, index, instr

    def render(self) -> str:
        """Compact text dump of the graph, for debugging and tests."""
        lines = []
        for block_id in sorted(self.blocks):
            block = self.blocks[block_id]
            marker = ""
            if block_id == self.entry:
                marker = " (entry)"
            elif block_id == self.exit:
                marker = " (exit)"
            elif block_id in self.loops:
                marker = " (loop header)"
            succs = ", ".join(
                f"{s}*" if (block_id, s) in self.back_edges else str(s)
                for s in block.succs
            )
            lines.append(f"B{block_id}{marker} -> [{succs}]")
            for instr in block.instrs:
                text = ast.unparse(instr.node) if instr.node else ""
                first = text.splitlines()[0] if text else instr.kind
                lines.append(f"    {instr.kind}: {first}")
        return "\n".join(lines)


_UNSUPPORTED = (
    ast.Try,
    ast.Match,
    ast.AsyncFor,
    ast.AsyncWith,
    ast.AsyncFunctionDef,
)


class _Builder:
    """Recursive-descent CFG builder over a statement list."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # (header_id, after_id) per enclosing loop, innermost last
        self.loop_stack: List[Tuple[int, int]] = []

    def build(self) -> None:
        first = self.cfg.new_block("body")
        self.cfg.add_edge(self.cfg.entry, first.id)
        end = self.stmts(self.cfg.func.body, first.id)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit)

    def stmts(self, body: List[ast.stmt], cur: Optional[int]) -> Optional[int]:
        for stmt in body:
            if cur is None:
                # code after a break/continue/return: keep it in the
                # graph (with no predecessors) so reachability queries
                # can flag it, but control never flows here.
                cur = self.cfg.new_block("unreachable").id
            cur = self.stmt(stmt, cur)
        return cur

    def stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        if isinstance(stmt, _UNSUPPORTED):
            raise AnalysisError(
                f"unsupported construct {type(stmt).__name__} at line "
                f"{getattr(stmt, 'lineno', '?')}: signal UDFs are "
                "restricted to straight-line code, if/for/while, and "
                "nested function definitions"
            )
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, (ast.For, ast.While)):
            return self._loop(stmt, cur)
        if isinstance(stmt, ast.Break):
            self._append(cur, Instr(stmt))
            if not self.loop_stack:  # pragma: no cover - SyntaxError first
                raise AnalysisError("break outside of a loop")
            self.cfg.add_edge(cur, self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self._append(cur, Instr(stmt))
            if not self.loop_stack:  # pragma: no cover - SyntaxError first
                raise AnalysisError("continue outside of a loop")
            self.cfg.add_edge(cur, self.loop_stack[-1][0], back=True)
            return None
        if isinstance(stmt, ast.Return):
            self._append(cur, Instr(stmt))
            self.cfg.add_edge(cur, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            self._append(cur, Instr(stmt))
            self.cfg.add_edge(cur, self.cfg.exit)
            return None
        if isinstance(stmt, ast.With):
            self._append(cur, Instr(stmt, kind="with-enter"))
            return self.stmts(stmt.body, cur)
        # plain statement (Assign, AugAssign, AnnAssign, Expr, Pass,
        # Assert, Delete, FunctionDef, Import, Global, Nonlocal, ...)
        self._append(cur, Instr(stmt))
        return cur

    def _append(self, block_id: int, instr: Instr) -> None:
        self.cfg.blocks[block_id].instrs.append(instr)

    def _if(self, stmt: ast.If, cur: int) -> Optional[int]:
        self._append(cur, Instr(stmt.test, kind="test"))
        then_block = self.cfg.new_block("then")
        self.cfg.add_edge(cur, then_block.id)
        then_end = self.stmts(stmt.body, then_block.id)

        if stmt.orelse:
            else_block = self.cfg.new_block("else")
            self.cfg.add_edge(cur, else_block.id)
            else_end = self.stmts(stmt.orelse, else_block.id)
        else:
            else_end = cur  # fall through the test directly

        if then_end is None and else_end is None:
            return None
        join = self.cfg.new_block("join")
        if then_end is not None:
            self.cfg.add_edge(then_end, join.id)
        if else_end is not None:
            self.cfg.add_edge(else_end, join.id)
        return join.id

    def _loop(self, stmt, cur: int) -> int:
        header = self.cfg.new_block("loop-header")
        self.cfg.add_edge(cur, header.id)
        if isinstance(stmt, ast.For):
            self._append(header.id, Instr(stmt, kind="for-header"))
        else:
            self._append(header.id, Instr(stmt.test, kind="test"))
        self.cfg.loops[header.id] = stmt

        after = self.cfg.new_block("loop-after")
        body = self.cfg.new_block("loop-body")
        self.cfg.add_edge(header.id, body.id)

        if stmt.orelse:
            # for/while ... else: the else runs on normal exhaustion
            # only; break jumps straight to `after`.
            else_block = self.cfg.new_block("loop-else")
            self.cfg.add_edge(header.id, else_block.id)
            else_end = self.stmts(stmt.orelse, else_block.id)
            if else_end is not None:
                self.cfg.add_edge(else_end, after.id)
        else:
            self.cfg.add_edge(header.id, after.id)

        self.loop_stack.append((header.id, after.id))
        body_end = self.stmts(stmt.body, body.id)
        self.loop_stack.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, header.id, back=True)
        return after.id


def build_cfg(func: ast.FunctionDef) -> CFG:
    """Build the control-flow graph of a function body."""
    cfg = CFG(func)
    _Builder(cfg).build()
    return cfg
