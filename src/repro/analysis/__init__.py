"""UDF analysis and instrumentation (the paper's compiler component).

The pipeline: :func:`parse_signal` reads a UDF's source,
:func:`build_cfg` turns the body into a control-flow graph,
:class:`ReachingDefinitions`/:class:`LiveVariables` compute the
dataflow facts, :func:`analyze_signal` derives the loop-carried
dependency from them, :func:`instrument_signal` generates the
dependency-aware variant, and the lint engine
(:func:`lint_signal`/:func:`lint_slot`, extensible via :func:`rule`)
reports hazards the analyzer tolerates but distribution does not.
"""

from repro.analysis.ast_analysis import (
    DependencyInfo,
    SignalAst,
    analyze_signal,
    parse_signal,
)
from repro.analysis.cfg import CFG, BasicBlock, Instr, build_cfg
from repro.analysis.dataflow import (
    Definition,
    LiveVariables,
    ReachingDefinitions,
    def_use_chains,
    definitely_assigned_at,
    loop_carried_vars,
)
from repro.analysis.dsl import fold_while
from repro.analysis.instrument import (
    AnalyzedSignal,
    analyze_and_instrument,
    instrument_signal,
)
from repro.analysis.kernelspec import KernelSpec, classify_kernel
from repro.analysis.linter import LintRun, discover_udfs, run_lint
from repro.analysis.properties import (
    CheckResult,
    check_dependency_threading,
    check_no_loop_carried_dependency,
    check_parallel_decomposable,
    check_slot_commutative,
)
from repro.analysis.purity import Effect, signal_effects
from repro.analysis.report import (
    explain_signal,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import (
    LintConfig,
    LintContext,
    LintMessage,
    iter_rules,
    lint_signal,
    lint_slot,
    rule,
)

__all__ = [
    "CheckResult",
    "check_slot_commutative",
    "check_no_loop_carried_dependency",
    "check_parallel_decomposable",
    "check_dependency_threading",
    "LintMessage",
    "LintConfig",
    "LintContext",
    "lint_signal",
    "lint_slot",
    "rule",
    "iter_rules",
    "LintRun",
    "run_lint",
    "discover_udfs",
    "DependencyInfo",
    "SignalAst",
    "analyze_signal",
    "parse_signal",
    "CFG",
    "BasicBlock",
    "Instr",
    "build_cfg",
    "Definition",
    "ReachingDefinitions",
    "LiveVariables",
    "def_use_chains",
    "loop_carried_vars",
    "definitely_assigned_at",
    "Effect",
    "signal_effects",
    "AnalyzedSignal",
    "instrument_signal",
    "analyze_and_instrument",
    "KernelSpec",
    "classify_kernel",
    "fold_while",
    "explain_signal",
    "render_text",
    "render_json",
    "render_sarif",
]
