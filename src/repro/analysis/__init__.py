"""UDF analysis and instrumentation (the paper's compiler component)."""

from repro.analysis.ast_analysis import DependencyInfo, analyze_signal
from repro.analysis.dsl import fold_while
from repro.analysis.instrument import (
    AnalyzedSignal,
    analyze_and_instrument,
    instrument_signal,
)
from repro.analysis.properties import (
    CheckResult,
    check_dependency_threading,
    check_no_loop_carried_dependency,
    check_parallel_decomposable,
    check_slot_commutative,
)
from repro.analysis.lint import LintMessage, lint_signal
from repro.analysis.report import explain_signal

__all__ = [
    "CheckResult",
    "check_slot_commutative",
    "check_no_loop_carried_dependency",
    "check_parallel_decomposable",
    "check_dependency_threading",
    "LintMessage",
    "lint_signal",
    "DependencyInfo",
    "analyze_signal",
    "AnalyzedSignal",
    "instrument_signal",
    "analyze_and_instrument",
    "fold_while",
    "explain_signal",
]
