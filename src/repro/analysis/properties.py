"""Empirical checkers for the paper's formal properties (Section 2.2).

The paper formalizes when a vertex function is safe to distribute:

* Definition 2.1 — *associative-decomposable*: ``H = C . I`` with a
  commutative, associative combiner ``C`` (the slot);
* Definition 2.2 — *parallelized* associative-decomposable: ``I`` also
  preserves concatenation, i.e. running the signal independently on
  neighbor sub-sequences and combining gives the sequential answer;
* Definition 2.3 — ``I`` has *no loop-carried dependency* iff
  ``I(u2 | u1) = I(u2)``.

These cannot be decided statically for arbitrary Python, so this module
provides randomized *checkers*: they execute the UDF on sampled neighbor
sequences/splits and report counterexamples.  Engines do not depend on
them; they exist so algorithm authors can validate a new UDF the way
the framework's own test-suite validates the paper's five.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.instrument import AnalyzedSignal, instrument_signal
from repro.engine.dep import DepStore
from repro.engine.state import StateStore

__all__ = [
    "CheckResult",
    "check_slot_commutative",
    "check_no_loop_carried_dependency",
    "check_parallel_decomposable",
    "check_dependency_threading",
]


@dataclass
class CheckResult:
    """Outcome of a randomized property check."""

    holds: bool
    cases_checked: int
    counterexample: Optional[str] = None

    def __bool__(self) -> bool:
        return self.holds


def _run_signal(fn: Callable, v: int, nbrs: Sequence[int], state) -> List:
    emitted: List = []
    fn(v, list(nbrs), state, emitted.append)
    return emitted


def _fold_slot(slot: Callable, values: Sequence, state, v: int):
    for value in values:
        slot(v, value, state)


def check_slot_commutative(
    slot: Callable,
    make_state: Callable[[], StateStore],
    observe: Callable[[StateStore], object],
    value_pool: Sequence,
    v: int = 0,
    trials: int = 50,
    seed: int = 0,
) -> CheckResult:
    """Check Definition 2.1's requirement on the combiner ``C``.

    Applies random update sequences to fresh state in two random orders
    and compares the observation.  ``observe`` extracts the state the
    slot folds into (e.g. ``lambda s: s.count[0]``).
    """
    rng = np.random.default_rng(seed)
    for case in range(trials):
        size = int(rng.integers(0, 6))
        values = [value_pool[int(i)] for i in rng.integers(0, len(value_pool), size)]
        perm = list(values)
        rng.shuffle(perm)
        s1, s2 = make_state(), make_state()
        _fold_slot(slot, values, s1, v)
        _fold_slot(slot, perm, s2, v)
        o1, o2 = observe(s1), observe(s2)
        if not _equal(o1, o2):
            return CheckResult(
                False,
                case + 1,
                f"order {values} -> {o1!r}, order {perm} -> {o2!r}",
            )
    return CheckResult(True, trials)


def check_no_loop_carried_dependency(
    signal: Callable,
    make_state: Callable[[], StateStore],
    neighbor_pool: Sequence[int],
    v: int = 0,
    trials: int = 50,
    seed: int = 0,
) -> CheckResult:
    """Check Definition 2.3 empirically: is ``I(u2 | u1) = I(u2)``?

    Runs the *instrumented* signal on ``u2`` with and without the
    dependency state left behind by ``u1``.  Any difference (in
    emissions or in the skip bit) witnesses a loop-carried dependency.
    """
    analyzed = _analyzed(signal)
    if analyzed.instrumented is None:
        return CheckResult(True, 0)  # nothing carried, trivially free
    rng = np.random.default_rng(seed)
    pool = list(neighbor_pool)
    for case in range(trials):
        rng.shuffle(pool)
        cut = int(rng.integers(0, len(pool)))
        u1, u2 = pool[:cut], pool[cut:]
        state = make_state()

        fresh = DepStore(v + 1, analyzed.info.carried_vars)
        plain = _run_instrumented(analyzed, v, u2, state, fresh)

        threaded = DepStore(v + 1, analyzed.info.carried_vars)
        _run_instrumented(analyzed, v, u1, state, threaded)
        conditioned = _run_instrumented(analyzed, v, u2, state, threaded)

        if plain != conditioned:
            return CheckResult(
                False,
                case + 1,
                f"I({u2}) = {plain} but I({u2}|{u1}) = {conditioned}",
            )
    return CheckResult(True, trials)


def check_parallel_decomposable(
    signal: Callable,
    slot: Callable,
    make_state: Callable[[], StateStore],
    observe: Callable[[StateStore], object],
    neighbor_pool: Sequence[int],
    v: int = 0,
    trials: int = 30,
    max_splits: int = 3,
    seed: int = 0,
) -> CheckResult:
    """Check Definition 2.2: independent per-chunk signals + slot give
    the sequential answer.

    This is the property existing frameworks *require*; the paper's
    point is that many dependency UDFs satisfy it for the final result
    even though the intermediate work differs.
    """
    rng = np.random.default_rng(seed)
    pool = list(neighbor_pool)
    for case in range(trials):
        rng.shuffle(pool)
        nbrs = pool[: int(rng.integers(1, len(pool) + 1))]
        cuts = sorted(
            int(c) for c in rng.integers(1, max(len(nbrs), 2), size=max_splits)
        )
        chunks = _split(nbrs, cuts)

        state_seq = make_state()
        seq_updates = _run_signal(signal, v, nbrs, state_seq)
        _fold_slot(slot, seq_updates, state_seq, v)

        state_par = make_state()
        par_updates: List = []
        for chunk in chunks:
            par_updates.extend(_run_signal(signal, v, chunk, state_par))
        _fold_slot(slot, par_updates, state_par, v)

        o_seq, o_par = observe(state_seq), observe(state_par)
        if not _equal(o_seq, o_par):
            return CheckResult(
                False,
                case + 1,
                f"neighbors {nbrs} split {chunks}: "
                f"sequential -> {o_seq!r}, parallel -> {o_par!r}",
            )
    return CheckResult(True, trials)


def check_dependency_threading(
    signal: Callable,
    make_state: Callable[[], StateStore],
    neighbor_pool: Sequence[int],
    v: int = 0,
    trials: int = 30,
    seed: int = 0,
    normalize: Optional[Callable[[List], object]] = None,
) -> CheckResult:
    """Check the instrumentation contract: threading the dependency
    through arbitrary splits reproduces the sequential emissions
    (Definition 2.4's ``I(u1 (+) u2) = I(u1) (+) I(u2|u1)``).

    Delta-style accumulator UDFs (K-core's count) legitimately emit one
    partial value per chunk instead of one total; pass ``normalize``
    (e.g. ``sum``) to compare the folded value instead of the raw
    emission list.
    """
    analyzed = _analyzed(signal)
    rng = np.random.default_rng(seed)
    pool = list(neighbor_pool)
    for case in range(trials):
        rng.shuffle(pool)
        nbrs = pool[: int(rng.integers(1, len(pool) + 1))]
        state = make_state()
        sequential = _run_signal(analyzed.original, v, nbrs, state)

        if analyzed.instrumented is None:
            distributed = []
            for chunk in _split(nbrs, [len(nbrs) // 2]):
                distributed.extend(
                    _run_signal(analyzed.original, v, chunk, state)
                )
        else:
            store = DepStore(v + 1, analyzed.info.carried_vars)
            distributed = []
            cuts = sorted(
                int(c)
                for c in rng.integers(1, max(len(nbrs), 2), size=2)
            )
            for chunk in _split(nbrs, cuts):
                if store.skip[v]:
                    break
                distributed.extend(
                    _run_instrumented(analyzed, v, chunk, state, store)
                )
        lhs = normalize(sequential) if normalize else sequential
        rhs = normalize(distributed) if normalize else distributed
        if not _equal(lhs, rhs):
            return CheckResult(
                False,
                case + 1,
                f"neighbors {nbrs}: sequential {sequential} != "
                f"threaded {distributed}",
            )
    return CheckResult(True, trials)


# -- helpers ------------------------------------------------------------


def _analyzed(signal: Callable) -> AnalyzedSignal:
    if isinstance(signal, AnalyzedSignal):
        return signal
    return instrument_signal(signal)


def _run_instrumented(
    analyzed: AnalyzedSignal, v: int, nbrs: Sequence[int], state, store: DepStore
) -> List:
    emitted: List = []
    analyzed.instrumented(v, list(nbrs), state, emitted.append, store.handle(v))
    return emitted


def _split(items: Sequence, cuts: Sequence[int]) -> List[List]:
    chunks = []
    prev = 0
    for cut in itertools.chain(sorted(cuts), [len(items)]):
        cut = min(max(cut, prev), len(items))
        chunks.append(list(items[prev:cut]))
        prev = cut
    return [c for c in chunks if True]


def _equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    return a == b
