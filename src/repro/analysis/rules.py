"""Extensible lint engine for signal UDFs, built on the dataflow core.

The seed linter hard-coded three heuristics; this module replaces it
with a small rule registry.  A rule is a function decorated with
:func:`rule` that receives a :class:`LintContext` — the parsed UDF plus
every analysis fact the pipeline already computed (CFG, reaching
definitions, liveness, carried variables, purity effects) — and yields
``(message, node)`` findings.  The engine turns findings into
:class:`LintMessage` records, applies per-line ``# repro: noqa[CODE]``
suppressions and :class:`LintConfig` severity overrides, and orders
warnings before notes.

Rule catalog (rationale lives in each rule's docstring and is exported
into SARIF and ``docs/API.md``):

======================  ========  ==========================================
code                    level     flags
======================  ========  ==========================================
cumulative-emit         warning   emitting a carried accumulator directly
missing-break           note      carried data with no break (no skipping)
emit-after-break        note      unguarded post-loop emit in a break UDF
dead-carried-var        warning   accumulator updated but never read
emit-of-undefined       warning   emit of a possibly-unassigned local
break-unreachable       warning   break that control flow can never reach
global-write            warning   ``global``/``nonlocal`` declarations
state-mutation          warning   writes through parameters/shared state
nondet-call             warning   module-level RNG/clock calls
non-commutative-slot    note      unguarded overwrite in a slot UDF
mutable-capture         warning   closure capture of a mutable global
unordered-iteration     warning   iterating a hash-ordered set
======================  ========  ==========================================

The last two live in :mod:`repro.analysis.verify.determinism` (the
executor-safety analyzer) and register here on import.  Under
:func:`strict_config` — used by ``repro lint --strict`` and the
``verify="strict"`` run mode — ``non-commutative-slot`` is promoted
from note to warning so it affects the exit code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.ast_analysis import (
    DependencyInfo,
    SignalAst,
    analyze_parsed,
    parse_signal,
    _walk_same_scope,
)
from repro.analysis.cfg import CFG, Instr, build_cfg
from repro.analysis.dataflow import LiveVariables, ReachingDefinitions
from repro.analysis.purity import Effect, signal_effects

__all__ = [
    "LintMessage",
    "LintConfig",
    "LintContext",
    "rule",
    "iter_rules",
    "lint_signal",
    "lint_slot",
    "strict_config",
    "STRICT_OVERRIDES",
]

LEVELS = ("error", "warning", "note")


@dataclass(frozen=True)
class LintMessage:
    """One lint finding.

    The first three fields keep the seed's positional layout, so
    ``LintMessage("code", "warning", "text")`` and destructuring by
    position keep working; the location fields default for callers
    that construct messages by hand.
    """

    code: str
    level: str  # "error" | "warning" | "note"
    message: str
    lineno: int = 0  # absolute line in ``path`` (0 = unknown)
    func: str = ""  # UDF the finding belongs to
    path: str = ""  # source file of the UDF

    def __str__(self) -> str:
        return f"{self.level}[{self.code}]: {self.message}"

    @property
    def location(self) -> str:
        """``path:line`` when known, else the function name."""
        if self.path and self.lineno:
            return f"{self.path}:{self.lineno}"
        return self.func or "<unknown>"


@dataclass(frozen=True)
class LintConfig:
    """Severity configuration for a lint run.

    ``overrides`` remaps a rule code to another level (``"error"``,
    ``"warning"``, ``"note"``, or ``"off"`` to drop it); ``disabled``
    is shorthand for mapping to ``"off"``.
    """

    overrides: Dict[str, str] = field(default_factory=dict)
    disabled: frozenset = frozenset()

    def level_for(self, code: str, default: str) -> Optional[str]:
        """Effective level for ``code``; ``None`` means suppressed."""
        if code in self.disabled:
            return None
        level = self.overrides.get(code, default)
        return None if level == "off" else level


# severities promoted under --strict: rules whose default level is
# advisory but whose finding should gate CI when the user opts in
STRICT_OVERRIDES: Dict[str, str] = {
    "non-commutative-slot": "warning",
}


def strict_config(base: Optional[LintConfig] = None) -> LintConfig:
    """A :class:`LintConfig` with the strict promotions applied.

    Explicit overrides in ``base`` win over the strict defaults, so a
    user can still demote a rule under ``--strict``.
    """
    base = base or LintConfig()
    overrides = dict(STRICT_OVERRIDES)
    overrides.update(base.overrides)
    return LintConfig(overrides=overrides, disabled=base.disabled)


@dataclass
class LintContext:
    """Everything a rule may look at: the UDF and its analysis facts."""

    sig: SignalAst
    info: DependencyInfo
    cfg: CFG
    rd: ReachingDefinitions
    live: LiveVariables
    effects: List[Effect]
    carried: frozenset
    emit_name: str

    @property
    def has_break(self) -> bool:
        """Does the neighbor loop carry a control dependency?"""
        return self.info.has_break


class Rule(NamedTuple):
    """Registry entry: code, default severity, checker, rationale."""

    code: str
    level: str
    check: Callable[[LintContext], Iterator[Tuple[str, Optional[ast.AST]]]]
    doc: str


_RULES: Dict[str, Rule] = {}

# findings a rule yields: (message text, AST node or None for UDF-level)
Finding = Tuple[str, Optional[ast.AST]]


def rule(code: str, level: str) -> Callable:
    """Register a lint rule under ``code`` with default severity ``level``.

    The decorated function receives a :class:`LintContext` and yields
    ``(message, node)`` pairs; its docstring is the rule's rationale,
    surfaced in SARIF output and the API docs.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown lint level {level!r}; expected {LEVELS}")

    def register(check: Callable) -> Callable:
        if code in _RULES:
            raise ValueError(f"lint rule {code!r} registered twice")
        _RULES[code] = Rule(code, level, check, (check.__doc__ or "").strip())
        return check

    return register


def iter_rules() -> List[Rule]:
    """All registered rules, sorted by code (stable for reports)."""
    return [_RULES[code] for code in sorted(_RULES)]


# -- suppression -------------------------------------------------------

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s-]*)\])?")


def _noqa_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based source line -> suppressed codes (None = all codes)."""
    suppressed: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None or not codes.strip():
            suppressed[lineno] = None
        else:
            suppressed[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return suppressed


def _is_suppressed(
    noqa: Dict[int, Optional[Set[str]]], code: str, rel_line: int, def_line: int
) -> bool:
    """Does a noqa comment cover ``code`` at function-relative line?"""
    for line in (rel_line, def_line):
        if line in noqa:
            codes = noqa[line]
            if codes is None or code in codes:
                return True
    return False


# -- helpers shared by rules ------------------------------------------


def _emit_calls(node: ast.AST, emit_name: str) -> Iterator[ast.Call]:
    """Emit calls in the same scope (nested defs are opaque)."""
    for child in _walk_same_scope(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == emit_name
        ):
            yield child


def _instr_exprs(instr: Instr) -> List[ast.AST]:
    """Expression roots evaluated *at* this CFG instruction.

    A ``for`` header only evaluates its iterable here (the body lives
    in successor blocks); a ``with`` entry evaluates its context
    expressions.  Everything else is a simple statement or a test
    expression and is its own root.
    """
    node = instr.node
    if instr.kind == "for-header":
        return [node.iter]
    if instr.kind == "with-enter":
        return [item.context_expr for item in node.items]
    return [node]


# -- ported rules ------------------------------------------------------


@rule("cumulative-emit", "warning")
def _cumulative_emit(ctx: LintContext) -> Iterator[Finding]:
    """Emitting a carried accumulator re-reports mass the predecessor
    machine already emitted: under circulant scheduling a machine
    resumes from its predecessor's value, so the master double-counts.
    Emit the local delta instead (snapshot at entry, emit the
    difference — see ``kcore_signal``)."""
    if not ctx.carried:
        return
    for call in _emit_calls(ctx.sig.func, ctx.emit_name):
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in ctx.carried:
                yield (
                    f"emit({arg.id}) passes the carried accumulator "
                    f"{arg.id!r} directly; under dependency propagation "
                    "the master will double-count — emit the local delta "
                    "instead (see kcore_signal)",
                    call,
                )


@rule("missing-break", "note")
def _missing_break(ctx: LintContext) -> Iterator[Finding]:
    """Carried data with no ``break`` means dependency propagation
    cannot skip any work — every machine still scans every neighbor.
    Often intentional (full folds like PageRank), hence a note."""
    if ctx.carried and not ctx.has_break:
        yield (
            f"carried state {sorted(ctx.carried)} without a break: "
            "dependency propagation cannot skip any work for this "
            "UDF (fine for full folds like PageRank)",
            ctx.sig.loop,
        )


@rule("emit-after-break", "note")
def _emit_after_break(ctx: LintContext) -> Iterator[Finding]:
    """An unguarded emit after a break loop fires once per machine
    chunk (each machine reaches the post-loop code), so the value is
    delivered multiple times and correctness rests on slot idempotence.
    Guard it, or derive the value from carried state so duplicates
    cancel (the delta idiom emits zero when nothing was accumulated)."""
    if not ctx.has_break or ctx.sig.loop_index < 0:
        return
    for stmt in ctx.sig.func.body[ctx.sig.loop_index + 1 :]:
        if not isinstance(stmt, ast.Expr):
            continue  # emits under an `if` are guarded: fine
        for call in _emit_calls(stmt, ctx.emit_name):
            if any(
                isinstance(n, ast.Name) and n.id in ctx.carried
                for arg in call.args
                for n in ast.walk(arg)
            ):
                continue  # carried-derived values resume, not repeat
            yield (
                f"unguarded emit after the neighbor loop runs on every "
                "machine chunk under dependency propagation; guard it or "
                "derive the value from carried state",
                call,
            )


# -- dataflow-powered rules --------------------------------------------


@rule("dead-carried-var", "warning")
def _dead_carried_var(ctx: LintContext) -> Iterator[Finding]:
    """A carried variable that is only ever read by its own updates
    (``cnt += 1`` and nothing else) is pure dependency traffic: its
    value crosses machines but never influences an emit, a test, or
    post-loop code.  Drop it or use it."""
    for var in sorted(ctx.carried):
        sites = [
            (b, i)
            for b, i, _ in ctx.cfg.instructions()
            if var in ctx.rd.uses_at(b, i)
        ]
        if sites and all(var in ctx.rd.defs_at(b, i) for b, i in sites):
            yield (
                f"carried variable {var!r} is updated every iteration but "
                "its value is never read — it travels between machines "
                "for nothing; remove it or use it in a test or emit",
                _first_def_node(ctx, var),
            )


def _first_def_node(ctx: LintContext, var: str) -> Optional[ast.AST]:
    """AST node of the first real definition of ``var`` (for location)."""
    best: Optional[Instr] = None
    for d in sorted(ctx.rd.defs_by_var.get(var, ()), key=lambda d: (d.block, d.index)):
        if d.is_real:
            best = ctx.cfg.blocks[d.block].instrs[d.index]
            break
    return best.node if best is not None else None


@rule("emit-of-undefined", "warning")
def _emit_of_undefined(ctx: LintContext) -> Iterator[Finding]:
    """An emit argument that reaching definitions says may still be
    unbound on some path raises ``UnboundLocalError`` at runtime — but
    only on the inputs that take that path, which is exactly the kind
    of machine-dependent failure dependency propagation amplifies."""
    for block_id, index, instr in ctx.cfg.instructions():
        for root in _instr_exprs(instr):
            for call in _emit_calls(root, ctx.emit_name):
                for arg in call.args:
                    if isinstance(arg, ast.Name) and ctx.rd.possibly_undefined(
                        arg.id, block_id, index
                    ):
                        yield (
                            f"emit({arg.id}) may read {arg.id!r} before "
                            "assignment on some path through the UDF; "
                            "initialize it on every path",
                            call,
                        )


@rule("break-unreachable", "warning")
def _break_unreachable(ctx: LintContext) -> Iterator[Finding]:
    """A ``break`` in code control flow can never reach (after an
    unconditional break/continue/return) silently disables the
    skipping the author expected: the analyzer still records a control
    dependency, but no execution ever marks it."""
    reachable = ctx.cfg.reachable()
    for block_id, _, instr in ctx.cfg.instructions():
        if block_id in reachable:
            continue
        if isinstance(instr.node, ast.Break):
            yield (
                "break is unreachable (dead code after an unconditional "
                "jump); the control dependency it implies never fires",
                instr.node,
            )


# -- purity rules ------------------------------------------------------


def _effect_rule(kind: str) -> Callable[[LintContext], Iterator[Finding]]:
    """Adapter turning purity effects of one kind into findings."""

    def check(ctx: LintContext) -> Iterator[Finding]:
        for effect in ctx.effects:
            if effect.kind == kind:
                yield effect.detail, effect.node

    return check


@rule("global-write", "warning")
def _global_write(ctx: LintContext) -> Iterator[Finding]:
    """``global``/``nonlocal`` state written from a signal UDF lives on
    one machine only; replicas diverge silently.  Signals may only
    write their carried locals and call emit."""
    yield from _effect_rule("global-write")(ctx)


@rule("state-mutation", "warning")
def _state_mutation(ctx: LintContext) -> Iterator[Finding]:
    """Mutating objects that arrive through parameters (the state
    namespace, the neighbor view) makes the fold order- and
    partition-dependent.  Cross-machine writes belong in the slot,
    where the master applies them once."""
    yield from _effect_rule("state-mutation")(ctx)


@rule("nondet-call", "warning")
def _nondet_call(ctx: LintContext) -> Iterator[Finding]:
    """Module-level RNGs, clocks, and UUID generators give each machine
    a different answer for the same vertex, so re-running a chunk after
    a dependency message changes the result.  Thread a seeded generator
    through the state parameter (``s.rng``) instead."""
    yield from _effect_rule("nondet-call")(ctx)


# -- engine ------------------------------------------------------------

_LEVEL_ORDER = {"error": 0, "warning": 1, "note": 2}


def lint_signal(
    fn: Callable, config: Optional[LintConfig] = None
) -> List[LintMessage]:
    """Lint a signal UDF; returns an empty list when clean.

    UDFs without a neighbor loop have nothing to propagate and lint
    clean by definition (the seed behavior).  Findings are ordered by
    severity, then source line.
    """
    sig = parse_signal(fn)
    info = analyze_parsed(sig)
    if not info.has_neighbor_loop:
        return []

    cfg = build_cfg(sig.func)
    rd = ReachingDefinitions(cfg, sig.params)
    live = LiveVariables(cfg, rd)
    ctx = LintContext(
        sig=sig,
        info=info,
        cfg=cfg,
        rd=rd,
        live=live,
        effects=signal_effects(sig),
        carried=frozenset(info.carried_vars),
        emit_name=sig.params[3] if len(sig.params) > 3 else "emit",
    )
    return _run_rules(ctx.sig, lambda spec: spec.check(ctx), config)


# in-place update operators whose repeated application commutes (so
# message arrival order cannot change the final state value)
_COMMUTATIVE_SLOT_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.BitOr,
    ast.BitAnd,
    ast.BitXor,
)


def _slot_fold_commutes(target: ast.expr, value: ast.expr) -> bool:
    """Is ``target = value`` a spelled-out commutative fold?

    ``s.x[v] = s.x[v] + e`` (either operand order for the commutative
    operators, left only for ``-``) and ``s.x[v] = min/max(s.x[v], e)``
    are the plain-assignment forms of ``+=``/min-fold updates and are
    just as order-safe.
    """
    # unparse, not dump: dump() embeds the Load/Store ctx, which always
    # differs between the assignment target and the operand reading it
    tsrc = ast.unparse(target)
    if isinstance(value, ast.BinOp) and isinstance(
        value.op, _COMMUTATIVE_SLOT_OPS
    ):
        if ast.unparse(value.left) == tsrc:
            return True
        return not isinstance(value.op, ast.Sub) and (
            ast.unparse(value.right) == tsrc
        )
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("min", "max")
    ):
        return any(ast.unparse(arg) == tsrc for arg in value.args)
    return False


def lint_slot(fn: Callable, config: Optional[LintConfig] = None) -> List[LintMessage]:
    """Lint a slot UDF for the non-commutative-overwrite hazard.

    Messages from different machines arrive in nondeterministic order,
    so a slot that writes into per-vertex state with no guard (no
    comparison ``if``, no first-wins early return) is only correct
    when the update commutes.  Plain assigns are flagged unless they
    spell out a commutative fold (``s.x[v] = s.x[v] + e``,
    ``min``/``max``); augmented assigns are flagged when their operator
    does not commute under reordering (``//=``, ``%=``, ``**=``, ...).
    Flagged as ``non-commutative-slot`` (note by default, warning
    under :func:`strict_config`): the linter cannot prove
    non-commutativity, only that nothing in the slot enforces an
    order.
    """
    sig = parse_signal(fn)
    state_params = set(sig.params[2:]) or {sig.params[-1]}

    def _state_subscript(target: ast.expr) -> bool:
        return (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id in state_params
        )

    def check(spec: Rule) -> Iterator[Finding]:
        if spec.code != "non-commutative-slot":
            return
        guarded = False
        for stmt in sig.func.body:
            if isinstance(stmt, ast.If):
                guarded = True  # comparison guard or first-wins return
            if guarded:
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if _state_subscript(target) and not _slot_fold_commutes(
                        target, stmt.value
                    ):
                        yield (
                            f"slot overwrites {ast.unparse(target)} with no "
                            "guard; message arrival order is nondeterministic "
                            "across machines, so a plain overwrite is only "
                            "safe if the update commutes — guard with a "
                            "comparison or fold with +=/min/max",
                            stmt,
                        )
            elif isinstance(stmt, ast.AugAssign):
                if _state_subscript(stmt.target) and not isinstance(
                    stmt.op, _COMMUTATIVE_SLOT_OPS
                ):
                    yield (
                        f"slot folds {ast.unparse(stmt.target)} with "
                        f"non-commutative operator "
                        f"{type(stmt.op).__name__}; message arrival order "
                        "is nondeterministic across machines — use "
                        "+=/min/max or guard with a comparison",
                        stmt,
                    )

    return _run_rules(sig, check, config)


@rule("non-commutative-slot", "note")
def _non_commutative_slot(ctx: LintContext) -> Iterator[Finding]:
    """Unguarded plain overwrite of per-vertex state in a slot UDF;
    only safe when the update is commutative because cross-machine
    message order is nondeterministic.  Checked by :func:`lint_slot`
    (slots have no neighbor loop, so the signal pipeline never fires
    this)."""
    return iter(())


def _run_rules(
    sig: SignalAst,
    findings_of: Callable[[Rule], Optional[Iterator[Finding]]],
    config: Optional[LintConfig],
) -> List[LintMessage]:
    """Run every registered rule and post-process the findings."""
    config = config or LintConfig()
    noqa = _noqa_lines(sig.source)
    def_line = sig.func.lineno
    messages: List[LintMessage] = []
    for spec in iter_rules():
        level = config.level_for(spec.code, spec.level)
        if level is None:
            continue
        for text, node in findings_of(spec) or ():
            rel_line = getattr(node, "lineno", 0) if node is not None else 0
            if _is_suppressed(noqa, spec.code, rel_line, def_line):
                continue
            messages.append(
                LintMessage(
                    code=spec.code,
                    level=level,
                    message=text,
                    lineno=(rel_line + sig.line_offset) if rel_line else 0,
                    func=sig.func.name,
                    path=sig.filename,
                )
            )
    messages.sort(key=lambda m: (_LEVEL_ORDER.get(m.level, 3), m.lineno, m.code))
    return messages


# Importing the determinism module registers the executor-safety rules
# (mutable-capture, unordered-iteration) in this module's registry.  It
# lives at the bottom because determinism.py imports Finding/LintContext
# /rule from here; by this point every name it needs is defined.
from repro.analysis.verify import determinism as _determinism  # noqa: E402,F401
