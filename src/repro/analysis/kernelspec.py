"""Kernel classification pass: match analyzed UDFs to vectorizable shapes.

The analyzer (PR 1) already proves *what* a signal UDF does with its
neighbor loop — whether it breaks, which variables it carries.  This
pass goes one step further and asks whether the UDF is an instance of a
shape the framework can execute as a **batched NumPy CSR kernel**
instead of interpreting it once per vertex (GPOP-style partition-wise
batching meets Palgol-style UDF compilation):

* ``first_match_break`` — scan until the first neighbor satisfying a
  pure state predicate, emit once, break (bottom-up BFS, MIS);
* ``count_to_k_break`` — count neighbors satisfying a predicate and
  break when the running count saturates at a threshold (K-core);
* ``full_scan_sum`` — fold every neighbor term into a running sum and
  emit the delta (PageRank);
* ``full_scan_min`` — fold the minimum of a neighbor key and emit it
  when it improves (label-propagation CC).

Classification is *best effort and conservative*: any statement,
expression, or side effect outside the recognized grammar simply
yields no :class:`KernelSpec`, and the engines fall back to the
per-vertex interpreter.  A spec therefore never changes semantics —
the kernels reproduce the interpreter's results, counters, and
byte accounting bit for bit (asserted by the equivalence suite).

Expressions inside a shape (predicates, emitted values, fold terms,
thresholds) are restricted to pure reads: state arrays indexed by the
loop variable or the destination vertex (``s.frontier[u]``,
``s.color[v]``), state scalars (``s.k``), constants, arithmetic,
comparisons, and boolean connectives.  They are recompiled into
vectorized evaluators over NumPy index arrays (``and``/``or``/``not``
become ``&``/``|``/``~``).
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.ast_analysis import DependencyInfo, SignalAst
from repro.analysis.purity import signal_effects

__all__ = [
    "KernelSpec",
    "classify_kernel",
    "FIRST_MATCH_BREAK",
    "COUNT_TO_K_BREAK",
    "FULL_SCAN_SUM",
    "FULL_SCAN_MIN",
]

FIRST_MATCH_BREAK = "first_match_break"
COUNT_TO_K_BREAK = "count_to_k_break"
FULL_SCAN_SUM = "full_scan_sum"
FULL_SCAN_MIN = "full_scan_min"


class _NoMatch(Exception):
    """Internal control flow: the UDF is not an instance of this shape."""


@dataclass
class KernelSpec:
    """A signal UDF's compiled-to-kernel classification.

    ``exprs`` maps expression roles to vectorized evaluators with the
    uniform signature ``fn(state, u, v) -> ndarray | scalar`` where
    ``u`` is the flat array of neighbor ids under evaluation and ``v``
    the (broadcast) array of destination vertices.  Roles by kind:

    * ``first_match_break`` — ``predicate``, ``emit``;
    * ``count_to_k_break`` — ``predicate``, ``threshold``, ``init``;
    * ``full_scan_sum`` — ``term``, ``init``;
    * ``full_scan_min`` — ``term`` (the neighbor key), ``init``.

    ``sources`` holds the unparse of each compiled expression so users
    can inspect what the classifier extracted, mirroring
    ``AnalyzedSignal.instrumented_source``.
    """

    kind: str
    arrays: Tuple[str, ...]
    scalars: Tuple[str, ...]
    carried_vars: Tuple[str, ...]
    sources: Dict[str, str]
    exprs: Dict[str, Callable] = field(repr=False, default_factory=dict)

    def compatible(self, state) -> bool:
        """Can this spec run against ``state``'s current field layout?

        Checked once per pull before dispatching batches: every array
        the expressions read must exist as a 1-D per-vertex ndarray and
        every scalar must not be an array (a field rebound to something
        else silently falls back to the interpreter).
        """
        for name in self.arrays:
            if name not in state:
                return False
            value = getattr(state, name)
            if not isinstance(value, np.ndarray):
                return False
            if value.ndim != 1 or value.shape[0] != state.num_vertices:
                return False
        for name in self.scalars:
            if name not in state:
                return False
            value = getattr(state, name)
            if isinstance(value, np.ndarray) and value.ndim != 0:
                return False
        return True


# -- expression compilation ------------------------------------------------

_ALLOWED_BINOPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)
_ALLOWED_CMPOPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class _ExprRewriter:
    """Rewrite a UDF expression into its vectorized counterpart.

    Collects the state arrays/scalars it reads along the way and
    rejects (via :class:`_NoMatch`) anything outside the pure-read
    expression grammar documented in the module docstring.
    """

    def __init__(
        self, state_name: str, v_name: str, u_name: Optional[str]
    ) -> None:
        self.state_name = state_name
        self.v_name = v_name
        self.u_name = u_name
        self.arrays: List[str] = []
        self.scalars: List[str] = []

    def rewrite(self, node: ast.expr) -> ast.expr:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float, bool)):
                raise _NoMatch("non-numeric constant")
            return ast.Constant(value=node.value)
        if isinstance(node, ast.Name):
            if node.id == self.u_name:
                return ast.Name(id="__u", ctx=ast.Load())
            if node.id == self.v_name:
                return ast.Name(id="__v", ctx=ast.Load())
            raise _NoMatch(f"free variable {node.id!r}")
        if isinstance(node, ast.Attribute):
            return self._state_attr(node, as_scalar=True)
        if isinstance(node, ast.Subscript):
            if not isinstance(node.value, ast.Attribute):
                raise _NoMatch("subscript of non-state value")
            target = self._state_attr(node.value, as_scalar=False)
            index = node.slice
            if not isinstance(index, ast.Name):
                raise _NoMatch("array index must be the loop or vertex var")
            return ast.Subscript(
                value=target, slice=self.rewrite(index), ctx=ast.Load()
            )
        if isinstance(node, ast.BoolOp):
            op = ast.BitAnd() if isinstance(node.op, ast.And) else ast.BitOr()
            out = self.rewrite(node.values[0])
            for value in node.values[1:]:
                out = ast.BinOp(left=out, op=op, right=self.rewrite(value))
            return out
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return ast.UnaryOp(
                    op=ast.Invert(), operand=self.rewrite(node.operand)
                )
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return ast.UnaryOp(
                    op=copy.copy(node.op), operand=self.rewrite(node.operand)
                )
            raise _NoMatch("unsupported unary operator")
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, _ALLOWED_BINOPS):
                raise _NoMatch("unsupported binary operator")
            return ast.BinOp(
                left=self.rewrite(node.left),
                op=copy.copy(node.op),
                right=self.rewrite(node.right),
            )
        if isinstance(node, ast.Compare):
            if not all(isinstance(op, _ALLOWED_CMPOPS) for op in node.ops):
                raise _NoMatch("unsupported comparison")
            return ast.Compare(
                left=self.rewrite(node.left),
                ops=[copy.copy(op) for op in node.ops],
                comparators=[self.rewrite(c) for c in node.comparators],
            )
        raise _NoMatch(f"unsupported expression node {type(node).__name__}")

    def _state_attr(self, node: ast.Attribute, as_scalar: bool) -> ast.expr:
        if not (
            isinstance(node.value, ast.Name)
            and node.value.id == self.state_name
        ):
            raise _NoMatch("attribute access on non-state object")
        if as_scalar:
            self.scalars.append(node.attr)
        else:
            self.arrays.append(node.attr)
        return ast.Attribute(
            value=ast.Name(id="__state", ctx=ast.Load()),
            attr=node.attr,
            ctx=ast.Load(),
        )


def _compile_expr(
    expr: ast.expr,
    state_name: str,
    v_name: str,
    u_name: Optional[str],
) -> Tuple[Callable, str, List[str], List[str]]:
    """Compile a UDF expression into ``fn(state, u, v)``.

    ``u_name=None`` forbids the loop variable (thresholds and initial
    values are evaluated outside the neighbor loop).
    """
    rewriter = _ExprRewriter(state_name, v_name, u_name)
    body = rewriter.rewrite(expr)
    func = ast.FunctionDef(
        name="__kernel_expr",
        args=ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg="__state"), ast.arg(arg="__u"), ast.arg(arg="__v")],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        ),
        body=[ast.Return(value=body)],
        decorator_list=[],
        returns=None,
    )
    module = ast.Module(body=[func], type_ignores=[])
    ast.fix_missing_locations(module)
    namespace: Dict[str, object] = {}
    exec(  # noqa: S102 - compiling our own restricted rewrite
        compile(module, filename="<kernel-expr>", mode="exec"), namespace
    )
    return (
        namespace["__kernel_expr"],
        ast.unparse(body),
        rewriter.arrays,
        rewriter.scalars,
    )


# -- shape matching --------------------------------------------------------


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _single_target(stmt: ast.stmt) -> Optional[str]:
    """Name bound by a simple single-target assignment, if any."""
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    return None


def _emit_arg(stmt: ast.stmt, emit_name: str) -> ast.expr:
    """Argument of an ``emit(<expr>)`` statement, or raise."""
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == emit_name
        and len(stmt.value.args) == 1
        and not stmt.value.keywords
    ):
        return stmt.value.args[0]
    raise _NoMatch("expected a single emit(<expr>) call")


def _plain_if(stmt: ast.stmt) -> ast.If:
    if isinstance(stmt, ast.If) and not stmt.orelse:
        return stmt
    raise _NoMatch("expected an if without else")


def _same_expr(a: ast.expr, b: ast.expr) -> bool:
    return ast.dump(a) == ast.dump(b)


@dataclass
class _Shape:
    """Parsed pieces of a candidate UDF, shared by the matchers."""

    sig: SignalAst
    info: DependencyInfo
    v_name: str
    state_name: str
    emit_name: str
    u_name: str
    pre: List[ast.stmt]
    body: List[ast.stmt]
    post: List[ast.stmt]


def _build_spec(kind: str, shape: _Shape, roles: Dict[str, Tuple[ast.expr, bool]]) -> KernelSpec:
    """Compile every role expression and assemble the spec.

    ``roles`` maps role name to ``(expr, allow_loop_var)``.
    """
    exprs: Dict[str, Callable] = {}
    sources: Dict[str, str] = {}
    arrays: List[str] = []
    scalars: List[str] = []
    for role, (expr, allow_u) in roles.items():
        fn, source, arrs, scs = _compile_expr(
            expr,
            shape.state_name,
            shape.v_name,
            shape.u_name if allow_u else None,
        )
        exprs[role] = fn
        sources[role] = source
        arrays.extend(arrs)
        scalars.extend(scs)
    return KernelSpec(
        kind=kind,
        arrays=tuple(dict.fromkeys(arrays)),
        scalars=tuple(dict.fromkeys(scalars)),
        carried_vars=shape.info.carried_vars,
        sources=sources,
        exprs=exprs,
    )


def _match_first_match(shape: _Shape) -> KernelSpec:
    """``for u in nbrs: if pred(u, v): emit(value); break``"""
    if shape.pre or shape.post or shape.info.carried_vars:
        raise _NoMatch("first-match shape has no pre/post statements")
    if len(shape.body) != 1:
        raise _NoMatch("loop body must be a single if")
    iff = _plain_if(shape.body[0])
    if len(iff.body) != 2 or not isinstance(iff.body[1], ast.Break):
        raise _NoMatch("if body must be emit-then-break")
    emit_expr = _emit_arg(iff.body[0], shape.emit_name)
    return _build_spec(
        FIRST_MATCH_BREAK,
        shape,
        {"predicate": (iff.test, True), "emit": (emit_expr, True)},
    )


def _match_count_to_k(shape: _Shape) -> KernelSpec:
    """Running count with saturation break (K-core's Figure 3b shape)."""
    if len(shape.pre) != 2 or len(shape.post) != 1 or len(shape.body) != 1:
        raise _NoMatch("count shape is init/snapshot + loop + emit-delta")
    cnt = _single_target(shape.pre[0])
    start = _single_target(shape.pre[1])
    if cnt is None or start is None or cnt == start:
        raise _NoMatch("expected counter and snapshot assignments")
    snapshot = shape.pre[1].value
    if not (isinstance(snapshot, ast.Name) and snapshot.id == cnt):
        raise _NoMatch("snapshot must copy the counter")
    if shape.info.carried_vars != (cnt,):
        raise _NoMatch("only the counter may be carried")

    iff = _plain_if(shape.body[0])
    if len(iff.body) != 2:
        raise _NoMatch("predicate body must be increment + saturation test")
    inc, sat = iff.body
    if not (
        isinstance(inc, ast.AugAssign)
        and isinstance(inc.op, ast.Add)
        and isinstance(inc.target, ast.Name)
        and inc.target.id == cnt
        and isinstance(inc.value, ast.Constant)
        and inc.value.value == 1
    ):
        raise _NoMatch("increment must be cnt += 1")
    sat_if = _plain_if(sat)
    if not (
        len(sat_if.body) == 1
        and isinstance(sat_if.body[0], ast.Break)
        and isinstance(sat_if.test, ast.Compare)
        and len(sat_if.test.ops) == 1
        and isinstance(sat_if.test.ops[0], ast.GtE)
        and isinstance(sat_if.test.left, ast.Name)
        and sat_if.test.left.id == cnt
    ):
        raise _NoMatch("saturation must be `if cnt >= k: break`")
    threshold = sat_if.test.comparators[0]

    post_if = _plain_if(shape.post[0])
    if not (
        isinstance(post_if.test, ast.Compare)
        and len(post_if.test.ops) == 1
        and isinstance(post_if.test.ops[0], ast.Gt)
        and isinstance(post_if.test.left, ast.Name)
        and post_if.test.left.id == cnt
        and isinstance(post_if.test.comparators[0], ast.Name)
        and post_if.test.comparators[0].id == start
        and len(post_if.body) == 1
    ):
        raise _NoMatch("tail must be `if cnt > start: emit(cnt - start)`")
    delta = _emit_arg(post_if.body[0], shape.emit_name)
    if not (
        isinstance(delta, ast.BinOp)
        and isinstance(delta.op, ast.Sub)
        and isinstance(delta.left, ast.Name)
        and delta.left.id == cnt
        and isinstance(delta.right, ast.Name)
        and delta.right.id == start
    ):
        raise _NoMatch("emitted value must be the count delta")
    return _build_spec(
        COUNT_TO_K_BREAK,
        shape,
        {
            "predicate": (iff.test, True),
            "threshold": (threshold, False),
            "init": (shape.pre[0].value, False),
        },
    )


def _match_full_scan_sum(shape: _Shape) -> KernelSpec:
    """Unconditional sum fold with delta emit (PageRank's shape)."""
    if len(shape.pre) != 2 or len(shape.post) != 1 or len(shape.body) != 1:
        raise _NoMatch("sum shape is init/snapshot + fold + emit-delta")
    total = _single_target(shape.pre[0])
    start = _single_target(shape.pre[1])
    if total is None or start is None or total == start:
        raise _NoMatch("expected accumulator and snapshot assignments")
    snapshot = shape.pre[1].value
    if not (isinstance(snapshot, ast.Name) and snapshot.id == total):
        raise _NoMatch("snapshot must copy the accumulator")
    if shape.info.carried_vars != (total,):
        raise _NoMatch("only the accumulator may be carried")
    fold = shape.body[0]
    if not (
        isinstance(fold, ast.AugAssign)
        and isinstance(fold.op, ast.Add)
        and isinstance(fold.target, ast.Name)
        and fold.target.id == total
    ):
        raise _NoMatch("fold must be `total += term`")
    post_if = _plain_if(shape.post[0])
    if not (
        isinstance(post_if.test, ast.Compare)
        and len(post_if.test.ops) == 1
        and isinstance(post_if.test.ops[0], ast.Gt)
        and isinstance(post_if.test.left, ast.Name)
        and post_if.test.left.id == total
        and isinstance(post_if.test.comparators[0], ast.Name)
        and post_if.test.comparators[0].id == start
        and len(post_if.body) == 1
    ):
        raise _NoMatch("tail must be `if total > start: emit(total - start)`")
    delta = _emit_arg(post_if.body[0], shape.emit_name)
    if not (
        isinstance(delta, ast.BinOp)
        and isinstance(delta.op, ast.Sub)
        and isinstance(delta.left, ast.Name)
        and delta.left.id == total
        and isinstance(delta.right, ast.Name)
        and delta.right.id == start
    ):
        raise _NoMatch("emitted value must be the sum delta")
    return _build_spec(
        FULL_SCAN_SUM,
        shape,
        {"term": (fold.value, True), "init": (shape.pre[0].value, False)},
    )


def _match_full_scan_min(shape: _Shape) -> KernelSpec:
    """Minimum fold with improvement emit (label-propagation CC)."""
    if len(shape.pre) != 1 or len(shape.post) != 1 or len(shape.body) != 1:
        raise _NoMatch("min shape is init + fold + emit-if-improved")
    best = _single_target(shape.pre[0])
    if best is None:
        raise _NoMatch("expected a fold-variable assignment")
    if shape.info.carried_vars != (best,):
        raise _NoMatch("only the fold variable may be carried")
    init_expr = shape.pre[0].value
    iff = _plain_if(shape.body[0])
    if not (
        isinstance(iff.test, ast.Compare)
        and len(iff.test.ops) == 1
        and isinstance(iff.test.ops[0], ast.Lt)
        and isinstance(iff.test.comparators[0], ast.Name)
        and iff.test.comparators[0].id == best
        and len(iff.body) == 1
    ):
        raise _NoMatch("fold must be `if key < best: best = key`")
    assign = iff.body[0]
    if not (
        _single_target(assign) == best
        and _same_expr(assign.value, iff.test.left)
    ):
        raise _NoMatch("fold must assign the compared key")
    post_if = _plain_if(shape.post[0])
    if not (
        isinstance(post_if.test, ast.Compare)
        and len(post_if.test.ops) == 1
        and isinstance(post_if.test.ops[0], ast.Lt)
        and isinstance(post_if.test.left, ast.Name)
        and post_if.test.left.id == best
        and _same_expr(post_if.test.comparators[0], init_expr)
        and len(post_if.body) == 1
    ):
        raise _NoMatch("tail must be `if best < init: emit(best)`")
    emitted = _emit_arg(post_if.body[0], shape.emit_name)
    if not (isinstance(emitted, ast.Name) and emitted.id == best):
        raise _NoMatch("emitted value must be the fold result")
    return _build_spec(
        FULL_SCAN_MIN,
        shape,
        {"term": (iff.test.left, True), "init": (init_expr, False)},
    )


_MATCHERS = (
    _match_first_match,
    _match_count_to_k,
    _match_full_scan_sum,
    _match_full_scan_min,
)


def classify_kernel(
    sig: SignalAst, info: DependencyInfo
) -> Optional[KernelSpec]:
    """Classify a parsed signal UDF against the known kernel shapes.

    Returns ``None`` whenever the UDF falls outside the grammar, has
    side effects (per :func:`repro.analysis.purity.signal_effects`),
    or anything at all goes wrong — classification is an optimization
    hint and must never fail an analysis that would otherwise succeed.
    """
    try:
        loop = sig.loop
        if loop is None or loop.orelse or len(sig.params) < 4:
            return None
        if not isinstance(loop.target, ast.Name):
            return None
        if signal_effects(sig):
            return None
        shape = _Shape(
            sig=sig,
            info=info,
            v_name=sig.params[0],
            state_name=sig.params[2],
            emit_name=sig.params[3],
            u_name=loop.target.id,
            pre=[
                stmt
                for stmt in sig.func.body[: sig.loop_index]
                if not _is_docstring(stmt)
            ],
            body=list(loop.body),
            post=list(sig.func.body[sig.loop_index + 1 :]),
        )
        for matcher in _MATCHERS:
            try:
                return matcher(shape)
            except _NoMatch:
                continue
        return None
    except Exception:  # pragma: no cover - defensive: never break analysis
        return None
