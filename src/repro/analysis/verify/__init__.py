"""Soundness certifier: abstract interpretation for kernel contracts.

This subpackage turns two dynamic hopes into machine-checked, purely
static verdicts:

* **kernel soundness** — every :class:`~repro.analysis.kernelspec.KernelSpec`
  the classifier produces is cross-checked against an independent
  abstract interpretation of the UDF
  (:mod:`~repro.analysis.verify.interp` derives types, fold
  order-sensitivity, and read effects over the CFG;
  :mod:`~repro.analysis.verify.contracts` re-derives each shape's
  obligations).  A classification whose contract does not hold raises
  :class:`~repro.errors.KernelSoundnessError` with a cited program
  point.
* **executor determinism** — hazards that would break the parallel
  backends' bit-identical guarantee are flagged as lint rules
  (:mod:`~repro.analysis.verify.determinism`).

The driver here packages both into per-UDF :class:`UdfVerdict`\\ s and
an aggregated :class:`VerifyReport` with CI exit-code semantics,
behind three entry points mirroring the linter: :func:`verify_signal`,
:func:`verify_slot`, :func:`verify_targets`.  The same verdicts gate
execution through ``RunConfig(verify=...)`` and the ``repro verify``
CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.ast_analysis import analyze_parsed, parse_signal
from repro.analysis.kernelspec import classify_kernel
from repro.analysis.rules import LintConfig, LintMessage, lint_signal, lint_slot
from repro.analysis.verify.contracts import (
    CONTRACTS,
    certify_spec,
    contract_kinds,
    uncontracted_kernels,
)
from repro.analysis.verify.domain import FoldKind
from repro.analysis.verify.interp import UdfSummary, summarize
from repro.errors import AnalysisError, KernelSoundnessError

__all__ = [
    "UdfVerdict",
    "VerifyReport",
    "verify_signal",
    "verify_slot",
    "verify_targets",
    "summarize",
    "UdfSummary",
    "certify_spec",
    "contract_kinds",
    "uncontracted_kernels",
    "CONTRACTS",
    "FoldKind",
    "KernelSoundnessError",
]

# verdict statuses, roughly worst-to-best
UNSOUND = "unsound"
ERROR = "error"
CERTIFIED = "certified"
UNCLASSIFIED = "unclassified"
NO_LOOP = "no-loop"
CHECKED = "checked"
REGISTRY = "registry"  # synthetic per-run verdict, not a UDF


@dataclass
class UdfVerdict:
    """Verification outcome for one UDF.

    ``status`` is ``"certified"`` (a kernel classification exists and
    its contract holds), ``"unsound"`` (the contract was refuted —
    always accompanied by an error-level ``kernel-unsound`` message),
    ``"unclassified"`` (neighbor loop but no kernel shape — the
    per-vertex interpreter runs, nothing to certify), ``"no-loop"``,
    ``"checked"`` (slots: lint rules only), ``"error"`` (the analyzer
    rejected the UDF), or ``"registry"`` (the synthetic per-run entry
    carrying registry-coverage warnings — not a UDF, excluded from the
    summary tally).
    """

    name: str
    kind: str  # "signal" | "slot" | "registry"
    status: str
    messages: List[LintMessage] = field(default_factory=list)
    spec_kind: Optional[str] = None

    @property
    def certified(self) -> bool:
        """Did a kernel classification pass its contract?"""
        return self.status == CERTIFIED


@dataclass
class VerifyReport:
    """Aggregated outcome of verifying one or more targets."""

    verdicts: List[UdfVerdict] = field(default_factory=list)

    @property
    def messages(self) -> List[LintMessage]:
        """Every finding, in verdict order."""
        return [m for v in self.verdicts for m in v.messages]

    @property
    def errors(self) -> List[LintMessage]:
        """Error-level findings (unsound kernels, analyzer rejections)."""
        return [m for m in self.messages if m.level == "error"]

    @property
    def warnings(self) -> List[LintMessage]:
        """Warning-level findings (determinism hazards and friends)."""
        return [m for m in self.messages if m.level == "warning"]

    @property
    def exit_code(self) -> int:
        """CI semantics, matching ``repro lint``: 2 errors, 1 warnings."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def summary(self) -> str:
        """One-line tally for the end of text output."""
        udfs = [v for v in self.verdicts if v.status != REGISTRY]
        certified = sum(1 for v in udfs if v.certified)
        unsound = sum(1 for v in udfs if v.status == UNSOUND)
        return (
            f"verified {len(udfs)} UDF(s): {certified} "
            f"certified, {unsound} unsound, {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )


def _config(strict: bool, config: Optional[LintConfig]) -> Optional[LintConfig]:
    if config is not None:
        return config
    if strict:
        from repro.analysis.rules import strict_config

        return strict_config()
    return None


def verify_signal(
    fn: Callable,
    strict: bool = False,
    config: Optional[LintConfig] = None,
    name: Optional[str] = None,
) -> UdfVerdict:
    """Verify one signal UDF: lint rules plus kernel certification.

    Purely static — neither the UDF nor any kernel runs.  ``strict``
    applies the promoted severities of
    :func:`repro.analysis.rules.strict_config` to the lint pass (the
    certification verdict is always error-level when refuted).
    """
    qualname = name or getattr(fn, "__name__", str(fn))
    verdict = UdfVerdict(name=qualname, kind="signal", status=NO_LOOP)
    try:
        sig = parse_signal(fn)
        info = analyze_parsed(sig)
        verdict.messages.extend(lint_signal(fn, _config(strict, config)))
    except AnalysisError as exc:
        verdict.status = ERROR
        verdict.messages.append(
            LintMessage("analysis-error", "error", f"{qualname}: {exc}",
                        func=qualname)
        )
        return verdict
    if not info.has_neighbor_loop:
        return verdict
    spec = classify_kernel(sig, info)
    if spec is None:
        verdict.status = UNCLASSIFIED
        verdict.messages.append(
            LintMessage(
                "kernel-unclassified",
                "note",
                f"{qualname} has no kernel classification; the "
                "per-vertex interpreter runs it (nothing to certify)",
                lineno=sig.func.lineno + sig.line_offset,
                func=qualname,
                path=sig.filename,
            )
        )
        return verdict
    verdict.spec_kind = spec.kind
    try:
        certify_spec(sig, info, spec)
    except KernelSoundnessError as exc:
        verdict.status = UNSOUND
        lineno = 0
        path = sig.filename
        if exc.program_point:
            path, _, line = exc.program_point.rpartition(":")
            lineno = int(line) if line.isdigit() else 0
        verdict.messages.append(
            LintMessage(
                "kernel-unsound",
                "error",
                f"{qualname}: {exc}",
                lineno=lineno,
                func=qualname,
                path=path or sig.filename,
            )
        )
        return verdict
    verdict.status = CERTIFIED
    verdict.messages.append(
        LintMessage(
            "kernel-certified",
            "note",
            f"{qualname}: {spec.kind} classification certified "
            "(shape and common obligations hold)",
            lineno=sig.func.lineno + sig.line_offset,
            func=qualname,
            path=sig.filename,
        )
    )
    return verdict


def verify_slot(
    fn: Callable,
    strict: bool = False,
    config: Optional[LintConfig] = None,
    name: Optional[str] = None,
) -> UdfVerdict:
    """Verify one slot UDF (the commutativity lint, strict-aware)."""
    qualname = name or getattr(fn, "__name__", str(fn))
    verdict = UdfVerdict(name=qualname, kind="slot", status=CHECKED)
    try:
        verdict.messages.extend(lint_slot(fn, _config(strict, config)))
    except AnalysisError as exc:
        verdict.status = ERROR
        verdict.messages.append(
            LintMessage("analysis-error", "error", f"{qualname}: {exc}",
                        func=qualname)
        )
    return verdict


def verify_targets(
    targets: List[str],
    strict: bool = False,
    config: Optional[LintConfig] = None,
    named_signals: Optional[dict] = None,
) -> VerifyReport:
    """Verify every UDF found under ``targets``.

    Target resolution (files, directories, dotted modules, built-in
    algorithm names) reuses the linter's discovery; registered kernel
    kinds without a certification contract are surfaced once per run
    as ``kernel-no-contract`` warnings.
    """
    # deferred: repro.analysis.linter imports the rules module, whose
    # import in turn registers this package's determinism rules
    from repro.analysis.linter import _load_module, discover_udfs

    report = VerifyReport()
    named_signals = named_signals or {}
    for target in targets:
        if target in named_signals:
            report.verdicts.append(
                verify_signal(
                    named_signals[target], strict, config, name=target
                )
            )
            continue
        try:
            modules = _load_module(target)
        except AnalysisError as exc:
            report.verdicts.append(
                UdfVerdict(
                    name=target,
                    kind="signal",
                    status=ERROR,
                    messages=[
                        LintMessage("load-error", "error", str(exc),
                                    func=target)
                    ],
                )
            )
            continue
        for module in modules:
            for name, fn, kind in discover_udfs(module):
                qualname = f"{module.__name__}.{name}"
                if kind == "slot":
                    report.verdicts.append(
                        verify_slot(fn, strict, config, name=qualname)
                    )
                else:
                    report.verdicts.append(
                        verify_signal(fn, strict, config, name=qualname)
                    )
    uncovered = uncontracted_kernels()
    if uncovered:
        report.verdicts.append(
            UdfVerdict(
                name="<kernel-registry>",
                kind="registry",
                status=REGISTRY,
                messages=[
                    LintMessage(
                        "kernel-no-contract",
                        "warning",
                        f"registered kernel kind(s) {uncovered} have no "
                        "certification contract; classifications of "
                        "these kinds cannot be verified",
                    )
                ],
            )
        )
    return report
