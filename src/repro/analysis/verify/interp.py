"""Abstract interpretation of signal UDFs over the CFG/dataflow IR.

:func:`summarize` runs a classic worklist fixpoint over the UDF's
basic-block CFG (:mod:`repro.analysis.cfg`) with the type lattice of
:mod:`repro.analysis.verify.domain` as the abstract state — one type
per variable, joined at control-flow merges — and derives, per
variable and per program point:

* an abstract **type** for every local (and so for every emitted
  value),
* the **fold classification** of every variable updated inside the
  neighbor loop (count / sum / min / max / overwrite / opaque), the
  order-sensitivity fact the kernel contracts turn on,
* the **read effect set**: every state field touched, split into
  per-element array reads (with their index variable) and scalars,
* every **emit site** and **break site** with its region and guard
  stack,
* the purity effects of :func:`repro.analysis.purity.signal_effects`.

Everything is derived from the AST and the dataflow fixpoint — no UDF
code runs.  The result (:class:`UdfSummary`) is the single input of
the contract certifier in :mod:`repro.analysis.verify.contracts`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.ast_analysis import DependencyInfo, SignalAst, analyze_parsed
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import ReachingDefinitions
from repro.analysis.purity import Effect, signal_effects
from repro.analysis.verify.domain import (
    BOOL,
    BOTTOM,
    FLOAT,
    INT,
    NUM,
    OBJECT,
    TOP,
    BreakSite,
    EmitSite,
    FoldKind,
    StateRead,
    fold_join,
    type_join,
)

__all__ = ["UdfSummary", "summarize"]


@dataclass
class UdfSummary:
    """Everything the abstract interpreter proved about one signal UDF."""

    sig: SignalAst
    info: DependencyInfo
    cfg: CFG
    rd: ReachingDefinitions
    var_types: Dict[str, str]
    folds: Dict[str, str]
    fold_sites: Dict[str, List[ast.AST]]
    state_reads: Tuple[StateRead, ...]
    emits: Tuple[EmitSite, ...]
    breaks: Tuple[BreakSite, ...]
    effects: List[Effect] = field(default_factory=list)

    # -- queries -------------------------------------------------------

    def fold_of(self, var: str) -> str:
        """Fold classification of ``var`` inside the neighbor loop."""
        return self.folds.get(var, FoldKind.NONE)

    def order_insensitive(self, var: str) -> bool:
        """May the neighbor sequence be reordered/resumed for ``var``?"""
        return self.fold_of(var) in FoldKind.ORDER_INSENSITIVE

    def arrays_read(self) -> Tuple[str, ...]:
        """State fields read per-element, first-read order."""
        seen = dict.fromkeys(
            r.attr for r in self.state_reads if r.kind == "array"
        )
        return tuple(seen)

    def scalars_read(self) -> Tuple[str, ...]:
        """State fields read as scalars, first-read order."""
        seen = dict.fromkeys(
            r.attr for r in self.state_reads if r.kind == "scalar"
        )
        return tuple(seen)

    def type_of_expr(self, node: ast.expr) -> str:
        """Abstract type of an expression under the fixpoint env."""
        return _eval_type(node, self.var_types, self._special)

    def is_loop_invariant(self, node: ast.expr) -> bool:
        """Does the expression read only parameters and constants?

        Sound over-approximation: any load of a local (a name with a
        real definition anywhere in the UDF) or of the loop variable
        makes the expression potentially loop-varying.
        """
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if child.id in self.rd.local_vars:
                    return False
                if child.id == self.info.loop_var:
                    return False
        return True

    @property
    def _special(self) -> Dict[str, str]:
        env = {}
        if len(self.sig.params) >= 3:
            env[self.sig.params[2]] = OBJECT
        return env


# -- expression typing -------------------------------------------------

_NUMERIC_BUILTINS = {
    "abs": NUM,
    "int": INT,
    "float": FLOAT,
    "bool": BOOL,
    "len": INT,
    "min": NUM,
    "max": NUM,
    "round": NUM,
    "sum": NUM,
}


def _const_type(value: object) -> str:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    return OBJECT


def _eval_type(
    node: ast.expr, env: Dict[str, str], special: Dict[str, str]
) -> str:
    """Abstract type of an expression under ``env`` (TOP when unknown)."""
    if isinstance(node, ast.Constant):
        return _const_type(node.value)
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        return special.get(node.id, TOP)
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        # reads through the state namespace hold per-vertex numbers;
        # anything else structured is opaque
        root = node
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and special.get(root.id) == OBJECT:
            return NUM
        return TOP
    if isinstance(node, ast.BinOp):
        left = _eval_type(node.left, env, special)
        right = _eval_type(node.right, env, special)
        if isinstance(node.op, ast.Div):
            return FLOAT
        joined = type_join(left, right)
        if joined == BOOL:
            return INT  # True + True == 2
        return joined if joined != TOP else TOP
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return BOOL
        return _eval_type(node.operand, env, special)
    if isinstance(node, (ast.Compare,)):
        return BOOL
    if isinstance(node, ast.BoolOp):
        out = BOTTOM
        for value in node.values:
            out = type_join(out, _eval_type(value, env, special))
        return out
    if isinstance(node, ast.IfExp):
        return type_join(
            _eval_type(node.body, env, special),
            _eval_type(node.orelse, env, special),
        )
    if isinstance(node, ast.NamedExpr):
        return _eval_type(node.value, env, special)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return _NUMERIC_BUILTINS.get(node.func.id, TOP)
        return TOP
    return TOP


# -- type fixpoint over the CFG ----------------------------------------


def _walruses(node: ast.AST) -> List[ast.NamedExpr]:
    return [n for n in ast.walk(node) if isinstance(n, ast.NamedExpr)]


class _TypeInterp:
    """Worklist fixpoint: one abstract env (var -> type) per block."""

    def __init__(self, sig: SignalAst, cfg: CFG, rd: ReachingDefinitions):
        self.sig = sig
        self.cfg = cfg
        self.rd = rd
        self.special: Dict[str, str] = {}
        self.boundary: Dict[str, str] = {}
        params = sig.params
        if params:
            self.boundary[params[0]] = INT  # destination vertex id
        for p in params[1:]:
            self.boundary[p] = OBJECT  # nbrs view, state, emit callback
        if len(params) >= 3:
            self.special[params[2]] = OBJECT

    def run(self) -> Dict[str, str]:
        cfg = self.cfg
        in_env: Dict[int, Dict[str, str]] = {b: {} for b in cfg.blocks}
        out_env: Dict[int, Dict[str, str]] = {b: {} for b in cfg.blocks}
        in_env[cfg.entry] = dict(self.boundary)
        worklist = list(cfg.blocks)
        while worklist:
            b = worklist.pop(0)
            preds = cfg.blocks[b].preds
            if preds:
                merged: Dict[str, str] = {}
                for p in preds:
                    for var, t in out_env[p].items():
                        merged[var] = type_join(merged.get(var, BOTTOM), t)
            else:
                merged = dict(self.boundary) if b == cfg.entry else {}
            new_out = self._transfer(b, dict(merged))
            if merged != in_env[b] or new_out != out_env[b]:
                in_env[b] = merged
                out_env[b] = new_out
                for s in cfg.blocks[b].succs:
                    if s not in worklist:
                        worklist.append(s)
        # global join: the type a variable can have anywhere
        final: Dict[str, str] = {}
        for env in out_env.values():
            for var, t in env.items():
                final[var] = type_join(final.get(var, BOTTOM), t)
        return final

    def _transfer(self, block_id: int, env: Dict[str, str]) -> Dict[str, str]:
        for instr in self.cfg.blocks[block_id].instrs:
            node = instr.node
            if instr.kind == "for-header":
                for nw in _walruses(node.iter):
                    self._bind_walrus(env, nw)
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = self._loop_target_type(node)
                else:
                    for n in ast.walk(node.target):
                        if isinstance(n, ast.Name):
                            env[n.id] = TOP
                continue
            if instr.kind == "test":
                for nw in _walruses(node):
                    self._bind_walrus(env, nw)
                continue
            if instr.kind == "with-enter":
                for item in node.items:
                    for nw in _walruses(item.context_expr):
                        self._bind_walrus(env, nw)
                    if item.optional_vars is not None:
                        for n in ast.walk(item.optional_vars):
                            if isinstance(n, ast.Name):
                                env[n.id] = TOP
                continue
            for nw in _walruses(node):
                self._bind_walrus(env, nw)
            if isinstance(node, ast.Assign):
                t = self._eval(node.value, env)
                for target in node.targets:
                    self._bind_target(env, target, t)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(env, node.target, self._eval(node.value, env))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                current = env.get(node.target.id, BOTTOM)
                rhs = self._eval(node.value, env)
                if isinstance(node.op, ast.Div):
                    updated = FLOAT
                else:
                    updated = type_join(current, rhs)
                    if updated == BOOL:
                        updated = INT
                env[node.target.id] = updated
        return env

    def _loop_target_type(self, node: ast.For) -> str:
        # the neighbor loop binds neighbor ids (ints); other iterables
        # are opaque
        if (
            isinstance(node.iter, ast.Name)
            and len(self.sig.params) > 1
            and node.iter.id == self.sig.params[1]
        ):
            return INT
        return TOP

    def _bind_walrus(self, env: Dict[str, str], nw: ast.NamedExpr) -> None:
        if isinstance(nw.target, ast.Name):
            env[nw.target.id] = self._eval(nw.value, env)

    def _bind_target(
        self, env: Dict[str, str], target: ast.expr, t: str
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = t
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(env, elt, TOP)
        elif isinstance(target, ast.Starred):
            self._bind_target(env, target.value, TOP)
        # attribute/subscript targets bind no local name

    def _eval(self, node: ast.expr, env: Dict[str, str]) -> str:
        return _eval_type(node, env, self.special)


# -- fold classification -----------------------------------------------


def _negated(test: ast.expr) -> ast.expr:
    """Path condition of an ``else`` branch: ``not test``.

    The synthesized node keeps the test's source location so any
    verdict citing the guard still points at real code.  Downstream
    guard matchers (the guarded-extremum grammar here, the delta-emit
    and saturation obligations in :mod:`.contracts`) pattern-match bare
    comparisons only, so a negated guard never satisfies a
    positive-polarity obligation — else-branch folds conservatively
    classify as OVERWRITE and else-branch emits/breaks fail the guard
    obligations instead of passing them with inverted semantics.
    """
    return ast.copy_location(
        ast.UnaryOp(op=ast.Not(), operand=test), test
    )


def _loads(node: ast.expr) -> Set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _classify_aug(stmt: ast.AugAssign) -> str:
    name = stmt.target.id
    if name in _loads(stmt.value):
        return FoldKind.OPAQUE  # self-referential increment
    if isinstance(stmt.op, ast.Add):
        if isinstance(stmt.value, ast.Constant) and stmt.value.value == 1:
            return FoldKind.COUNT
        return FoldKind.SUM
    if isinstance(stmt.op, ast.Sub):
        return FoldKind.SUM  # subtracting terms commutes like adding
    return FoldKind.OPAQUE


def _classify_assign(
    name: str, value: ast.expr, guards: Tuple[ast.expr, ...]
) -> str:
    # expanded accumulations: x = x + e / x = e + x  (and x - e)
    if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.Add, ast.Sub)):
        left, right = value.left, value.right
        if isinstance(left, ast.Name) and left.id == name:
            if name not in _loads(right):
                return FoldKind.SUM
        if (
            isinstance(value.op, ast.Add)
            and isinstance(right, ast.Name)
            and right.id == name
            and name not in _loads(left)
        ):
            return FoldKind.SUM
    # x = min(x, e) / min(e, x); same for max
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("min", "max")
        and len(value.args) >= 2
        and any(
            isinstance(a, ast.Name) and a.id == name for a in value.args
        )
    ):
        return FoldKind.MIN if value.func.id == "min" else FoldKind.MAX
    # guarded extremum: if key < x: x = key  (and the three mirrored forms)
    if guards:
        guard = guards[-1]
        if (
            isinstance(guard, ast.Compare)
            and len(guard.ops) == 1
            and isinstance(guard.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
        ):
            op = guard.ops[0]
            left, right = guard.left, guard.comparators[0]
            key: Optional[ast.expr] = None
            smaller_wins = False
            if isinstance(right, ast.Name) and right.id == name:
                key = left  # `key OP x`
                smaller_wins = isinstance(op, (ast.Lt, ast.LtE))
            elif isinstance(left, ast.Name) and left.id == name:
                key = right  # `x OP key`
                smaller_wins = isinstance(op, (ast.Gt, ast.GtE))
            if (
                key is not None
                and ast.dump(value) == ast.dump(key)
                and name not in _loads(key)
            ):
                return FoldKind.MIN if smaller_wins else FoldKind.MAX
    return FoldKind.OVERWRITE


class _LoopScanner:
    """AST walk of the three UDF regions with a guard stack.

    Produces the fold classifications (loop region only), the emit and
    break sites (every region), each tagged with the enclosing ``if``
    tests — the *path condition*: body branches push the test itself,
    else branches push its negation (see :func:`_negated`), so guard
    polarity is always truthful.  Nested function definitions are
    opaque, as everywhere in the analysis package.
    """

    def __init__(self, emit_name: Optional[str]):
        self.emit_name = emit_name
        self.folds: Dict[str, str] = {}
        self.fold_sites: Dict[str, List[ast.AST]] = {}
        self.emits: List[EmitSite] = []
        self.breaks: List[BreakSite] = []

    def scan(
        self,
        stmts: List[ast.stmt],
        region: str,
        guards: Tuple[ast.expr, ...] = (),
    ) -> None:
        in_loop = region == "loop"
        for i, stmt in enumerate(stmts):
            followed_by_break = i + 1 < len(stmts) and isinstance(
                stmts[i + 1], ast.Break
            )
            if isinstance(stmt, ast.If):
                self._expr_emits(stmt.test, region, guards)
                self._header_walruses(stmt.test, in_loop, stmt)
                self.scan(stmt.body, region, guards + (stmt.test,))
                self.scan(
                    stmt.orelse, region, guards + (_negated(stmt.test),)
                )
                continue
            if isinstance(stmt, ast.Break):
                self.breaks.append(BreakSite(node=stmt, guards=guards))
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                # only reachable for non-neighbor loops outside the
                # neighbor loop (the analyzer rejects nested ones)
                header = (
                    stmt.iter if isinstance(stmt, ast.For) else stmt.test
                )
                self._expr_emits(header, region, guards)
                self._header_walruses(header, in_loop, stmt)
                self.scan(stmt.body, region, guards)
                self.scan(stmt.orelse, region, guards)
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._expr_emits(item.context_expr, region, guards)
                    self._header_walruses(item.context_expr, in_loop, stmt)
                self.scan(stmt.body, region, guards)
                continue
            if in_loop:
                self._record_folds(stmt, guards)
            if isinstance(stmt, (ast.FunctionDef, ast.ClassDef)):
                continue
            self._stmt_emits(stmt, region, guards, followed_by_break)

    # -- folds ---------------------------------------------------------

    def _header_walruses(
        self, expr: ast.expr, in_loop: bool, stmt: ast.stmt
    ) -> None:
        """Walrus stores in a control-flow header (``if``/``while``
        test, ``for`` iterable, ``with`` context expr) re-bind a name
        every iteration; inside the neighbor loop that is beyond the
        fold grammar, so classify the target OPAQUE."""
        if not in_loop:
            return
        for nw in _walruses(expr):
            if isinstance(nw.target, ast.Name):
                self._join_fold(nw.target.id, FoldKind.OPAQUE, stmt)

    def _record_folds(
        self, stmt: ast.stmt, guards: Tuple[ast.expr, ...]
    ) -> None:
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            self._join_fold(stmt.target.id, _classify_aug(stmt), stmt)
        elif (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name = stmt.targets[0].id
            self._join_fold(name, _classify_assign(name, stmt.value, guards), stmt)
        else:
            # any other store (tuple unpack, annotated assign, walrus,
            # with-target...) is beyond the fold grammar
            for n in ast.walk(stmt):
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                    self._join_fold(n.id, FoldKind.OPAQUE, stmt)

    def _join_fold(self, name: str, kind: str, node: ast.AST) -> None:
        joined = fold_join(self.folds.get(name, FoldKind.NONE), kind)
        self.folds[name] = joined
        self.fold_sites.setdefault(name, []).append(node)

    # -- emits ---------------------------------------------------------

    def _stmt_emits(
        self,
        stmt: ast.stmt,
        region: str,
        guards: Tuple[ast.expr, ...],
        followed_by_break: bool,
    ) -> None:
        direct = None
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and self._is_emit(stmt.value)
        ):
            direct = stmt.value
            self.emits.append(
                EmitSite(
                    node=direct,
                    region=region,
                    guards=guards,
                    followed_by_break=followed_by_break,
                )
            )
        for call in self._emit_calls(stmt):
            if call is direct:
                continue
            self.emits.append(
                EmitSite(node=call, region=region, guards=guards)
            )

    def _expr_emits(
        self, node: ast.expr, region: str, guards: Tuple[ast.expr, ...]
    ) -> None:
        for call in self._emit_calls(node):
            self.emits.append(
                EmitSite(node=call, region=region, guards=guards)
            )

    def _is_emit(self, call: ast.Call) -> bool:
        return (
            self.emit_name is not None
            and isinstance(call.func, ast.Name)
            and call.func.id == self.emit_name
        )

    def _emit_calls(self, node: ast.AST) -> List[ast.Call]:
        out = []
        # include the root: a header expression may *be* the emit call
        # (e.g. ``while emit(x):``)
        stack = [node]
        while stack:
            child = stack.pop()
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            if isinstance(child, ast.Call) and self._is_emit(child):
                out.append(child)
            stack.extend(ast.iter_child_nodes(child))
        return out


# -- state-read collection ---------------------------------------------


def _collect_state_reads(sig: SignalAst) -> Tuple[StateRead, ...]:
    if len(sig.params) < 3:
        return ()
    state_name = sig.params[2]
    reads: List[StateRead] = []
    subscripted: Set[int] = set()
    order: List[ast.AST] = [
        n
        for n in ast.walk(sig.func)
        if isinstance(n, (ast.Attribute, ast.Subscript))
    ]
    order.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
    for node in order:
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == state_name
        ):
            index = node.slice
            reads.append(
                StateRead(
                    attr=node.value.attr,
                    kind="array",
                    index=index.id if isinstance(index, ast.Name) else None,
                    node=node,
                )
            )
            subscripted.add(id(node.value))
    for node in order:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == state_name
            and id(node) not in subscripted
        ):
            reads.append(
                StateRead(attr=node.attr, kind="scalar", index=None, node=node)
            )
    reads.sort(key=lambda r: (getattr(r.node, "lineno", 0),
                              getattr(r.node, "col_offset", 0)))
    return tuple(reads)


# -- entry point -------------------------------------------------------


def summarize(
    sig: SignalAst, info: Optional[DependencyInfo] = None
) -> UdfSummary:
    """Abstractly interpret a parsed signal UDF.

    ``info`` may be supplied when the caller already ran
    :func:`~repro.analysis.ast_analysis.analyze_parsed`; otherwise it
    is recomputed here.  Pure static derivation — the UDF never runs.
    """
    if info is None:
        info = analyze_parsed(sig)
    cfg = build_cfg(sig.func)
    rd = ReachingDefinitions(cfg, sig.params)
    var_types = _TypeInterp(sig, cfg, rd).run()

    emit_name = sig.params[3] if len(sig.params) > 3 else None
    scanner = _LoopScanner(emit_name)
    if sig.loop is not None:
        body = sig.func.body
        scanner.scan(body[: sig.loop_index], "pre")
        scanner.scan(list(sig.loop.body), "loop")
        scanner.scan(body[sig.loop_index + 1 :], "post")
    else:
        scanner.scan(sig.func.body, "pre")

    return UdfSummary(
        sig=sig,
        info=info,
        cfg=cfg,
        rd=rd,
        var_types=var_types,
        folds=scanner.folds,
        fold_sites=scanner.fold_sites,
        state_reads=_collect_state_reads(sig),
        emits=tuple(scanner.emits),
        breaks=tuple(scanner.breaks),
        effects=signal_effects(sig),
    )
