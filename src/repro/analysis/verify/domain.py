"""Abstract domains for the UDF soundness certifier.

Two small lattices power the abstract interpreter in
:mod:`repro.analysis.verify.interp`:

* a **type lattice** over the values a signal UDF computes::

      BOTTOM < BOOL < INT < NUM < TOP
      BOTTOM < FLOAT < NUM < TOP
      BOTTOM < OBJECT < TOP

  ``NUM`` is "some number, int or float"; ``OBJECT`` covers the opaque
  parameter handles (state namespace, neighbor view, emit callback)
  and anything structured.  The join of a number and an object is
  ``TOP`` — a value the certifier refuses to emit.

* a **fold lattice** classifying how a variable is updated inside the
  neighbor loop, ordered by how much reordering the update tolerates::

      NONE < COUNT < SUM < OPAQUE
      NONE < MIN|MAX|OVERWRITE < OPAQUE

  ``COUNT`` (``cnt += 1``), ``SUM`` (commutative/associative
  accumulation), ``MIN``/``MAX`` (idempotent extremum folds) are
  *order-insensitive*: evaluating the neighbor sequence in any order,
  or resuming from a predecessor machine's carried value, produces the
  same result.  ``OVERWRITE`` (last writer wins) and ``OPAQUE``
  (anything the interpreter cannot prove) are order-sensitive and
  disqualify a variable from the batched-kernel contracts.

The containers at the bottom (:class:`StateRead`, :class:`EmitSite`,
:class:`BreakSite`) are the effect facts the interpreter derives and
the contract certifier consumes; each keeps the AST node it was
derived from so violations cite a program point.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "BOTTOM",
    "BOOL",
    "INT",
    "FLOAT",
    "NUM",
    "OBJECT",
    "TOP",
    "type_join",
    "is_numeric",
    "FoldKind",
    "fold_join",
    "StateRead",
    "EmitSite",
    "BreakSite",
]

# -- type lattice ------------------------------------------------------

BOTTOM = "bottom"
BOOL = "bool"
INT = "int"
FLOAT = "float"
NUM = "num"
OBJECT = "object"
TOP = "top"

# every strictly-above element per lattice point (reflexivity implied)
_ABOVE = {
    BOTTOM: {BOOL, INT, FLOAT, NUM, OBJECT, TOP},
    BOOL: {INT, NUM, TOP},
    INT: {NUM, TOP},
    FLOAT: {NUM, TOP},
    NUM: {TOP},
    OBJECT: {TOP},
    TOP: set(),
}


def _leq(a: str, b: str) -> bool:
    return a == b or b in _ABOVE[a]


def type_join(a: str, b: str) -> str:
    """Least upper bound of two abstract types."""
    if _leq(a, b):
        return b
    if _leq(b, a):
        return a
    # distinct numerics join to NUM; anything mixed with OBJECT to TOP
    if is_numeric(a) and is_numeric(b):
        return NUM
    return TOP


def is_numeric(t: str) -> bool:
    """Is ``t`` at or below ``NUM`` (excluding bottom)?"""
    return t in (BOOL, INT, FLOAT, NUM)


class FoldKind:
    """Loop-update classification constants (see module docstring)."""

    NONE = "none"
    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    OVERWRITE = "overwrite"
    OPAQUE = "opaque"

    ORDER_INSENSITIVE = frozenset({"none", "count", "sum", "min", "max"})


def fold_join(a: str, b: str) -> str:
    """Join two fold classifications of the same variable.

    ``NONE`` is the identity; a counter joined with a general sum is a
    sum (``cnt += 1`` and ``cnt += w`` on different paths still
    commute); everything else only joins with itself — mixing, say, a
    min-fold with an overwrite proves nothing, hence ``OPAQUE``.
    """
    if a == b:
        return a
    if a == FoldKind.NONE:
        return b
    if b == FoldKind.NONE:
        return a
    if {a, b} == {FoldKind.COUNT, FoldKind.SUM}:
        return FoldKind.SUM
    return FoldKind.OPAQUE


# -- derived effect facts ----------------------------------------------


@dataclass(frozen=True)
class StateRead:
    """One read through the state parameter.

    ``kind`` is ``"array"`` for a subscripted field (``s.rank[u]``,
    read per-element) or ``"scalar"`` for a bare attribute (``s.k``);
    ``index`` is the subscript variable name for array reads (``None``
    when the index is not a simple name — the certifier rejects those).
    """

    attr: str
    kind: str  # "array" | "scalar"
    index: Optional[str]
    node: ast.AST = field(compare=False, hash=False)


@dataclass(frozen=True)
class EmitSite:
    """One call of the emit parameter.

    ``region`` locates the call relative to the neighbor loop
    (``"pre"``/``"loop"``/``"post"``); ``guards`` is the stack of
    enclosing path conditions (innermost last — the ``if`` test for a
    body branch, its negation for an else branch);
    ``followed_by_break`` is True when the statement immediately after
    the emit is ``break``.
    """

    node: ast.Call = field(compare=False, hash=False)
    region: str
    guards: Tuple[ast.expr, ...] = field(compare=False, hash=False)
    followed_by_break: bool = False

    @property
    def guarded(self) -> bool:
        """Is the call conditional on at least one test?"""
        return bool(self.guards)


@dataclass(frozen=True)
class BreakSite:
    """One ``break`` inside the neighbor loop, with its guard stack."""

    node: ast.AST = field(compare=False, hash=False)
    guards: Tuple[ast.expr, ...] = field(compare=False, hash=False)

    @property
    def guard(self) -> Optional[ast.expr]:
        """Innermost enclosing test, or ``None`` (unconditional break)."""
        return self.guards[-1] if self.guards else None
