"""Executor-safety rules: determinism hazards under parallel backends.

The thread/process executors (:mod:`repro.exec`) promise bit-identical
results with the serial reference order.  That promise holds because
the parent merges per-machine results in item order — but only if each
task function itself computes a machine-independent answer.  Two
hazard classes slip past the purity checker because they are not
*writes*:

* **mutable capture** — a UDF closing over a module-level list, dict,
  set, bytearray, or ndarray reads (and often mutates) an object that
  is shared under threads but *copied* under fork, so the two backends
  silently diverge;
* **unordered iteration** — iterating a ``set`` literal, a set
  comprehension, or a ``set()``/``frozenset()`` call inside the UDF
  makes the scan order hash-dependent, which is exactly the order the
  loop-carried dependency machinery must be able to replay.

Both surface as lint rules through the PR 1 engine (so ``repro lint``,
``repro verify``, and the SARIF writers all report them); the other
two hazard classes the tentpole names — writes outside the delta API
and unseeded RNG calls — are already covered by the purity rules
``state-mutation``/``global-write`` and ``nondet-call``.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Tuple

from repro.analysis.rules import Finding, LintContext, rule

__all__ = ["mutable_capture", "unordered_iteration"]

_MUTABLE_TYPES = (list, dict, set, bytearray)


def _is_mutable(value: object) -> bool:
    """Is a captured global a shared-mutable object worth flagging?

    Modules, callables, and immutable scalars are fine; containers and
    ndarrays are the shared-under-threads / copied-under-fork hazard.
    """
    if isinstance(value, _MUTABLE_TYPES):
        return True
    return type(value).__name__ == "ndarray"


def _free_names(ctx: LintContext) -> Iterator[Tuple[str, ast.Name]]:
    """Loaded names bound neither as parameters nor as locals."""
    bound = set(ctx.sig.params) | set(ctx.rd.local_vars)
    seen = set()
    for node in ast.walk(ctx.sig.func):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in bound
            and node.id not in seen
        ):
            seen.add(node.id)
            yield node.id, node


@rule("mutable-capture", "warning")
def mutable_capture(ctx: LintContext) -> Iterator[Finding]:
    """A signal UDF closing over a module-level mutable object (list,
    dict, set, bytearray, ndarray) reads shared state the executors
    cannot isolate: threads see every concurrent mutation, forked
    processes see a stale copy, so the backends diverge from the serial
    reference.  Pass the object through the state parameter instead —
    state is what the engines replicate and synchronize."""
    for name, node in _free_names(ctx):
        if name not in ctx.sig.globals:
            continue  # builtin or truly undefined; not a capture
        value = ctx.sig.globals[name]
        if callable(value) or not _is_mutable(value):
            continue
        yield (
            f"captures module-level {type(value).__name__} {name!r}; "
            "shared under the thread backend, copied under the process "
            "backend — thread it through the state parameter instead",
            node,
        )


def _unordered_iter(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
        and getattr(builtins, node.func.id, None) is not None
    )


@rule("unordered-iteration", "warning")
def unordered_iteration(ctx: LintContext) -> Iterator[Finding]:
    """Iterating a set inside a signal UDF makes the visit order
    hash-dependent (and, for str keys, per-process under hash
    randomization).  The loop-carried dependency machinery must be
    able to replay a scan deterministically — iterate a sorted or
    list-backed sequence instead."""
    for node in ast.walk(ctx.sig.func):
        iters = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _unordered_iter(it):
                yield (
                    f"iterates {ast.unparse(it)}, an unordered set; the "
                    "visit order is hash-dependent and cannot be "
                    "replayed deterministically across machines",
                    it,
                )
