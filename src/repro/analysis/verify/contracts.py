"""Kernel-contract certification: re-derive what the classifier assumed.

The classifier in :mod:`repro.analysis.kernelspec` pattern-matches a
UDF against four shapes and, on a match, the engines execute a batched
NumPy kernel *instead of* the UDF.  That substitution is only sound if
the UDF really has the properties the shape's kernel exploits — pure
reads, order-insensitive folds, declared effect sets.  This module
re-derives those properties **independently** from the abstract
interpretation summary (:mod:`repro.analysis.verify.interp`) and
cross-checks every classification: :func:`certify_spec` either returns
the summary it certified against, or raises
:class:`~repro.errors.KernelSoundnessError` carrying the violated
obligation id and the program point (``file:line``) it was refuted at.

Obligations common to every shape:

``purity``           no side effects or nondeterministic calls
``carried-exact``    the spec's carried variables equal the analyzer's
``reads-declared``   every state field read appears in the spec's
                     ``arrays``/``scalars`` (the kernel preloads them)
``index-domain``     array reads index only the loop variable or the
                     destination vertex
``emit-arity``       every emit call passes exactly one positional arg
``emit-numeric``     every emitted value has a numeric abstract type

Per-shape obligations (each contract documents its own).  The spec is
an explicit argument so mutation tests can pair a tampered UDF with a
pristine classification — certification never trusts the classifier it
is checking.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.ast_analysis import DependencyInfo, SignalAst
from repro.analysis.kernelspec import (
    COUNT_TO_K_BREAK,
    FIRST_MATCH_BREAK,
    FULL_SCAN_MIN,
    FULL_SCAN_SUM,
    KernelSpec,
)
from repro.analysis.verify.domain import FoldKind, is_numeric
from repro.analysis.verify.interp import UdfSummary, summarize
from repro.errors import KernelSoundnessError

__all__ = ["CONTRACTS", "certify_spec", "contract_kinds", "uncontracted_kernels"]


class _Certifier:
    """Shared obligation helpers bound to one (summary, spec) pair."""

    def __init__(self, summary: UdfSummary, spec: KernelSpec) -> None:
        self.summary = summary
        self.spec = spec
        self.sig = summary.sig

    def fail(self, message: str, obligation: str, node: Optional[ast.AST]) -> None:
        point = self.sig.location(node) if node is not None else ""
        raise KernelSoundnessError(
            message, obligation=obligation, program_point=point
        )

    # -- common obligations --------------------------------------------

    def check_common(self) -> None:
        s = self.summary
        for effect in s.effects:
            self.fail(
                f"UDF has side effects ({effect.kind}: {effect.detail})",
                "purity",
                effect.node,
            )
        if tuple(self.spec.carried_vars) != tuple(s.info.carried_vars):
            self.fail(
                f"spec carries {tuple(self.spec.carried_vars)} but the "
                f"dataflow analysis derives {tuple(s.info.carried_vars)}",
                "carried-exact",
                s.sig.loop,
            )
        arrays = set(self.spec.arrays)
        scalars = set(self.spec.scalars)
        loop_var = s.info.loop_var
        v_name = s.sig.params[0] if s.sig.params else None
        for read in s.state_reads:
            declared = arrays if read.kind == "array" else scalars
            if read.attr not in declared:
                self.fail(
                    f"UDF reads state {read.kind} {read.attr!r} that the "
                    f"spec does not declare (arrays={self.spec.arrays}, "
                    f"scalars={self.spec.scalars})",
                    "reads-declared",
                    read.node,
                )
            if read.kind == "array" and read.index not in (loop_var, v_name):
                self.fail(
                    f"array read {read.attr!r} indexed by "
                    f"{read.index or '<expr>'!s}; kernels can only batch "
                    "reads indexed by the loop variable or the "
                    "destination vertex",
                    "index-domain",
                    read.node,
                )
        for site in s.emits:
            if len(site.node.args) != 1 or site.node.keywords:
                self.fail(
                    "emit must be called with exactly one positional "
                    "argument",
                    "emit-arity",
                    site.node,
                )
            t = s.type_of_expr(site.node.args[0])
            if not is_numeric(t):
                self.fail(
                    f"emitted value has abstract type {t!r}; kernels "
                    "batch numeric emissions only",
                    "emit-numeric",
                    site.node,
                )

    # -- shared shape fragments ----------------------------------------

    def single_fold(self, expected: Tuple[str, ...], obligation: str) -> str:
        """Exactly one carried variable with one of ``expected`` folds."""
        s = self.summary
        if len(s.info.carried_vars) != 1:
            self.fail(
                f"shape {self.spec.kind!r} requires exactly one carried "
                f"variable, found {tuple(s.info.carried_vars)}",
                obligation,
                s.sig.loop,
            )
        var = s.info.carried_vars[0]
        fold = s.fold_of(var)
        if fold not in expected:
            site = (s.fold_sites.get(var) or [s.sig.loop])[0]
            self.fail(
                f"carried variable {var!r} folds as {fold!r} inside the "
                f"loop; shape {self.spec.kind!r} requires "
                f"{' or '.join(repr(e) for e in expected)} "
                "(an order-insensitive reduction)",
                obligation,
                site,
            )
        return var

    def no_break(self) -> None:
        s = self.summary
        if s.breaks:
            self.fail(
                f"shape {self.spec.kind!r} scans every neighbor; a break "
                "makes the fold depend on scan order and machine count",
                "no-break",
                s.breaks[0].node,
            )

    def single_post_emit(self, obligation: str):
        """Exactly one emit, post-loop and guarded; returns the site."""
        s = self.summary
        sites = list(s.emits)
        if len(sites) != 1 or sites[0].region != "post":
            node = sites[0].node if sites else s.sig.loop
            self.fail(
                f"shape {self.spec.kind!r} emits exactly once, after the "
                f"loop; found {len(sites)} emit(s) "
                f"({', '.join(x.region for x in sites) or 'none'})",
                obligation,
                node,
            )
        site = sites[0]
        if not site.guarded:
            self.fail(
                "the post-loop emit must be guarded; an unconditional "
                "emit fires once per machine chunk and double-delivers",
                obligation,
                site.node,
            )
        return site

    def snapshot_of(self, var: str) -> Optional[str]:
        """Name of a pre-loop snapshot of ``var`` (``snap = var``)."""
        s = self.summary
        if s.sig.loop_index < 0:
            return None
        for stmt in s.sig.func.body[: s.sig.loop_index]:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id == var
            ):
                snap = stmt.targets[0].id
                if s.fold_of(snap) == FoldKind.NONE:
                    return snap
        return None

    def check_delta_emit(self, var: str, obligation: str) -> None:
        """Post emit is ``if var > snap: emit(var - snap)``."""
        site = self.single_post_emit(obligation)
        snap = self.snapshot_of(var)
        if snap is None:
            self.fail(
                f"no pre-loop snapshot of {var!r} found (``start = "
                f"{var}`` before the loop, unmodified inside it); the "
                "delta idiom needs one to avoid double-counting on "
                "resume",
                obligation,
                self.sig.loop,
            )
        arg = site.node.args[0]
        if not (
            isinstance(arg, ast.BinOp)
            and isinstance(arg.op, ast.Sub)
            and isinstance(arg.left, ast.Name)
            and arg.left.id == var
            and isinstance(arg.right, ast.Name)
            and arg.right.id == snap
        ):
            self.fail(
                f"emitted value must be the delta {var} - {snap}; "
                f"found emit({ast.unparse(arg)})",
                obligation,
                site.node,
            )
        guard = site.guards[-1]
        if not (
            isinstance(guard, ast.Compare)
            and len(guard.ops) == 1
            and isinstance(guard.ops[0], ast.Gt)
            and isinstance(guard.left, ast.Name)
            and guard.left.id == var
            and isinstance(guard.comparators[0], ast.Name)
            and guard.comparators[0].id == snap
        ):
            self.fail(
                f"the delta emit must be guarded by {var} > {snap} so a "
                "resumed machine emits nothing when it added nothing",
                obligation,
                site.node,
            )


# -- per-shape contracts -----------------------------------------------


def _certify_first_match(c: _Certifier) -> None:
    """``first_match_break``: scan to the first satisfying neighbor.

    Obligations: ``no-carried`` (no data dependency — resuming from a
    predecessor needs nothing but the break bit), ``no-folds`` (no
    variable is updated across iterations), ``break-present`` and
    ``emit-then-break`` (exactly one guarded in-loop emit, immediately
    followed by the break, so at most one value is ever delivered)."""
    s = c.summary
    if s.info.carried_vars:
        c.fail(
            f"first-match kernels carry no data, but "
            f"{tuple(s.info.carried_vars)} is loop-carried",
            "no-carried",
            s.sig.loop,
        )
    for var, fold in sorted(s.folds.items()):
        if fold != FoldKind.NONE:
            c.fail(
                f"variable {var!r} is updated inside the loop "
                f"({fold!r}); the first-match kernel evaluates a pure "
                "predicate per neighbor and cannot reproduce it",
                "no-folds",
                (s.fold_sites.get(var) or [s.sig.loop])[0],
            )
    if not s.breaks:
        c.fail(
            "first-match kernels stop at the first hit; this UDF never "
            "breaks",
            "break-present",
            s.sig.loop,
        )
    loop_emits = [e for e in s.emits if e.region == "loop"]
    other = [e for e in s.emits if e.region != "loop"]
    if other:
        c.fail(
            "first-match kernels emit only inside the loop; found an "
            f"emit in the {other[0].region!r} region",
            "emit-then-break",
            other[0].node,
        )
    if len(loop_emits) != 1:
        c.fail(
            f"first-match kernels emit exactly once; found "
            f"{len(loop_emits)} in-loop emit(s)",
            "emit-then-break",
            loop_emits[0].node if loop_emits else s.sig.loop,
        )
    site = loop_emits[0]
    if not site.guarded or not site.followed_by_break:
        c.fail(
            "the in-loop emit must be guarded and immediately followed "
            "by break (emit-then-break); otherwise the kernel's "
            "first-hit semantics diverge from the UDF",
            "emit-then-break",
            site.node,
        )


def _certify_count_to_k(c: _Certifier) -> None:
    """``count_to_k_break``: saturating counter (K-core's shape).

    Obligations: ``fold-count`` (the single carried variable is a pure
    ``+= 1`` counter — the kernel reproduces it with a vectorized
    cumulative sum), ``saturation-guard`` (every break fires on
    ``cnt >= T`` with ``T`` loop-invariant, so saturation commutes with
    chunking), ``delta-emit`` (the guarded post-loop delta idiom)."""
    s = c.summary
    var = c.single_fold((FoldKind.COUNT,), "fold-count")
    if not s.breaks:
        c.fail(
            "count-to-k kernels saturate via break; this UDF never "
            "breaks (classify as full_scan_sum instead)",
            "saturation-guard",
            s.sig.loop,
        )
    for brk in s.breaks:
        guard = brk.guard
        ok = (
            guard is not None
            and isinstance(guard, ast.Compare)
            and len(guard.ops) == 1
            and isinstance(guard.ops[0], ast.GtE)
            and isinstance(guard.left, ast.Name)
            and guard.left.id == var
            and s.is_loop_invariant(guard.comparators[0])
        )
        if not ok:
            c.fail(
                f"break must be guarded by {var} >= <loop-invariant "
                "threshold>; anything else breaks the kernel's "
                "saturation arithmetic",
                "saturation-guard",
                brk.node,
            )
    c.check_delta_emit(var, "delta-emit")


def _certify_full_scan_sum(c: _Certifier) -> None:
    """``full_scan_sum``: commutative accumulation over every neighbor.

    Obligations: ``fold-sum`` (the carried variable is a count/sum
    fold — the kernel computes it with one vectorized reduction, in a
    different order than the UDF's scan, which is only sound for
    commutative/associative updates), ``no-break`` (a break would make
    the partial sums chunk-dependent), ``delta-emit``."""
    var = c.single_fold((FoldKind.SUM, FoldKind.COUNT), "fold-sum")
    c.no_break()
    c.check_delta_emit(var, "delta-emit")


def _certify_full_scan_min(c: _Certifier) -> None:
    """``full_scan_min``: idempotent extremum fold (CC's shape).

    Obligations: ``fold-min`` (the carried variable is a min fold —
    idempotent and commutative, so the kernel's vectorized minimum
    matches any scan order), ``no-break``, ``improvement-emit`` (one
    post-loop emit of the fold variable, guarded by ``best < init``
    with ``init`` the same expression the fold started from, so an
    unimproved vertex emits nothing)."""
    s = c.summary
    var = c.single_fold((FoldKind.MIN,), "fold-min")
    c.no_break()
    site = c.single_post_emit("improvement-emit")
    arg = site.node.args[0]
    if not (isinstance(arg, ast.Name) and arg.id == var):
        c.fail(
            f"the improvement emit must deliver the fold variable "
            f"{var!r}; found emit({ast.unparse(arg)})",
            "improvement-emit",
            site.node,
        )
    init_expr = None
    if s.sig.loop_index >= 0:
        for stmt in s.sig.func.body[: s.sig.loop_index]:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == var
            ):
                init_expr = stmt.value
    if init_expr is None:
        c.fail(
            f"no pre-loop initialization of {var!r} found",
            "improvement-emit",
            s.sig.loop,
        )
    guard = site.guards[-1]
    if not (
        isinstance(guard, ast.Compare)
        and len(guard.ops) == 1
        and isinstance(guard.ops[0], ast.Lt)
        and isinstance(guard.left, ast.Name)
        and guard.left.id == var
        and ast.dump(guard.comparators[0]) == ast.dump(init_expr)
    ):
        c.fail(
            f"the improvement emit must be guarded by {var} < "
            f"{ast.unparse(init_expr)} (the fold's initial value); an "
            "unimproved vertex must emit nothing",
            "improvement-emit",
            site.node,
        )


CONTRACTS: Dict[str, Callable[[_Certifier], None]] = {
    FIRST_MATCH_BREAK: _certify_first_match,
    COUNT_TO_K_BREAK: _certify_count_to_k,
    FULL_SCAN_SUM: _certify_full_scan_sum,
    FULL_SCAN_MIN: _certify_full_scan_min,
}


def contract_kinds() -> Tuple[str, ...]:
    """Kernel kinds the certifier has a contract for, sorted."""
    return tuple(sorted(CONTRACTS))


def uncontracted_kernels() -> Tuple[str, ...]:
    """Registered kernel kinds with *no* certification contract.

    A kernel registered behind the engines' dispatch that the
    certifier cannot check is a soundness hole — ``repro verify``
    surfaces these as warnings.
    """
    from repro.kernels.registry import available_kernels

    return tuple(k for k in available_kernels() if k not in CONTRACTS)


def certify_spec(
    sig: SignalAst,
    info: DependencyInfo,
    spec: KernelSpec,
    summary: Optional[UdfSummary] = None,
) -> UdfSummary:
    """Certify that ``spec`` is a sound classification of ``sig``.

    Raises :class:`~repro.errors.KernelSoundnessError` (with the
    violated obligation and a cited program point) when the UDF's
    abstractly-derived effects exceed the shape's contract; returns the
    :class:`UdfSummary` it certified against otherwise.  No UDF or
    kernel code is executed in either direction.
    """
    if summary is None:
        summary = summarize(sig, info)
    certifier = _Certifier(summary, spec)
    contract = CONTRACTS.get(spec.kind)
    if contract is None:
        certifier.fail(
            f"no certification contract for kernel kind {spec.kind!r}",
            "unknown-kind",
            sig.func,
        )
    certifier.check_common()
    contract(certifier)
    return summary
