"""Purity / side-effect checking for signal UDFs.

The contract of a signal UDF (Section 2.2's ``I``) is that it is a
*pure fold* over the neighbor sequence: it may write its own carried
locals and call ``emit``, and nothing else.  Anything beyond that
breaks the distribution story in one of two ways:

* **hidden state** — writes to globals, mutation of the shared state
  namespace, or mutation of any object reaching in through a parameter
  make the signal's effect depend on machine count and scan order
  (slots, not signals, are where cross-machine writes belong);
* **nondeterminism** — module-level RNGs (``random``, ``np.random``),
  clocks, or UUIDs give each machine a different answer for the same
  vertex, so re-running a chunk after a dependency message produces a
  different fold.  A seeded generator threaded through the state
  parameter (``s.rng``) is fine — it is part of the replayable state.

This module reports *effects*; the lint rules in
:mod:`repro.analysis.rules` decide severity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.analysis.ast_analysis import SignalAst, _walk_same_scope

__all__ = ["Effect", "signal_effects"]

# module roots whose calls are nondeterministic (or clock/entropy bound)
_NONDET_ROOTS = frozenset({"random", "time", "uuid", "secrets"})
# attribute path fragments that flag numpy-style module RNGs
_NONDET_FRAGMENTS = ("random",)
# method names that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "sort",
        "reverse",
        "fill",
        "put",
    }
)


@dataclass(frozen=True)
class Effect:
    """One detected side effect or nondeterminism source."""

    kind: str  # "global-write" | "state-mutation" | "nondet-call"
    detail: str
    node: ast.AST

    @property
    def lineno(self) -> int:
        """Function-relative source line of the effect."""
        return getattr(self.node, "lineno", 0)


def _root_name(node: ast.expr) -> Optional[str]:
    """Innermost Name of an attribute/subscript/call chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _attr_path(node: ast.expr) -> List[str]:
    """Dotted attribute path as a list, outermost last."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _stmts(sig: SignalAst) -> Iterator[ast.AST]:
    yield from _walk_same_scope(sig.func)


def signal_effects(sig: SignalAst) -> List[Effect]:
    """Detect writes beyond carried locals and nondeterministic calls.

    Returns one :class:`Effect` per finding; an empty list means the
    UDF honors the write-carried-vars-and-emit contract.  Nested
    function definitions are treated as opaque scopes.
    """
    params = set(sig.params)
    effects: List[Effect] = []

    for node in _stmts(sig):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            effects.append(
                Effect(
                    "global-write",
                    f"declares {', '.join(node.names)} "
                    f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}",
                    node,
                )
            )
        elif isinstance(
            node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.NamedExpr)
        ):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                effects.extend(_write_effects(target, params))
        elif isinstance(node, ast.Call):
            effect = _call_effect(node, params)
            if effect is not None:
                effects.append(effect)
    return effects


def _write_effects(target: ast.expr, params: set) -> Iterator[Effect]:
    """Effects of one assignment target (recursing through tuples)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _write_effects(elt, params)
        return
    if isinstance(target, ast.Starred):
        yield from _write_effects(target.value, params)
        return
    if isinstance(target, ast.Name):
        if target.id in params:
            yield Effect(
                "state-mutation",
                f"rebinds parameter {target.id!r}; shadowing the shared "
                "state handle (or emit) inside the signal hides which "
                "object later writes reach — use a fresh local name",
                target,
            )
        return
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        root = _root_name(target)
        if root is None or root in params:
            where = "parameter" if root in params else "expression"
            yield Effect(
                "state-mutation",
                f"writes through {where} "
                f"{root or '<expr>'!s} ({ast.unparse(target)}); signals "
                "must only write their own carried locals — apply "
                "cross-machine writes in the slot",
                target,
            )
        # writes through a local container (e.g. a list built in the
        # UDF) stay local to one invocation: allowed.


def _call_effect(call: ast.Call, params: set) -> Optional[Effect]:
    """Nondeterministic-call and parameter-mutation detection."""
    func = call.func
    if isinstance(func, ast.Attribute):
        path = _attr_path(func)
        root = path[0] if path else None
        if root is not None and root not in params:
            if root in _NONDET_ROOTS or any(
                frag in path[:-1] for frag in _NONDET_FRAGMENTS
            ):
                return Effect(
                    "nondet-call",
                    f"calls {'.'.join(path)}(); module-level RNGs/clocks "
                    "give each machine a different answer — thread a "
                    "seeded generator through the state parameter instead",
                    call,
                )
        if root is not None and root in params and func.attr in _MUTATORS:
            return Effect(
                "state-mutation",
                f"calls mutating method .{func.attr}() on parameter "
                f"{root!r}; signals must not mutate shared state",
                call,
            )
    elif isinstance(func, ast.Name) and func.id in _NONDET_ROOTS:
        return Effect(
            "nondet-call",
            f"calls {func.id}(); nondeterministic in a signal UDF",
            call,
        )
    return None
