"""Lint driver: discover signal UDFs in modules and run the rules.

This is the engine behind ``repro lint``: it resolves targets (a
``.py`` file, a package directory, a dotted module name, or a built-in
algorithm name), discovers the signal/slot UDFs each module defines,
runs :func:`repro.analysis.rules.lint_signal` /
:func:`~repro.analysis.rules.lint_slot` over them, and folds everything
into one :class:`LintRun` with CI-friendly exit-code semantics:

* ``0`` — clean, or notes only (informational),
* ``1`` — at least one warning,
* ``2`` — at least one error (a UDF the analyzer rejects, or a target
  that cannot be loaded at all).
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

from repro.analysis.rules import LintConfig, LintMessage, lint_signal, lint_slot
from repro.errors import AnalysisError

__all__ = ["LintRun", "discover_udfs", "run_lint"]


@dataclass
class LintRun:
    """Aggregated outcome of linting one or more targets."""

    messages: List[LintMessage] = field(default_factory=list)
    linted: List[str] = field(default_factory=list)  # qualified UDF names

    @property
    def errors(self) -> List[LintMessage]:
        """Findings at error level (analysis/load failures)."""
        return [m for m in self.messages if m.level == "error"]

    @property
    def warnings(self) -> List[LintMessage]:
        """Findings at warning level."""
        return [m for m in self.messages if m.level == "warning"]

    @property
    def notes(self) -> List[LintMessage]:
        """Findings at note level (never affect the exit code)."""
        return [m for m in self.messages if m.level == "note"]

    @property
    def exit_code(self) -> int:
        """CI semantics: 2 on errors, 1 on warnings, 0 otherwise."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def summary(self) -> str:
        """One-line tally for the end of text output."""
        return (
            f"linted {len(self.linted)} UDF(s): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.notes)} note(s)"
        )


def _load_module(target: str):
    """Resolve one target string to a list of module objects.

    Accepts a ``.py`` file path, a directory (recursed for ``*.py``),
    or a dotted module/package name.
    """
    path = Path(target)
    if path.is_dir():
        modules = []
        for file in sorted(path.rglob("*.py")):
            if file.name.startswith("__"):
                continue
            modules.extend(_load_module(str(file)))
        return modules
    if path.suffix == ".py":
        if not path.exists():
            raise AnalysisError(f"no such file: {target}")
        name = f"_repro_lint_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:  # pragma: no cover - defensive
            raise AnalysisError(f"cannot load {target}")
        module = importlib.util.module_from_spec(spec)
        # register before exec so dataclasses/pickling inside the file work
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:
            sys.modules.pop(name, None)
            raise AnalysisError(f"cannot import {target}: {exc}") from exc
        return [module]
    try:
        return [importlib.import_module(target)]
    except ImportError as exc:
        raise AnalysisError(f"cannot import {target}: {exc}") from exc


def discover_udfs(module) -> Iterator[Tuple[str, Callable, str]]:
    """Yield ``(name, fn, kind)`` for the UDFs a module defines.

    Public functions named like signals (``signal`` or ``*signal``)
    are linted with the signal rules; public ``*slot`` functions with
    the slot rule.  Functions merely re-exported from elsewhere are
    skipped so package ``__init__`` files do not duplicate findings.
    """
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        fn = getattr(module, name)
        if not callable(fn) or not hasattr(fn, "__code__"):
            continue
        if getattr(fn, "__module__", None) != module.__name__:
            continue  # re-export; its home module reports it
        if name == "signal" or name.endswith("signal"):
            yield name, fn, "signal"
        elif name == "slot" or name.endswith("slot"):
            yield name, fn, "slot"


def run_lint(
    targets: List[str],
    config: Optional[LintConfig] = None,
    named_signals: Optional[dict] = None,
) -> LintRun:
    """Lint every UDF found under ``targets``.

    ``named_signals`` optionally maps short names (the built-in
    algorithm registry) to signal functions, so ``repro lint kcore``
    works alongside file and module targets.  Failures to load a
    target or analyze a UDF become error-level findings rather than
    exceptions, so one bad file does not mask the rest of the run.
    """
    run = LintRun()
    named_signals = named_signals or {}
    for target in targets:
        if target in named_signals:
            _lint_one(run, target, named_signals[target], "signal", config)
            continue
        try:
            modules = _load_module(target)
        except AnalysisError as exc:
            run.messages.append(
                LintMessage("load-error", "error", str(exc), func=target)
            )
            continue
        for module in modules:
            for name, fn, kind in discover_udfs(module):
                _lint_one(run, f"{module.__name__}.{name}", fn, kind, config)
    run.messages.sort(key=lambda m: (m.path, m.lineno, m.code))
    return run


def _lint_one(
    run: LintRun,
    qualname: str,
    fn: Callable,
    kind: str,
    config: Optional[LintConfig],
) -> None:
    """Lint one UDF, folding analyzer rejections into the run."""
    run.linted.append(qualname)
    try:
        if kind == "slot":
            run.messages.extend(lint_slot(fn, config))
        else:
            run.messages.extend(lint_signal(fn, config))
    except AnalysisError as exc:
        code = getattr(fn, "__code__", None)
        run.messages.append(
            LintMessage(
                "analysis-error",
                "error",
                f"{qualname}: {exc}",
                lineno=code.co_firstlineno if code else 0,
                func=qualname,
                path=code.co_filename if code else "",
            )
        )
