"""Simulated distributed runtime: bitmaps, counters, network, cost model."""

from repro.runtime.bitmap import Bitmap
from repro.runtime.cost_model import (
    DGALOIS_COST,
    GEMINI_COST,
    SINGLE_THREAD_COST,
    SYMPLE_COST,
    CostModel,
)
from repro.runtime.counters import Counters, IterationRecord, StepRecord
from repro.runtime.network import SimulatedNetwork
from repro.runtime.simulation import EventLog, simulate_circulant_iteration
from repro.runtime.trace import (
    StepTimeline,
    render_schedule,
    schedule_matrix,
    step_timeline,
)

__all__ = [
    "EventLog",
    "simulate_circulant_iteration",
    "StepTimeline",
    "render_schedule",
    "schedule_matrix",
    "step_timeline",
    "Bitmap",
    "CostModel",
    "GEMINI_COST",
    "SYMPLE_COST",
    "DGALOIS_COST",
    "SINGLE_THREAD_COST",
    "Counters",
    "IterationRecord",
    "StepRecord",
    "SimulatedNetwork",
]
