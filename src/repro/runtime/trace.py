"""Schedule tracing and visualization.

Renders the circulant schedule as the machine x step matrix of
Figure 7, and extracts per-machine step timelines from the cost model's
discrete-event recursion — useful for understanding where dependency
waits occur and what double buffering hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import EngineError
from repro.runtime.cost_model import CostModel
from repro.runtime.counters import IterationRecord

__all__ = ["schedule_matrix", "render_schedule", "StepTimeline", "step_timeline"]


def schedule_matrix(num_machines: int) -> np.ndarray:
    """Matrix ``M[machine, step] = partition processed`` (Figure 7b).

    ``num_machines=1`` degenerates to the single-cell matrix ``[[0]]``:
    one machine, one step, processing its own partition with no
    dependency hand-off.
    """
    p = int(num_machines)
    if p < 1:
        raise EngineError("a circulant schedule needs at least one machine")
    matrix = np.zeros((p, p), dtype=np.int64)
    for m in range(p):
        for s in range(p):
            matrix[m, s] = (m + s + 1) % p
    return matrix


def render_schedule(num_machines: int) -> str:
    """ASCII rendering of the circulant schedule."""
    matrix = schedule_matrix(num_machines)
    p = int(num_machines)
    width = max(3, len(str(p - 1)) + 1)
    header = "      " + "".join(f"s{s}".rjust(width) for s in range(p))
    lines = [header]
    for m in range(p):
        cells = "".join(f"P{matrix[m, s]}".rjust(width) for s in range(p))
        lines.append(f"M{m}".ljust(6) + cells)
    if p == 1:
        lines.append("single machine: one step, no dependency hand-off")
    else:
        lines.append(
            "each column is a permutation: machines process disjoint "
            "partitions per step"
        )
    return "\n".join(lines)


@dataclass
class StepTimeline:
    """Per-machine start/finish instants of each circulant step.

    ``dep_wait[s, m]`` is the time machine ``m`` sat blocked at step
    ``s`` waiting for the incoming dependency hand-off (after its
    low-degree overlap ran out) — the quantity double buffering attacks.
    Timelines built before this field existed default it to zeros.
    """

    start: np.ndarray  # (steps, machines)
    finish: np.ndarray  # (steps, machines)
    dep_wait: Optional[np.ndarray] = None  # (steps, machines)

    def __post_init__(self) -> None:
        if self.dep_wait is None:
            self.dep_wait = np.zeros_like(np.asarray(self.start, dtype=np.float64))

    @property
    def num_steps(self) -> int:
        return int(self.start.shape[0]) if self.start.ndim >= 1 else 0

    @property
    def num_machines(self) -> int:
        return int(self.start.shape[1]) if self.start.ndim >= 2 else 0

    @property
    def makespan(self) -> float:
        if self.finish.size == 0:
            return 0.0
        return float(self.finish[-1].max())

    def wait_time(self) -> np.ndarray:
        """Idle time per machine: gaps between consecutive steps."""
        if self.start.ndim < 2 or self.start.shape[0] <= 1:
            return np.zeros(self.num_machines)
        gaps = self.start[1:] - self.finish[:-1]
        return gaps.clip(min=0.0).sum(axis=0)

    def dep_wait_time(self) -> np.ndarray:
        """Total exposed dependency wait per machine."""
        if self.dep_wait is None or self.dep_wait.size == 0:
            return np.zeros(self.num_machines)
        return self.dep_wait.sum(axis=0)


def step_timeline(
    record: IterationRecord,
    cost_model: CostModel,
    double_buffering: bool = True,
) -> StepTimeline:
    """Replay the cost model's recursion, keeping the full timeline.

    Mirrors :meth:`CostModel.symple_iteration_time` step by step
    (straggler slowdowns included, single-machine hand-off elided); the
    iteration-wide terms (update tail, barrier, sync) are not part of
    the per-step timeline.
    """
    steps = record.steps
    if not steps:
        return StepTimeline(np.zeros((0, 0)), np.zeros((0, 0)))
    p = steps[0].num_machines

    finish = np.zeros(p)
    prev_send_a = np.full(p, -np.inf)
    prev_send_b = np.full(p, -np.inf)
    prev_dep = np.zeros(p)
    starts: List[np.ndarray] = []
    finishes: List[np.ndarray] = []
    waits: List[np.ndarray] = []

    for step in steps:
        c_high = (
            cost_model.compute_time(step.high_edges, step.high_vertices)
            * step.slowdown
        )
        c_low = (
            cost_model.compute_time(step.low_edges, step.low_vertices)
            * step.slowdown
        )
        if p == 1:
            # degenerate circulant: the lone machine is its own "left
            # neighbor" and no hand-off ever ships, so nothing arrives
            arrive_a = np.full(p, -np.inf)
            arrive_b = np.full(p, -np.inf)
        else:
            right = (np.arange(p) + 1) % p
            arrive_a = prev_send_a[right] + cost_model.transfer_time(
                prev_dep[right] / 2.0
            ) + np.where(
                np.isfinite(prev_send_a[right]), cost_model.latency, 0.0
            )
            arrive_b = prev_send_b[right] + cost_model.transfer_time(
                prev_dep[right] / 2.0
            ) + np.where(
                np.isfinite(prev_send_b[right]), cost_model.latency, 0.0
            )

        has_work = (c_high + c_low) > 0
        t0 = finish + np.where(has_work, cost_model.step_overhead, 0.0)
        t_low = t0 + c_low
        if double_buffering:
            start_a = np.maximum(t_low, arrive_a)
            t_a = start_a + c_high / 2.0
            start_b = np.maximum(t_a, arrive_b)
            t_b = start_b + c_high / 2.0
            send_a, send_b = t_a, t_b
            wait = (start_a - t_low) + (start_b - t_a)
        else:
            start_a = np.maximum(t_low, arrive_b)
            t_b = start_a + c_high
            send_a = send_b = t_b
            wait = start_a - t_low
        starts.append(t0)
        finishes.append(t_b)
        waits.append(wait)
        finish = t_b
        prev_send_a, prev_send_b = send_a, send_b
        prev_dep = np.asarray(step.dep_bytes, dtype=np.float64)

    return StepTimeline(np.stack(starts), np.stack(finishes), np.stack(waits))
