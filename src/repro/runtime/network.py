"""Simulated interconnect with per-pair byte accounting.

Stands in for the paper's MPI/RDMA fabric.  Engines call
:meth:`SimulatedNetwork.send` for every remote transfer; the network
records bytes and message counts per (source, destination, tag) so the
communication tables can be regenerated and the cost model can price
transfers.  Local (same-machine) transfers are free and not recorded,
matching how the paper counts communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import EngineError
from repro.runtime.counters import COMM_TAGS, Counters

__all__ = ["SimulatedNetwork", "DeliveryOutcome"]


@dataclass
class DeliveryOutcome:
    """What happened to one transfer on a faulty fabric.

    Returned by a delivery hook (see
    :class:`~repro.fault.injector.FaultController`): ``attempts`` counts
    transmissions until the message got through (retransmissions after
    drops), ``extra_copies`` counts spurious duplicate deliveries, and
    ``delay`` is simulated time lost to in-flight delay plus
    retransmission backoff.  The default outcome is a clean delivery.
    """

    attempts: int = 1
    extra_copies: int = 0
    delay: float = 0.0

    @property
    def transmissions(self) -> int:
        return self.attempts + self.extra_copies


class SimulatedNetwork:
    """Byte/message accounting fabric between simulated machines.

    With ``trace=True`` every remote transfer is additionally appended
    to :attr:`log` as a ``(src, dst, tag, bytes)`` tuple (bounded by
    ``trace_limit``) — a debugging aid for protocol work, off by
    default to keep long runs cheap.

    A :attr:`delivery_hook` — ``(src, dst, tag, nbytes) ->
    DeliveryOutcome | None`` — lets a fault injector intercept every
    transfer: retransmissions and duplicate copies are charged as extra
    bytes/messages, delays as penalty time on the counters.  The hook
    may raise to model an unrecoverable delivery failure.
    """

    def __init__(
        self,
        num_machines: int,
        counters: Counters | None = None,
        trace: bool = False,
        trace_limit: int = 100_000,
    ) -> None:
        if num_machines <= 0:
            raise EngineError("a network needs at least one machine")
        self.num_machines = num_machines
        self.counters = counters if counters is not None else Counters(num_machines)
        # traffic[tag][src, dst] = bytes
        self.traffic: Dict[str, np.ndarray] = {
            tag: np.zeros((num_machines, num_machines), dtype=np.int64)
            for tag in COMM_TAGS
        }
        self.message_counts: Dict[str, np.ndarray] = {
            tag: np.zeros((num_machines, num_machines), dtype=np.int64)
            for tag in COMM_TAGS
        }
        self.trace = trace
        self.trace_limit = trace_limit
        self.log: list[Tuple[int, int, str, int]] = []
        self.dropped_log_entries = 0
        self.delivery_hook: Optional[
            Callable[[int, int, str, int], Optional[DeliveryOutcome]]
        ] = None

    def send(
        self, src: int, dst: int, tag: str, nbytes: int, messages: int = 1
    ) -> None:
        """Record a transfer.  Same-machine transfers are free."""
        if tag not in self.traffic:
            raise EngineError(f"unknown communication tag {tag!r}")
        if not (0 <= src < self.num_machines and 0 <= dst < self.num_machines):
            raise EngineError(f"machine out of range: {src} -> {dst}")
        if nbytes < 0:
            raise EngineError("cannot send a negative number of bytes")
        if src == dst:
            return
        if self.delivery_hook is not None:
            outcome = self.delivery_hook(src, dst, tag, nbytes)
            if outcome is not None and outcome.transmissions > 1:
                # retransmissions and duplicates repeat the payload
                extra = outcome.transmissions - 1
                nbytes = int(nbytes) * outcome.transmissions
                messages = int(messages) + extra
            if outcome is not None and outcome.delay > 0.0:
                self.counters.add_penalty(outcome.delay)
        self.traffic[tag][src, dst] += int(nbytes)
        self.message_counts[tag][src, dst] += int(messages)
        self.counters.add_bytes(tag, nbytes, messages)
        if self.trace:
            if len(self.log) < self.trace_limit:
                self.log.append((src, dst, tag, int(nbytes)))
            else:
                self.dropped_log_entries += 1

    # -- queries -----------------------------------------------------------

    def bytes_sent(self, tag: str | None = None) -> int:
        if tag is not None:
            return int(self.traffic[tag].sum())
        return int(sum(matrix.sum() for matrix in self.traffic.values()))

    def bytes_between(self, src: int, dst: int) -> int:
        return int(sum(matrix[src, dst] for matrix in self.traffic.values()))

    def per_machine_sent(self, tag: str | None = None) -> np.ndarray:
        """Bytes sent by each machine (row sums)."""
        if tag is not None:
            return self.traffic[tag].sum(axis=1)
        return sum(matrix.sum(axis=1) for matrix in self.traffic.values())

    def per_machine_received(self, tag: str | None = None) -> np.ndarray:
        if tag is not None:
            return self.traffic[tag].sum(axis=0)
        return sum(matrix.sum(axis=0) for matrix in self.traffic.values())

    def busiest_pair(self) -> Tuple[int, int, int]:
        """(src, dst, bytes) of the most loaded link."""
        total = sum(self.traffic.values())
        idx = int(np.argmax(total))
        src, dst = divmod(idx, self.num_machines)
        return src, dst, int(total[src, dst])
