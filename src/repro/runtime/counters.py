"""Execution counters.

Everything the evaluation section reports is derived from these:

* ``edges_traversed`` — Table 5's computation-cost metric (one count per
  neighbor examined by a signal UDF);
* per-tag communication bytes — Table 6's update/dependency breakdown;
* per-step records — inputs to the cost model that produces the
  simulated execution times of Tables 2-4/7 and Figures 10-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import EngineError, ReproError

__all__ = ["StepRecord", "IterationRecord", "Counters", "COMM_TAGS"]

COMM_TAGS = ("update", "dep", "sync", "push", "ckpt")


@dataclass
class StepRecord:
    """Per-machine work done in one scheduling step.

    For Gemini an iteration is a single step; for SympleGraph there are
    ``p`` steps per iteration.  ``high`` / ``low`` split the work by the
    differentiated-propagation degree class (everything is "high" when
    the optimization is off).
    """

    num_machines: int
    high_edges: np.ndarray = field(default=None)  # type: ignore[assignment]
    low_edges: np.ndarray = field(default=None)  # type: ignore[assignment]
    high_vertices: np.ndarray = field(default=None)  # type: ignore[assignment]
    low_vertices: np.ndarray = field(default=None)  # type: ignore[assignment]
    update_bytes: np.ndarray = field(default=None)  # type: ignore[assignment]
    dep_bytes: np.ndarray = field(default=None)  # type: ignore[assignment]
    # per-machine compute slowdown multiplier (straggler injection);
    # 1.0 everywhere when no fault plan is active
    slowdown: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        for name in (
            "high_edges",
            "low_edges",
            "high_vertices",
            "low_vertices",
            "update_bytes",
            "dep_bytes",
        ):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(self.num_machines, dtype=np.int64))
        if self.slowdown is None:
            self.slowdown = np.ones(self.num_machines, dtype=np.float64)

    def total_edges(self) -> int:
        return int(self.high_edges.sum() + self.low_edges.sum())


@dataclass
class IterationRecord:
    """One engine iteration: its steps plus iteration-wide sync traffic."""

    steps: List[StepRecord] = field(default_factory=list)
    sync_bytes: int = 0
    push_bytes: int = 0
    ckpt_bytes: int = 0
    mode: str = "pull"

    def total_edges(self) -> int:
        return sum(step.total_edges() for step in self.steps)


class Counters:
    """Aggregate counters for a full algorithm execution."""

    def __init__(self, num_machines: int) -> None:
        self.num_machines = num_machines
        self.edges_traversed = 0
        self.vertices_processed = 0
        self.bytes_by_tag: Dict[str, int] = {tag: 0 for tag in COMM_TAGS}
        self.messages_by_tag: Dict[str, int] = {tag: 0 for tag in COMM_TAGS}
        self.iterations: List[IterationRecord] = []
        # simulated time charged outside the iteration records: message
        # retransmission backoff, injected delivery delays, recovery
        # restarts (priced directly, not derived from work records)
        self.penalty_time = 0.0

    # -- recording -------------------------------------------------------

    def add_edges(self, count: int) -> None:
        self.edges_traversed += int(count)

    def add_vertices(self, count: int) -> None:
        self.vertices_processed += int(count)

    def add_bytes(self, tag: str, nbytes: int, messages: int = 1) -> None:
        if tag not in self.bytes_by_tag:
            raise EngineError(f"unknown communication tag {tag!r}")
        self.bytes_by_tag[tag] += int(nbytes)
        self.messages_by_tag[tag] += int(messages)

    def add_iteration(self, record: IterationRecord) -> None:
        self.iterations.append(record)

    def add_penalty(self, time: float) -> None:
        """Charge simulated time not derived from work records."""
        if time < 0:
            raise ValueError("penalty time must be non-negative")
        self.penalty_time += float(time)

    # -- reporting ---------------------------------------------------------

    @property
    def update_bytes(self) -> int:
        return self.bytes_by_tag["update"]

    @property
    def dep_bytes(self) -> int:
        return self.bytes_by_tag["dep"]

    @property
    def sync_bytes(self) -> int:
        return self.bytes_by_tag["sync"]

    @property
    def push_bytes(self) -> int:
        return self.bytes_by_tag["push"]

    @property
    def ckpt_bytes(self) -> int:
        return self.bytes_by_tag["ckpt"]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_tag.values())

    def merge(self, other: "Counters") -> None:
        """Fold another run's counters into this one (multi-phase algos).

        Both runs must come from the same cluster size: the per-machine
        ``StepRecord`` arrays feed the cost model and ``step_timeline``,
        which index by machine — silently mixing sizes corrupts them.
        """
        if other.num_machines != self.num_machines:
            raise ReproError(
                "cannot merge counters from different cluster sizes "
                f"({self.num_machines} vs {other.num_machines} machines)"
            )
        self.edges_traversed += other.edges_traversed
        self.vertices_processed += other.vertices_processed
        for tag in COMM_TAGS:
            self.bytes_by_tag[tag] += other.bytes_by_tag[tag]
            self.messages_by_tag[tag] += other.messages_by_tag[tag]
        self.iterations.extend(other.iterations)
        self.penalty_time += other.penalty_time

    def summary(self) -> Dict[str, float]:
        return {
            "edges_traversed": self.edges_traversed,
            "vertices_processed": self.vertices_processed,
            "update_bytes": self.update_bytes,
            "dep_bytes": self.dep_bytes,
            "sync_bytes": self.sync_bytes,
            "push_bytes": self.push_bytes,
            "ckpt_bytes": self.ckpt_bytes,
            "total_bytes": self.total_bytes,
            "iterations": len(self.iterations),
            "messages_by_tag": dict(self.messages_by_tag),
            "penalty_time": self.penalty_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.summary()})"
