"""Dense bitmap over vertex ids.

The paper's dependency state for control dependency is "a bit map (one
bit per vertex)" stored SoA-style (Section 6).  This class wraps a
NumPy boolean array with the operations the engines need, plus the
wire-size accounting used by the communication counters (one bit per
vertex, rounded up to whole bytes).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Bitmap"]


class Bitmap:
    """Fixed-size bitmap with set/test/clear and population count."""

    __slots__ = ("_bits",)

    def __init__(self, size: int, fill: bool = False) -> None:
        self._bits = np.full(size, fill, dtype=bool)

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "Bitmap":
        bm = cls(size)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size:
            bm._bits[idx] = True
        return bm

    @classmethod
    def from_array(cls, array: np.ndarray) -> "Bitmap":
        bm = cls(len(array))
        bm._bits[:] = array.astype(bool)
        return bm

    # -- element access ---------------------------------------------------

    def __len__(self) -> int:
        return int(self._bits.size)

    def get(self, i: int) -> bool:
        return bool(self._bits[i])

    def set(self, i: int, value: bool = True) -> None:
        self._bits[i] = value

    def __getitem__(self, i) -> bool:
        return self._bits[i]

    def __setitem__(self, i, value) -> None:
        self._bits[i] = value

    # -- bulk operations ----------------------------------------------------

    def clear(self) -> None:
        self._bits[:] = False

    def fill(self) -> None:
        self._bits[:] = True

    def count(self) -> int:
        """Number of set bits."""
        return int(self._bits.sum())

    def nonzero(self) -> np.ndarray:
        """Indices of set bits, ascending."""
        return np.flatnonzero(self._bits)

    def any(self) -> bool:
        return bool(self._bits.any())

    def copy(self) -> "Bitmap":
        bm = Bitmap(len(self))
        bm._bits[:] = self._bits
        return bm

    def as_array(self) -> np.ndarray:
        """The underlying boolean array (live view; mutate with care)."""
        return self._bits

    # -- set algebra ----------------------------------------------------------

    def union(self, other: "Bitmap") -> "Bitmap":
        return Bitmap.from_array(self._bits | other._bits)

    def intersection(self, other: "Bitmap") -> "Bitmap":
        return Bitmap.from_array(self._bits & other._bits)

    def difference(self, other: "Bitmap") -> "Bitmap":
        return Bitmap.from_array(self._bits & ~other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self.union(other)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self.intersection(other)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        return self.difference(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return np.array_equal(self._bits, other._bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nonzero().tolist())

    # -- wire size ---------------------------------------------------------------

    @staticmethod
    def wire_bytes(num_bits: int) -> int:
        """Bytes needed to ship ``num_bits`` as a packed bitmap."""
        return (int(num_bits) + 7) // 8

    def packed_size(self) -> int:
        """Bytes needed to ship this bitmap on the wire."""
        return self.wire_bytes(len(self))
