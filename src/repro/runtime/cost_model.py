"""Analytic/discrete-event cost model for simulated execution time.

The paper measures wall-clock seconds on a 16-node InfiniBand cluster.
We replace the hardware with a calibrated cost model that prices the
exact per-machine, per-step work and traffic the engines record:

* computation: ``edge_cost`` per neighbor scanned + ``vertex_cost`` per
  vertex processed, divided across ``cores`` per machine;
* communication: ``byte_cost`` per byte (inverse bandwidth) plus a
  fixed ``latency`` per message batch;
* synchronization: a per-iteration barrier and, for SympleGraph, the
  per-step dependency hand-off, which the discrete-event recursion in
  :meth:`CostModel.symple_iteration_time` models exactly, including the
  double-buffering overlap (Figure 9) and the low/high-degree overlap
  of differentiated propagation (Section 5.3).

Absolute numbers are in abstract time units, not seconds; the
benchmarks only interpret *ratios* (speedups, scalability curves),
which is the quantity the paper's evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
import numpy as np

from repro.runtime.counters import Counters, IterationRecord

__all__ = ["CostModel", "GEMINI_COST", "SYMPLE_COST", "DGALOIS_COST", "SINGLE_THREAD_COST"]


@dataclass(frozen=True)
class CostModel:
    """Prices recorded work into simulated time units."""

    edge_cost: float = 1.0
    vertex_cost: float = 0.5
    byte_cost: float = 0.3
    latency: float = 15.0
    iteration_overhead: float = 100.0
    step_overhead: float = 5.0
    comm_overlap: float = 0.8  # fraction of traffic hidden behind compute
    compute_scale: float = 1.0  # engine efficiency multiplier
    cores: int = 1  # cores per machine (a pure compute divisor)

    # -- primitive costs ---------------------------------------------------

    def compute_time(self, edges, vertices) -> np.ndarray:
        """Per-machine compute time for edge/vertex work arrays."""
        work = (
            np.asarray(edges, dtype=np.float64) * self.edge_cost
            + np.asarray(vertices, dtype=np.float64) * self.vertex_cost
        )
        return work * self.compute_scale / max(self.cores, 1)

    def transfer_time(self, nbytes) -> np.ndarray:
        """Wire time for a payload (no latency term)."""
        return np.asarray(nbytes, dtype=np.float64) * self.byte_cost

    # -- per-iteration timing ---------------------------------------------

    def gemini_iteration_time(self, record: IterationRecord) -> float:
        """One Gemini BSP iteration: fully parallel step + update tail.

        Updates overlap with compute; the residual tail is priced on
        the *total* volume — the fabric's bisection is the shared
        bottleneck once per-machine compute has shrunk (this is what
        stops Gemini scaling past ~8 machines in Figure 10).
        """
        total = self.iteration_overhead
        for step in record.steps:
            compute = self._step_compute(step)
            total += float(np.max(compute, initial=0.0))
            total += self._comm_tail(step.update_bytes)
        total += self._sync_cost(record)
        return total

    def _step_compute(self, step) -> np.ndarray:
        """Per-machine compute for a step, including straggler slowdown."""
        return self.compute_time(
            step.high_edges + step.low_edges,
            step.high_vertices + step.low_vertices,
        ) * step.slowdown

    def step_compute_time(self, step) -> np.ndarray:
        """Per-machine compute time for a recorded step.

        Public view of the quantity every iteration-timing function
        charges (edge + vertex work, straggler slowdown applied) — what
        the observability layer attributes per (machine, step).
        """
        return self._step_compute(step)

    def _comm_tail(self, byte_array) -> float:
        """Residual (non-overlapped) transfer time for a traffic class."""
        total_bytes = float(np.sum(byte_array))
        return float(self.transfer_time(total_bytes)) * (1.0 - self.comm_overlap)

    def symple_iteration_time(
        self,
        record: IterationRecord,
        double_buffering: bool = True,
        schedule: str = "circulant",
    ) -> float:
        """One SympleGraph iteration under circulant scheduling.

        Discrete-event recursion over machines x steps.  Machine ``m``
        at step ``s`` consumes the dependency produced by machine
        ``(m + 1) % p`` at step ``s - 1`` (dependency flows to the
        machine "on the left", Figure 7).  Low-degree work (excluded
        from dependency propagation) runs first and overlaps the wait.
        """
        steps = record.steps
        if not steps:
            return self.iteration_overhead
        p = steps[0].num_machines

        if schedule == "naive":
            # Sequential enforcement without circulant scheduling: only
            # one machine works on a partition at a time and partitions
            # are processed one after another -> the whole iteration
            # serializes.
            serial = 0.0
            for step in steps:
                compute = self._step_compute(step)
                serial += float(np.sum(compute))
                serial += float(np.sum(self.transfer_time(step.dep_bytes)))
                serial += self.latency * p
            return serial + self.iteration_overhead + self._sync_cost(record)
        if schedule != "circulant":
            raise ValueError(f"unknown schedule {schedule!r}")

        finish = np.zeros(p, dtype=np.float64)
        # dep_send[k][m] = instants machine m sent its dep groups in the
        # previous step (group A, group B).  Before step 0 nothing is
        # pending: arrival time -inf.
        prev_send_a = np.full(p, -np.inf)
        prev_send_b = np.full(p, -np.inf)
        prev_dep_bytes = np.zeros(p, dtype=np.float64)

        update_tail = 0.0
        for step in steps:
            c_high = (
                self.compute_time(step.high_edges, step.high_vertices)
                * step.slowdown
            )
            c_low = (
                self.compute_time(step.low_edges, step.low_vertices)
                * step.slowdown
            )
            # Updates and dependency traffic both share the fabric; the
            # dependency's latency component is modeled by the arrival
            # recursion below, its bandwidth component here.
            update_tail += self._comm_tail(step.update_bytes)
            update_tail += self._comm_tail(step.dep_bytes)

            if p == 1:
                # degenerate circulant: the lone machine is its own
                # "left neighbor" and the hand-off is never sent, so
                # nothing ever arrives (no self-latency charge)
                arrive_a = np.full(p, -np.inf)
                arrive_b = np.full(p, -np.inf)
            else:
                right = (np.arange(p) + 1) % p  # dependency sender per m
                arrive_a = prev_send_a[right] + self.transfer_time(
                    prev_dep_bytes[right] / 2.0
                ) + np.where(np.isfinite(prev_send_a[right]), self.latency, 0.0)
                arrive_b = prev_send_b[right] + self.transfer_time(
                    prev_dep_bytes[right] / 2.0
                ) + np.where(np.isfinite(prev_send_b[right]), self.latency, 0.0)

            # Coordination is only charged to machines with work in
            # this step; an empty bucket is skipped for free.
            has_work = (c_high + c_low) > 0
            t0 = finish + np.where(has_work, self.step_overhead, 0.0)
            t_low = t0 + c_low  # low-degree work needs no dependency
            if double_buffering:
                start_a = np.maximum(t_low, arrive_a)
                t_a = start_a + c_high / 2.0
                start_b = np.maximum(t_a, arrive_b)
                t_b = start_b + c_high / 2.0
                send_a, send_b = t_a, t_b
            else:
                # Dependency only ships once the whole step is done.
                start = np.maximum(t_low, arrive_b)
                t_b = start + c_high
                send_a = send_b = t_b
            finish = t_b
            prev_send_a, prev_send_b = send_a, send_b
            prev_dep_bytes = np.asarray(step.dep_bytes, dtype=np.float64)

        total = float(np.max(finish, initial=0.0))
        total += update_tail + self.iteration_overhead + self._sync_cost(record)
        return total

    def dgalois_iteration_time(self, record: IterationRecord) -> float:
        """One D-Galois/Gluon BSP round: compute + reduce + broadcast.

        Gluon's partition-agnostic synchronization pays both a reduce
        (mirror -> master) and a broadcast (master -> mirror) phase per
        round, each with its own latency; its runtime also has a higher
        per-edge constant at small scale (the paper measures D-Galois
        3.3x slower on 16 nodes while scaling further out).
        """
        total = self.iteration_overhead
        for step in record.steps:
            compute = self._step_compute(step)
            total += float(np.max(compute, initial=0.0))
            # reduce phase: pipelined, but paid again by the broadcast
            total += 2.0 * self._comm_tail(step.update_bytes)
            total += 2.0 * self.latency
        # broadcast phase mirrors the reduce phase volume
        total += self._sync_cost(record) + self.latency
        return total

    def push_iteration_time(self, record: IterationRecord) -> float:
        """Sparse push iteration (same for every distributed engine)."""
        total = self.iteration_overhead
        for step in record.steps:
            compute = self._step_compute(step)
            total += float(np.max(compute, initial=0.0))
            total += self._comm_tail(step.update_bytes) + self.latency
        total += self._sync_cost(record)
        return total

    def _sync_cost(self, record: IterationRecord) -> float:
        """State broadcast (frontier/flag sync) at iteration end."""
        if record.sync_bytes <= 0:
            return 0.0
        tail = self.transfer_time(record.sync_bytes) * (1.0 - self.comm_overlap)
        return float(tail) + self.latency

    def _ckpt_cost(self, record: IterationRecord) -> float:
        """Checkpoint write at an iteration boundary.

        Checkpoint traffic streams to the durable store while the next
        phase computes, so only the non-overlapped tail is charged, plus
        one commit-barrier latency."""
        if record.ckpt_bytes <= 0:
            return 0.0
        tail = self.transfer_time(record.ckpt_bytes) * (1.0 - self.comm_overlap)
        return float(tail) + self.latency

    # -- whole-run timing ------------------------------------------------------

    def execution_time(
        self,
        counters: Counters,
        engine: str,
        double_buffering: bool = True,
        schedule: str = "circulant",
    ) -> float:
        """Total simulated time of a recorded run."""
        total = 0.0
        for record in counters.iterations:
            if record.mode == "push":
                total += self.push_iteration_time(record)
            elif engine == "gemini":
                total += self.gemini_iteration_time(record)
            elif engine == "symple":
                total += self.symple_iteration_time(
                    record, double_buffering=double_buffering, schedule=schedule
                )
            elif engine == "dgalois":
                total += self.dgalois_iteration_time(record)
            elif engine == "single":
                total += self.single_thread_iteration_time(record)
            else:
                raise ValueError(f"unknown engine kind {engine!r}")
            total += self._ckpt_cost(record)
        return total + counters.penalty_time

    def single_thread_iteration_time(self, record: IterationRecord) -> float:
        """Sequential oracle: sum of all work, no communication."""
        total = 0.0
        for step in record.steps:
            total += float(np.sum(self._step_compute(step)))
        return total

    def breakdown(
        self,
        counters: Counters,
        engine: str,
        double_buffering: bool = True,
        schedule: str = "circulant",
    ) -> dict:
        """Decompose a run's simulated time into its cost sources.

        Returns a dict with ``compute`` (critical-path edge/vertex
        work), ``communication`` (residual transfer tails), ``overhead``
        (barriers, latency, step coordination, injected penalties),
        ``checkpoint`` (fault-tolerance snapshot writes), and — for
        SympleGraph — ``dependency_wait`` (time machines spent blocked
        on incoming dependency state, the quantity double buffering
        attacks).  The components sum to :meth:`execution_time` up to
        the dependency-wait attribution.
        """
        compute = 0.0
        comm = 0.0
        overhead = counters.penalty_time
        checkpoint = 0.0
        dep_wait = 0.0
        total = self.execution_time(
            counters, engine, double_buffering=double_buffering,
            schedule=schedule,
        )
        for record in counters.iterations:
            overhead += self.iteration_overhead
            for step in record.steps:
                machine_compute = self._step_compute(step)
                compute += float(np.max(machine_compute, initial=0.0))
                comm += self._comm_tail(step.update_bytes)
                comm += self._comm_tail(step.dep_bytes)
            if record.sync_bytes > 0:
                comm += float(
                    self.transfer_time(record.sync_bytes)
                    * (1.0 - self.comm_overlap)
                )
                overhead += self.latency
            checkpoint += self._ckpt_cost(record)
            if record.mode == "push":
                overhead += self.latency * len(record.steps)
        dep_wait = max(0.0, total - compute - comm - overhead - checkpoint)
        return {
            "total": total,
            "compute": compute,
            "communication": comm,
            "overhead": overhead,
            "checkpoint": checkpoint,
            "dependency_wait": dep_wait,
        }

    def with_cores(self, cores: int) -> "CostModel":
        """Copy of this model with a different per-machine core count."""
        return replace(self, cores=cores)

    def scaled(self, compute_scale: float) -> "CostModel":
        """Copy of this model with a different compute multiplier."""
        return replace(self, compute_scale=compute_scale)


# Calibrated presets.  Gemini and SympleGraph share hardware constants;
# D-Galois gets the heavier runtime constant observed in the paper;
# the single-thread baselines (Galois / GAPBS) are lean, hand-tuned
# codes: lower per-edge constant, one core.
GEMINI_COST = CostModel()
SYMPLE_COST = CostModel()
DGALOIS_COST = CostModel(compute_scale=2.6, iteration_overhead=250.0)
SINGLE_THREAD_COST = CostModel(
    compute_scale=0.8, cores=1, iteration_overhead=0.0, latency=0.0
)
