"""Independent discrete-event validation of the circulant timing model.

:meth:`CostModel.symple_iteration_time` computes step timings with a
closed-form recursion.  This module re-derives the same quantity from
first principles with a heap-based event simulator: machines are
resources, dependency messages are events with explicit send/arrival
times, and steps begin when *both* the machine is free and the awaited
dependency has arrived.  The test-suite asserts the two implementations
agree exactly — each acts as an executable specification of the other
(the recursion can silently drift when edited; the simulator is much
harder to get subtly wrong).

The simulator intentionally shares no code with the recursion beyond
the :class:`CostModel` constants.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.cost_model import CostModel
from repro.runtime.counters import IterationRecord

__all__ = ["EventLog", "simulate_circulant_iteration"]


@dataclass
class EventLog:
    """Trace of a simulated iteration."""

    events: List[Tuple[float, str]] = field(default_factory=list)
    finish_time: float = 0.0

    def record(self, time: float, what: str) -> None:
        self.events.append((time, what))


def simulate_circulant_iteration(
    record: IterationRecord,
    cost_model: CostModel,
    double_buffering: bool = True,
    log: EventLog | None = None,
) -> float:
    """Event-driven makespan of one circulant iteration.

    Returns the same quantity as the analytic recursion in
    :meth:`CostModel.symple_iteration_time` *minus* the iteration-wide
    terms (update tail, barrier, sync): the pure step-schedule
    makespan.  Semantics simulated:

    * machine ``m`` at step ``s`` needs the dependency groups produced
      by machine ``(m+1) % p`` at step ``s-1``;
    * a step runs: [coordination] -> low-degree work -> (wait for
      group-A dependency) -> high-A -> (wait group B) -> high-B;
    * with double buffering off, both groups ship together at step end;
    * dependency transfer time = bytes/2 per group x byte_cost, plus
      the per-message latency; step 0 awaits nothing.
    """
    steps = record.steps
    if not steps:
        return 0.0
    p = steps[0].num_machines
    counter = itertools.count()

    # arrival[(machine, step, group)] = time the dependency is available
    arrival: Dict[Tuple[int, int, str], float] = {}
    for m in range(p):
        arrival[(m, 0, "A")] = -np.inf
        arrival[(m, 0, "B")] = -np.inf

    free_at = np.zeros(p)
    finish = 0.0
    # The schedule has no cross-machine resource contention beyond the
    # dependency arrivals, so event order per machine is just its step
    # order; we still process in global time order via a heap so the
    # arrival map is always populated before it is read.
    heap: List[Tuple[int, int, int]] = []  # (step, tiebreak, machine)
    for m in range(p):
        heapq.heappush(heap, (0, next(counter), m))

    while heap:
        s, _, m = heapq.heappop(heap)
        step = steps[s]
        c_high = float(
            cost_model.compute_time([step.high_edges[m]], [step.high_vertices[m]])[0]
        ) * float(step.slowdown[m])
        c_low = float(
            cost_model.compute_time([step.low_edges[m]], [step.low_vertices[m]])[0]
        ) * float(step.slowdown[m])
        has_work = (c_high + c_low) > 0
        t = free_at[m] + (cost_model.step_overhead if has_work else 0.0)
        t += c_low
        if log:
            log.record(t, f"m{m} s{s} low done")

        if double_buffering:
            t = max(t, arrival[(m, s, "A")])
            t += c_high / 2.0
            send_a = t
            t = max(t, arrival[(m, s, "B")])
            t += c_high / 2.0
            send_b = t
        else:
            t = max(t, arrival[(m, s, "B")])
            t += c_high
            send_a = send_b = t
        if log:
            log.record(t, f"m{m} s{s} high done")

        # ship dependency to the left neighbor for its next step
        if s + 1 < len(steps):
            left = (m - 1) % p
            transfer = float(
                cost_model.transfer_time(step.dep_bytes[m] / 2.0)
            )
            arrival[(left, s + 1, "A")] = send_a + transfer + cost_model.latency
            arrival[(left, s + 1, "B")] = send_b + transfer + cost_model.latency

        free_at[m] = t
        finish = max(finish, t)
        if s + 1 < len(steps):
            heapq.heappush(heap, (s + 1, next(counter), m))

    if log:
        log.finish_time = finish
    return finish
