"""Dynamic graphs: batched mutations over an immutable CSR base.

The CSR container is immutable by design — every engine, partition,
and shared-memory publication assumes the adjacency it was built from
never moves.  Mutation therefore happens *around* the CSR, BLADYG
style: a :class:`DynamicGraph` keeps an immutable base
:class:`~repro.graph.csr.CSRGraph` plus a delta overlay (an insert log
and per-edge tombstones) and periodically *compacts* the overlay into a
fresh base.  Every applied :class:`MutationBatch` bumps a monotone
``version`` — the tag the :class:`~repro.api.Session` keys its
partition cache on, so a mutated graph can never be served a stale
topology.

Semantics
---------

* Edges form a **multiset** (the CSR allows parallel edges).  An
  insert appends one copy; a delete removes **every** live copy of the
  named ``(u, v)`` pair and raises :class:`~repro.errors.GraphError`
  when none exists.
* Within one batch the order is: grow vertices, then deletes (against
  the pre-batch edge set), then inserts.  A batch is atomic — it
  either applies fully or raises without changing the graph.
* ``snapshot()`` materializes the current edge set as a canonical
  :class:`CSRGraph`: surviving base edges in base order followed by
  surviving inserts in insertion order (the CSR build then sorts
  stably by source).  Two dynamic graphs that went through different
  batch sequences to the same edge multiset produce snapshots with
  identical adjacency iff their surviving-edge orders agree; the
  per-vertex neighbor *sets* always agree, which is what the
  incremental-vs-scratch metamorphic gate compares on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["MutationBatch", "MutationStats", "DynamicGraph"]


def _as_vertex_array(values: Any, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise GraphError(f"{name} must be a 1-D array of vertex ids")
    if arr.size and arr.min() < 0:
        raise GraphError(f"{name} contains a negative vertex id")
    return arr


class MutationBatch:
    """One atomic set of graph mutations.

    Parameters
    ----------
    insert_src, insert_dst:
        Parallel endpoint arrays of edges to insert.
    insert_weights:
        Optional parallel weights (required iff the target graph is
        weighted).
    delete_src, delete_dst:
        Parallel endpoint arrays of edges to delete (every live copy).
    add_vertices:
        Number of fresh isolated vertices appended after the current
        id range.
    """

    def __init__(
        self,
        insert_src: Any = (),
        insert_dst: Any = (),
        insert_weights: Optional[Any] = None,
        delete_src: Any = (),
        delete_dst: Any = (),
        add_vertices: int = 0,
    ) -> None:
        self.insert_src = _as_vertex_array(insert_src, "insert_src")
        self.insert_dst = _as_vertex_array(insert_dst, "insert_dst")
        self.delete_src = _as_vertex_array(delete_src, "delete_src")
        self.delete_dst = _as_vertex_array(delete_dst, "delete_dst")
        if self.insert_src.shape != self.insert_dst.shape:
            raise GraphError("insert_src and insert_dst must parallel")
        if self.delete_src.shape != self.delete_dst.shape:
            raise GraphError("delete_src and delete_dst must parallel")
        self.insert_weights: Optional[np.ndarray] = None
        if insert_weights is not None:
            w = np.asarray(insert_weights, dtype=np.float64)
            if w.shape != self.insert_src.shape:
                raise GraphError(
                    "insert_weights must parallel the insert endpoints"
                )
            self.insert_weights = w
        if add_vertices < 0:
            raise GraphError(
                f"add_vertices must be >= 0, got {add_vertices}"
            )
        self.add_vertices = int(add_vertices)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def inserts(
        cls,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Iterable[float]] = None,
    ) -> "MutationBatch":
        """A pure-insert batch from ``(src, dst)`` pairs."""
        src, dst = _split_pairs(edges)
        w = None if weights is None else list(weights)
        return cls(insert_src=src, insert_dst=dst, insert_weights=w)

    @classmethod
    def deletes(cls, edges: Iterable[Tuple[int, int]]) -> "MutationBatch":
        """A pure-delete batch from ``(src, dst)`` pairs."""
        src, dst = _split_pairs(edges)
        return cls(delete_src=src, delete_dst=dst)

    # -- inspection --------------------------------------------------------

    @property
    def num_inserts(self) -> int:
        return int(self.insert_src.size)

    @property
    def num_deletes(self) -> int:
        return int(self.delete_src.size)

    @property
    def empty(self) -> bool:
        return (
            not self.num_inserts
            and not self.num_deletes
            and not self.add_vertices
        )

    def touched_vertices(self) -> np.ndarray:
        """Unique endpoints of every mutated edge (seeding anchor)."""
        return np.unique(
            np.concatenate([
                self.insert_src, self.insert_dst,
                self.delete_src, self.delete_dst,
            ])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutationBatch(inserts={self.num_inserts}, "
            f"deletes={self.num_deletes}, "
            f"add_vertices={self.add_vertices})"
        )

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: the shape ``POST /mutate`` accepts."""
        inserts: List[List[float]]
        if self.insert_weights is None:
            inserts = [
                [int(u), int(v)]
                for u, v in zip(self.insert_src, self.insert_dst)
            ]
        else:
            inserts = [
                [int(u), int(v), float(w)]
                for u, v, w in zip(
                    self.insert_src, self.insert_dst, self.insert_weights
                )
            ]
        return {
            "inserts": inserts,
            "deletes": [
                [int(u), int(v)]
                for u, v in zip(self.delete_src, self.delete_dst)
            ],
            "add_vertices": self.add_vertices,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MutationBatch":
        if not isinstance(payload, dict):
            raise GraphError("mutation payload must be an object")
        unknown = set(payload) - {"inserts", "deletes", "add_vertices"}
        if unknown:
            raise GraphError(
                f"unknown mutation fields {sorted(unknown)}; expected "
                "inserts, deletes, add_vertices"
            )
        ins_src: List[int] = []
        ins_dst: List[int] = []
        ins_w: List[float] = []
        weighted = None
        for row in payload.get("inserts") or ():
            if not isinstance(row, (list, tuple)) or len(row) not in (2, 3):
                raise GraphError(
                    f"insert rows must be [src, dst] or [src, dst, weight], "
                    f"got {row!r}"
                )
            has_w = len(row) == 3
            if weighted is None:
                weighted = has_w
            elif weighted != has_w:
                raise GraphError(
                    "insert rows must be uniformly weighted or unweighted"
                )
            ins_src.append(int(row[0]))
            ins_dst.append(int(row[1]))
            if has_w:
                ins_w.append(float(row[2]))
        del_src: List[int] = []
        del_dst: List[int] = []
        for row in payload.get("deletes") or ():
            if not isinstance(row, (list, tuple)) or len(row) != 2:
                raise GraphError(
                    f"delete rows must be [src, dst], got {row!r}"
                )
            del_src.append(int(row[0]))
            del_dst.append(int(row[1]))
        return cls(
            insert_src=ins_src,
            insert_dst=ins_dst,
            insert_weights=ins_w if weighted else None,
            delete_src=del_src,
            delete_dst=del_dst,
            add_vertices=int(payload.get("add_vertices") or 0),
        )


def _split_pairs(edges: Iterable[Tuple[int, int]]):
    src: List[int] = []
    dst: List[int] = []
    for pair in edges:
        u, v = pair
        src.append(int(u))
        dst.append(int(v))
    return src, dst


@dataclass
class MutationStats:
    """What one :meth:`DynamicGraph.apply` did."""

    version: int
    inserts: int
    deletes: int
    #: live edge copies removed (>= ``deletes`` with parallel edges)
    removed_copies: int
    add_vertices: int
    #: pending overlay work: live insert-log entries + base tombstones
    overlay_edges: int
    num_vertices: int
    num_edges: int
    compacted: bool


class DynamicGraph:
    """A mutable graph: immutable CSR base + delta overlay + versioning.

    ``compact_ratio`` / ``compact_min`` tune auto-compaction: after a
    batch, when the overlay (live inserts + base tombstones) exceeds
    ``max(compact_min, compact_ratio * base_edges)`` the overlay is
    folded into a fresh base CSR.  ``compact_ratio=0`` compacts after
    every batch; a very large ``compact_min`` disables auto-compaction
    (call :meth:`compact` manually).
    """

    def __init__(
        self,
        base: CSRGraph,
        compact_ratio: float = 0.25,
        compact_min: int = 1024,
    ) -> None:
        if compact_ratio < 0:
            raise GraphError("compact_ratio must be >= 0")
        if compact_min < 0:
            raise GraphError("compact_min must be >= 0")
        self.compact_ratio = float(compact_ratio)
        self.compact_min = int(compact_min)
        self.version = 0
        self.compactions = 0
        self._history: List[Tuple[int, MutationBatch]] = []
        self._rebase(base)
        self._snapshot: CSRGraph = base
        self._snapshot_version = 0

    def _rebase(self, base: CSRGraph) -> None:
        self._base = base
        src, dst = base.edge_array()
        self._base_src = src
        self._base_dst = dst
        self._base_w = base.out_weights
        self._base_live = np.ones(base.num_edges, dtype=bool)
        self._ins_src = np.empty(0, dtype=np.int64)
        self._ins_dst = np.empty(0, dtype=np.int64)
        self._ins_w = (
            np.empty(0, dtype=np.float64) if base.is_weighted else None
        )
        self._ins_live = np.empty(0, dtype=bool)
        self._num_vertices = base.num_vertices

    # -- basic facts -------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return int(self._base_live.sum() + self._ins_live.sum())

    @property
    def is_weighted(self) -> bool:
        return self._base.is_weighted

    @property
    def base(self) -> CSRGraph:
        """The immutable CSR the overlay currently layers over."""
        return self._base

    @property
    def overlay_edges(self) -> int:
        """Pending overlay entries: live inserts + base tombstones."""
        dead_base = self._base_live.size - int(self._base_live.sum())
        return int(self._ins_live.sum()) + dead_base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGraph(version={self.version}, "
            f"num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, "
            f"overlay_edges={self.overlay_edges})"
        )

    # -- mutation ----------------------------------------------------------

    def apply(self, batch: MutationBatch) -> MutationStats:
        """Apply one batch atomically; bumps ``version``."""
        if not isinstance(batch, MutationBatch):
            raise GraphError(
                f"apply() takes a MutationBatch, got {type(batch).__name__}"
            )
        n = self._num_vertices + batch.add_vertices
        for name, arr in (
            ("insert", batch.insert_src), ("insert", batch.insert_dst),
            ("delete", batch.delete_src), ("delete", batch.delete_dst),
        ):
            if arr.size and arr.max() >= n:
                raise GraphError(
                    f"{name} endpoint {int(arr.max())} out of range "
                    f"[0, {n}) (after add_vertices={batch.add_vertices})"
                )
        if self.is_weighted and batch.num_inserts:
            if batch.insert_weights is None:
                raise GraphError(
                    "graph is weighted: inserts must carry weights"
                )
        elif not self.is_weighted and batch.insert_weights is not None:
            raise GraphError(
                "graph is unweighted: inserts must not carry weights"
            )

        # resolve every delete against the pre-batch edge set before
        # committing anything, so a bad batch leaves the graph untouched
        base_kill, ins_kill, removed = self._resolve_deletes(batch)

        # commit
        self._num_vertices = n
        if base_kill.size:
            self._base_live[base_kill] = False
        if ins_kill.size:
            self._ins_live[ins_kill] = False
        if batch.num_inserts:
            self._ins_src = np.concatenate([self._ins_src, batch.insert_src])
            self._ins_dst = np.concatenate([self._ins_dst, batch.insert_dst])
            self._ins_live = np.concatenate([
                self._ins_live, np.ones(batch.num_inserts, dtype=bool),
            ])
            if self._ins_w is not None:
                self._ins_w = np.concatenate(
                    [self._ins_w, batch.insert_weights]
                )
        self.version += 1
        self._history.append((self.version, batch))

        compacted = False
        threshold = max(
            self.compact_min,
            int(self.compact_ratio * self._base.num_edges),
        )
        if self.overlay_edges > threshold:
            self.compact()
            compacted = True
        return MutationStats(
            version=self.version,
            inserts=batch.num_inserts,
            deletes=batch.num_deletes,
            removed_copies=removed,
            add_vertices=batch.add_vertices,
            overlay_edges=self.overlay_edges,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            compacted=compacted,
        )

    def _resolve_deletes(self, batch: MutationBatch):
        """Find every live copy of each deleted pair (or raise)."""
        base_kill: List[int] = []
        ins_kill: List[int] = []
        base_dead = np.zeros(self._base_live.size, dtype=bool)
        ins_dead = np.zeros(self._ins_live.size, dtype=bool)
        indptr = self._base.out_indptr
        old_n = indptr.size - 1
        for u, v in zip(batch.delete_src, batch.delete_dst):
            u, v = int(u), int(v)
            found = 0
            if u < old_n:
                lo, hi = int(indptr[u]), int(indptr[u + 1])
                hits = lo + np.flatnonzero(
                    (self._base_dst[lo:hi] == v)
                    & self._base_live[lo:hi]
                    & ~base_dead[lo:hi]
                )
                base_kill.extend(int(e) for e in hits)
                base_dead[hits] = True
                found += hits.size
            if self._ins_live.size:
                hits = np.flatnonzero(
                    (self._ins_src == u) & (self._ins_dst == v)
                    & self._ins_live & ~ins_dead
                )
                ins_kill.extend(int(e) for e in hits)
                ins_dead[hits] = True
                found += hits.size
            if not found:
                raise GraphError(
                    f"cannot delete absent edge ({u}, {v}); deletes "
                    "apply to the pre-batch edge set"
                )
        removed = len(base_kill) + len(ins_kill)
        return (
            np.asarray(base_kill, dtype=np.int64),
            np.asarray(ins_kill, dtype=np.int64),
            removed,
        )

    # -- materialization ---------------------------------------------------

    def snapshot(self) -> CSRGraph:
        """The current edge multiset as a canonical immutable CSR.

        Cached per version: repeated calls between mutations return the
        same object (identity matters — executors rebind on it).
        """
        if self._snapshot_version == self.version:
            return self._snapshot
        live_b = self._base_live
        live_i = self._ins_live
        src = np.concatenate([self._base_src[live_b], self._ins_src[live_i]])
        dst = np.concatenate([self._base_dst[live_b], self._ins_dst[live_i]])
        weights = None
        if self._base_w is not None:
            weights = np.concatenate(
                [self._base_w[live_b], self._ins_w[live_i]]
            )
        self._snapshot = CSRGraph(self._num_vertices, src, dst, weights)
        self._snapshot_version = self.version
        return self._snapshot

    def compact(self) -> CSRGraph:
        """Fold the overlay into a fresh base CSR; returns the new base."""
        base = self.snapshot()
        self._rebase(base)
        self.compactions += 1
        return base

    # -- history -----------------------------------------------------------

    def batches_since(
        self, version: int
    ) -> Optional[List[Tuple[int, MutationBatch]]]:
        """``(version, batch)`` pairs applied after ``version``.

        Returns None when ``version`` is ahead of this graph (an
        incremental handle from another lineage must recompute).
        """
        if version > self.version or version < 0:
            return None
        return [(v, b) for v, b in self._history if v > version]
