"""Edge-list serialization.

A minimal text format compatible with the widely used SNAP/webgraph
edge-list conventions: one ``src dst [weight]`` triple per line, ``#``
comments ignored.  A compact NumPy ``.npz`` binary format is provided
for fast reload of generated benchmark graphs.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "save_metis",
    "load_metis",
]

PathLike = Union[str, os.PathLike]


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``src dst [weight]`` lines; weights included when present."""
    src, dst = graph.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# vertices {graph.num_vertices}\n")
        if graph.is_weighted:
            weights = graph.out_weights
            for s, d, w in zip(src, dst, weights):
                fh.write(f"{s} {d} {float(w)!r}\n")
        else:
            for s, d in zip(src, dst):
                fh.write(f"{s} {d}\n")


def load_edge_list(path: PathLike, num_vertices: int | None = None) -> CSRGraph:
    """Read an edge-list file.

    The vertex count is taken from a ``# vertices N`` header if present,
    from the ``num_vertices`` argument otherwise, falling back to
    ``max id + 1``.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    header_vertices = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    header_vertices = int(parts[1])
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"{path}:{lineno}: expected 2 or 3 fields")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) == 3:
                weights.append(float(parts[2]))
    if weights and len(weights) != len(srcs):
        raise GraphError("file mixes weighted and unweighted edges")
    n = num_vertices if num_vertices is not None else header_vertices
    if n is None:
        n = (max(max(srcs), max(dsts)) + 1) if srcs else 0
    return CSRGraph(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights, dtype=np.float64) if weights else None,
    )


def save_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write the METIS adjacency format (1-indexed, undirected).

    METIS represents undirected graphs: the graph must be symmetric and
    self-loop-free (METIS disallows both loops and duplicate entries);
    the edge count in the header is the number of undirected edges.
    """
    src, dst = graph.edge_array()
    if np.any(src == dst):
        raise GraphError("METIS format cannot represent self-loops")
    fwd = set(zip(src.tolist(), dst.tolist()))
    if any((v, u) not in fwd for u, v in fwd):
        raise GraphError("METIS format requires a symmetric graph")
    if len(fwd) != len(src):
        raise GraphError("METIS format cannot represent parallel edges")

    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges // 2}\n")
        for v in range(graph.num_vertices):
            neighbors = " ".join(
                str(int(u) + 1) for u in sorted(graph.out_neighbors(v))
            )
            fh.write(neighbors + "\n")


def load_metis(path: PathLike) -> CSRGraph:
    """Read a METIS adjacency file (unweighted, fmt=0)."""
    with open(path, "r", encoding="utf-8") as fh:
        # keep blank lines: an empty adjacency line is an isolated vertex
        lines = [
            line.rstrip("\n")
            for line in fh
            if not line.lstrip().startswith("%")
        ]
    while lines and not lines[0].strip():
        lines.pop(0)
    if not lines:
        raise GraphError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError("METIS header needs vertex and edge counts")
    num_vertices, num_edges = int(header[0]), int(header[1])
    body = lines[1:]
    if len(body) > num_vertices:
        if any(line.strip() for line in body[num_vertices:]):
            raise GraphError(
                f"METIS file declares {num_vertices} vertices but has "
                f"{len(body)} adjacency lines"
            )
        body = body[:num_vertices]
    elif len(body) < num_vertices:
        # trailing isolated vertices may be represented by missing
        # blank lines at end-of-file
        body = body + [""] * (num_vertices - len(body))
    srcs: list[int] = []
    dsts: list[int] = []
    for v, line in enumerate(body):
        for token in line.split():
            u = int(token) - 1
            if not 0 <= u < num_vertices:
                raise GraphError(f"METIS neighbor {token} out of range")
            srcs.append(v)
            dsts.append(u)
    if len(srcs) != 2 * num_edges:
        raise GraphError(
            f"METIS header declares {num_edges} edges but the body "
            f"lists {len(srcs)} directed entries"
        )
    return CSRGraph(
        num_vertices,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
    )


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save the graph to a compressed NumPy archive."""
    src, dst = graph.edge_array()
    payload = {
        "num_vertices": np.asarray([graph.num_vertices], dtype=np.int64),
        "src": src,
        "dst": dst,
    }
    if graph.is_weighted:
        payload["weights"] = graph.out_weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path) as data:
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(
            int(data["num_vertices"][0]), data["src"], data["dst"], weights
        )
