"""Graph substrate: CSR container, builders, generators, transforms, IO."""

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, MutationBatch, MutationStats
from repro.graph.generators import (
    attach_chain,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_weights,
    rmat,
    star_graph,
)
from repro.graph.io import (
    load_edge_list,
    load_metis,
    load_npz,
    save_edge_list,
    save_metis,
    save_npz,
)
from repro.graph.properties import (
    DegreeSummary,
    average_degree,
    degree_summary,
    high_degree_ratio,
    is_symmetric,
    isolated_vertices,
)
from repro.graph.transform import (
    add_reverse_edges,
    induced_subgraph,
    relabel,
    remove_self_loops,
    to_undirected,
    with_vertex_weights,
)

__all__ = [
    "CSRGraph",
    "DynamicGraph",
    "MutationBatch",
    "MutationStats",
    "GraphBuilder",
    "rmat",
    "erdos_renyi",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "attach_chain",
    "random_weights",
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "load_metis",
    "save_metis",
    "DegreeSummary",
    "degree_summary",
    "high_degree_ratio",
    "isolated_vertices",
    "is_symmetric",
    "average_degree",
    "add_reverse_edges",
    "to_undirected",
    "relabel",
    "induced_subgraph",
    "remove_self_loops",
    "with_vertex_weights",
]
