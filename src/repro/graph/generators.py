"""Synthetic graph generators.

The paper evaluates on R-MAT graphs generated with the Graph500
parameters (a=0.57, b=0.19, c=0.19, d=0.05) plus four real-world social
and web graphs.  Without access to Twitter-2010 / Friendster /
Clueweb-12 / Gsh-2015, the dataset registry (``repro.bench.datasets``)
substitutes degree-matched R-MAT instances produced here.

All generators take an explicit ``seed`` so experiments are exactly
reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "rmat",
    "erdos_renyi",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "attach_chain",
    "random_weights",
]

# Graph500 R-MAT probabilities.
GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
GRAPH500_D = 0.05


def _rmat_edges(
    scale: int,
    num_edges: int,
    a: float,
    b: float,
    c: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized recursive-matrix edge placement (Chakrabarti et al.)."""
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for level in range(scale):
        r = rng.random(num_edges)
        right = r >= ab  # quadrant c or d: dst bit set
        lower = (r >= a) & (r < ab) | (r >= abc)  # quadrant b or d: src bit
        src |= lower.astype(np.int64) << level
        dst |= right.astype(np.int64) << level
    return src, dst


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    seed: int = 0,
    permute: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters follow the Graph500 specification: ``edge_factor`` edges
    per vertex are placed by recursive-matrix quadrant selection with
    probabilities ``(a, b, c, 1-a-b-c)``.  Vertex ids are randomly
    permuted (as Graph500 requires) unless ``permute=False``.
    """
    if scale < 0 or scale > 30:
        raise GraphError("scale must be in [0, 30] for in-memory generation")
    if not 0 < a + b + c < 1:
        raise GraphError("R-MAT probabilities must satisfy 0 < a+b+c < 1")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src, dst = _rmat_edges(scale, m, a, b, c, rng)
    if permute:
        perm = rng.permutation(n)
        src, dst = perm[src], perm[dst]
    return CSRGraph(n, src, dst)


def erdos_renyi(
    num_vertices: int, num_edges: int, seed: int = 0
) -> CSRGraph:
    """Uniform random directed multigraph G(n, m)."""
    if num_vertices <= 0 and num_edges > 0:
        raise GraphError("cannot place edges in an empty graph")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    return CSRGraph(num_vertices, src, dst)


def path_graph(num_vertices: int, directed: bool = False) -> CSRGraph:
    """Path 0 - 1 - ... - (n-1)."""
    if num_vertices == 0:
        return CSRGraph(0, np.empty(0, np.int64), np.empty(0, np.int64))
    fwd = np.arange(num_vertices - 1, dtype=np.int64)
    src, dst = fwd, fwd + 1
    if not directed:
        src = np.concatenate([src, fwd + 1])
        dst = np.concatenate([dst, fwd])
    return CSRGraph(num_vertices, src, dst)


def cycle_graph(num_vertices: int, directed: bool = False) -> CSRGraph:
    """Cycle 0 - 1 - ... - (n-1) - 0."""
    if num_vertices == 0:
        return CSRGraph(0, np.empty(0, np.int64), np.empty(0, np.int64))
    idx = np.arange(num_vertices, dtype=np.int64)
    nxt = (idx + 1) % num_vertices
    src, dst = idx, nxt
    if not directed:
        src = np.concatenate([src, nxt])
        dst = np.concatenate([dst, idx])
    return CSRGraph(num_vertices, src, dst)


def star_graph(num_leaves: int) -> CSRGraph:
    """Undirected star: hub 0 connected to leaves 1..num_leaves."""
    hub = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    src = np.concatenate([hub, leaves])
    dst = np.concatenate([leaves, hub])
    return CSRGraph(num_leaves + 1, src, dst)


def complete_graph(num_vertices: int) -> CSRGraph:
    """All ordered pairs (u, v), u != v."""
    idx = np.arange(num_vertices, dtype=np.int64)
    src = np.repeat(idx, num_vertices)
    dst = np.tile(idx, num_vertices)
    keep = src != dst
    return CSRGraph(num_vertices, src[keep], dst[keep])


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Undirected 2-D grid, vertex ``r * cols + c``."""
    edges_src = []
    edges_dst = []
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    # horizontal
    if cols > 1:
        edges_src.append(idx[:, :-1].ravel())
        edges_dst.append(idx[:, 1:].ravel())
    # vertical
    if rows > 1:
        edges_src.append(idx[:-1, :].ravel())
        edges_dst.append(idx[1:, :].ravel())
    if not edges_src:
        return CSRGraph(rows * cols, np.empty(0, np.int64), np.empty(0, np.int64))
    src = np.concatenate(edges_src)
    dst = np.concatenate(edges_dst)
    return CSRGraph(
        rows * cols,
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
    )


def attach_chain(graph: CSRGraph, chain_length: int) -> CSRGraph:
    """Attach an undirected chain to vertex 0 of ``graph``.

    Models the structure the paper notes for real social graphs: a
    small-diameter core with a long link structure attached (Section
    7.2), which makes the linear-peel K-core competitive on ``tw``/``fr``
    but not on the pure R-MAT graphs.
    """
    n = graph.num_vertices
    src, dst = graph.edge_array()
    chain = np.arange(chain_length, dtype=np.int64) + n
    prev = np.concatenate([[0], chain[:-1]])
    new_src = np.concatenate([src, prev, chain])
    new_dst = np.concatenate([dst, chain, prev])
    return CSRGraph(n + chain_length, new_src, new_dst)


def random_weights(
    graph: CSRGraph, seed: int = 0, low: float = 0.0, high: float = 1.0
) -> CSRGraph:
    """Return a copy of ``graph`` with uniform random edge weights."""
    rng = np.random.default_rng(seed)
    src, dst = graph.edge_array()
    weights = rng.uniform(low, high, size=src.size)
    return CSRGraph(graph.num_vertices, src, dst, weights)
