"""Graph transformations.

The paper's pre-processing (Section 7.1): directed datasets are
symmetrized to run undirected algorithms, and undirected datasets gain
reverse edges to run directed algorithms.  We also provide relabeling
and subgraph extraction used by the partitioners and tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "add_reverse_edges",
    "to_undirected",
    "relabel",
    "induced_subgraph",
    "remove_self_loops",
    "with_vertex_weights",
]


def add_reverse_edges(graph: CSRGraph) -> CSRGraph:
    """Add the reverse of every edge (duplicates possible)."""
    src, dst = graph.edge_array()
    weights = None
    if graph.is_weighted:
        weights = np.concatenate([_sorted_weights(graph)] * 2)
    return CSRGraph(
        graph.num_vertices,
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        weights,
    )


def _unique_edge_pairs(src: np.ndarray, dst: np.ndarray):
    """Deduplicate ``(src, dst)`` pairs without a composite integer key.

    Returns ``(unique_src, unique_dst, inverse)`` where ``inverse`` maps
    each input pair to its unique row.  Dedup runs on the stacked pair
    columns directly, so it stays exact at any vertex count — the old
    ``src * num_vertices + dst`` key overflowed int64 once
    ``num_vertices**2`` passed ``2**63``.
    """
    pairs = np.stack([src, dst], axis=1)
    unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
    return unique[:, 0], unique[:, 1], inverse.reshape(-1)


def to_undirected(graph: CSRGraph) -> CSRGraph:
    """Symmetrize: keep one copy of each direction, deduplicated.

    Weighted graphs keep their weights: all parallel copies of
    ``(u, v)`` and of the reverse ``(v, u)`` collapse to the *minimum*
    weight among them, so the two surviving directions always agree and
    the result is symmetric in weights as well as structure.
    """
    src, dst = graph.edge_array()
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    uniq_src, uniq_dst, inverse = _unique_edge_pairs(all_src, all_dst)
    weights = None
    if graph.is_weighted:
        doubled = np.concatenate([_sorted_weights(graph)] * 2)
        weights = np.full(uniq_src.size, np.inf)
        np.minimum.at(weights, inverse, doubled)
    return CSRGraph(graph.num_vertices, uniq_src, uniq_dst, weights)


def relabel(graph: CSRGraph, mapping: Sequence[int]) -> CSRGraph:
    """Apply a vertex permutation: new id of v is ``mapping[v]``."""
    perm = np.asarray(mapping, dtype=np.int64)
    if perm.shape != (graph.num_vertices,):
        raise GraphError("mapping must cover every vertex exactly once")
    if np.unique(perm).size != graph.num_vertices:
        raise GraphError("mapping must be a permutation")
    src, dst = graph.edge_array()
    weights = _sorted_weights(graph) if graph.is_weighted else None
    return CSRGraph(graph.num_vertices, perm[src], perm[dst], weights)


def induced_subgraph(graph: CSRGraph, vertices: Sequence[int]) -> CSRGraph:
    """Subgraph induced by ``vertices`` (relabeled to 0..k-1 in order)."""
    verts = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
    if verts.size and (verts[0] < 0 or verts[-1] >= graph.num_vertices):
        raise GraphError("subgraph vertex out of range")
    new_id = -np.ones(graph.num_vertices, dtype=np.int64)
    new_id[verts] = np.arange(verts.size)
    src, dst = graph.edge_array()
    keep = (new_id[src] >= 0) & (new_id[dst] >= 0)
    weights = _sorted_weights(graph)[keep] if graph.is_weighted else None
    return CSRGraph(verts.size, new_id[src[keep]], new_id[dst[keep]], weights)


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Drop every edge ``v -> v``."""
    src, dst = graph.edge_array()
    keep = src != dst
    weights = _sorted_weights(graph)[keep] if graph.is_weighted else None
    return CSRGraph(graph.num_vertices, src[keep], dst[keep], weights)


def with_vertex_weights(
    num_vertices: int, seed: int = 0, low: float = 0.1, high: float = 1.0
) -> np.ndarray:
    """Uniform random per-vertex weights (used by graph sampling)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=num_vertices)


def _sorted_weights(graph: CSRGraph) -> np.ndarray:
    """Edge weights in the same (src-sorted) order as edge_array()."""
    if graph.out_weights is None:
        raise GraphError("graph is unweighted")
    return graph.out_weights
