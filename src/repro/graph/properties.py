"""Structural graph properties and statistics.

These back the dataset registry (degree-skew summaries such as the
paper's |V'|/|V| high-degree ratio in Table 1) and several tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "high_degree_ratio",
    "isolated_vertices",
    "is_symmetric",
    "average_degree",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    p99: float


def degree_summary(graph: CSRGraph, direction: str = "out") -> DegreeSummary:
    """Summarize the out- or in-degree distribution."""
    if direction == "out":
        deg = graph.out_degrees()
    elif direction == "in":
        deg = graph.in_degrees()
    else:
        raise ValueError("direction must be 'out' or 'in'")
    if deg.size == 0:
        return DegreeSummary(0, 0, 0.0, 0.0, 0.0)
    return DegreeSummary(
        minimum=int(deg.min()),
        maximum=int(deg.max()),
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        p99=float(np.percentile(deg, 99)),
    )


def high_degree_ratio(graph: CSRGraph, threshold: int = 32) -> float:
    """Fraction of vertices with in-degree >= threshold (Table 1's |V'|/|V|)."""
    if graph.num_vertices == 0:
        return 0.0
    return float(np.mean(graph.in_degrees() >= threshold))


def isolated_vertices(graph: CSRGraph) -> np.ndarray:
    """Vertices with no incident edge in either direction."""
    deg = graph.out_degrees() + graph.in_degrees()
    return np.flatnonzero(deg == 0)


def is_symmetric(graph: CSRGraph) -> bool:
    """True if for every edge (u, v) the reverse (v, u) also exists."""
    src, dst = graph.edge_array()
    fwd = set(zip(src.tolist(), dst.tolist()))
    return all((v, u) in fwd for u, v in fwd)


def average_degree(graph: CSRGraph) -> float:
    """Edges per vertex (the paper's 'edge factor')."""
    if graph.num_vertices == 0:
        return 0.0
    return graph.num_edges / graph.num_vertices
