"""Incremental graph builder.

:class:`CSRGraph` is immutable; :class:`GraphBuilder` accumulates edges
(with optional weights) and materializes the CSR form once, optionally
deduplicating parallel edges and dropping self-loops the way the paper's
pre-processing does for the evaluation graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulate edges and build an immutable :class:`CSRGraph`."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self._src: list[int] = []
        self._dst: list[int] = []
        self._weights: list[float] = []
        self._weighted: Optional[bool] = None

    def __len__(self) -> int:
        return len(self._src)

    def add_edge(self, src: int, dst: int, weight: Optional[float] = None) -> "GraphBuilder":
        """Add one directed edge; returns self for chaining."""
        if not 0 <= src < self.num_vertices:
            raise GraphError(f"source {src} out of range")
        if not 0 <= dst < self.num_vertices:
            raise GraphError(f"destination {dst} out of range")
        has_weight = weight is not None
        if self._weighted is None:
            self._weighted = has_weight
        elif self._weighted != has_weight:
            raise GraphError("cannot mix weighted and unweighted edges")
        self._src.append(src)
        self._dst.append(dst)
        if has_weight:
            self._weights.append(float(weight))
        return self

    def add_undirected_edge(
        self, a: int, b: int, weight: Optional[float] = None
    ) -> "GraphBuilder":
        """Add both directions of an undirected edge."""
        self.add_edge(a, b, weight)
        self.add_edge(b, a, weight)
        return self

    def build(
        self,
        dedup: bool = False,
        drop_self_loops: bool = False,
    ) -> CSRGraph:
        """Materialize the CSR graph.

        Parameters
        ----------
        dedup:
            Collapse parallel edges (keeping the first weight seen).
        drop_self_loops:
            Remove edges ``v -> v``.
        """
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        weights = (
            np.asarray(self._weights, dtype=np.float64) if self._weighted else None
        )

        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]

        if dedup and src.size:
            keys = src * self.num_vertices + dst
            _, first = np.unique(keys, return_index=True)
            first.sort()
            src, dst = src[first], dst[first]
            if weights is not None:
                weights = weights[first]

        return CSRGraph(self.num_vertices, src, dst, weights)
