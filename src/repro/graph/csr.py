"""Compressed Sparse Row (CSR) graph container.

The container keeps both the forward (outgoing) and the reverse
(incoming) adjacency so that push-style engines can scan out-edges and
pull-style engines can scan in-edges without re-sorting.  All payloads
are NumPy arrays, which keeps the memory layout identical to the
Struct-of-Arrays organization the paper uses (Section 6).

Vertices are dense integers ``0 .. num_vertices-1``.  Edges may carry a
float weight (used by the graph-sampling algorithm); unweighted graphs
store no weight array.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]


def _build_csr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Sort edges by ``src`` and build (indptr, indices, weights)."""
    order = np.argsort(src, kind="stable")
    sorted_dst = dst[order]
    sorted_w = weights[order] if weights is not None else None
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, sorted_dst.astype(np.int64, copy=False), sorted_w


class CSRGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices-1``.
    src, dst:
        Parallel arrays of edge endpoints (edge i is ``src[i] -> dst[i]``).
    weights:
        Optional parallel array of float edge weights.

    Use :meth:`from_edges` for validated construction from any iterable.
    """

    def __init__(
        self,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError("src and dst must be 1-D arrays of equal length")
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise GraphError("edge source out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise GraphError("edge destination out of range")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise GraphError("weights must parallel the edge arrays")

        self._num_vertices = int(num_vertices)
        self._num_edges = int(src.size)
        self.out_indptr, self.out_indices, self.out_weights = _build_csr(
            num_vertices, src, dst, weights
        )
        self.in_indptr, self.in_indices, self.in_weights = _build_csr(
            num_vertices, dst, src, weights
        )

    # -- construction -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Iterable[float]] = None,
    ) -> "CSRGraph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise GraphError("edges must be (src, dst) pairs")
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        w = None
        if weights is not None:
            w = np.asarray(list(weights), dtype=np.float64)
        return cls(num_vertices, src, dst, w)

    # -- basic properties ----------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def is_weighted(self) -> bool:
        return self.out_weights is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(num_vertices={self._num_vertices}, "
            f"num_edges={self._num_edges}, weighted={self.is_weighted})"
        )

    # -- degrees --------------------------------------------------------

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees, indexed by vertex."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees, indexed by vertex."""
        return np.diff(self.in_indptr)

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        self._check_vertex(v)
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        self._check_vertex(v)
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    # -- adjacency -------------------------------------------------------

    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of v's outgoing edges (a CSR slice; do not mutate)."""
        self._check_vertex(v)
        return self.out_indices[self.out_indptr[v] : self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of v's incoming edges (a CSR slice; do not mutate)."""
        self._check_vertex(v)
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_edge_weights(self, v: int) -> np.ndarray:
        """Weights of v's outgoing edges, parallel to out_neighbors(v)."""
        if self.out_weights is None:
            raise GraphError("graph is unweighted")
        self._check_vertex(v)
        return self.out_weights[self.out_indptr[v] : self.out_indptr[v + 1]]

    def in_edge_weights(self, v: int) -> np.ndarray:
        """Weights of v's incoming edges, parallel to in_neighbors(v)."""
        if self.in_weights is None:
            raise GraphError("graph is unweighted")
        self._check_vertex(v)
        return self.in_weights[self.in_indptr[v] : self.in_indptr[v + 1]]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield every edge as a ``(src, dst)`` pair, grouped by source."""
        for v in range(self._num_vertices):
            for u in self.out_neighbors(v):
                yield v, int(u)

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays sorted by source."""
        src = np.repeat(np.arange(self._num_vertices), self.out_degrees())
        return src, self.out_indices.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        return bool(np.isin(v, self.out_neighbors(u)).any())

    # -- helpers ----------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_vertices:
            raise GraphError(
                f"vertex {v} out of range [0, {self._num_vertices})"
            )
