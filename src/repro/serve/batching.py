"""Request queue with a batching coalescer and admission control.

The :class:`Broker` is the heart of the serving layer: a bounded,
thread-safe queue of :class:`QueryRequest` objects, one logical lane
per graph.  A worker draining a lane does not take one request — it
takes a *batch*:

* the head of the lane, plus
* every queued request with the same **batch key** (the request's
  :class:`~repro.api.RunConfig` digest with ``sources`` stripped) —
  these are same-graph/same-config BFS/SSSP queries that merge into
  one multi-source batched run, and
* every queued request with the same **dedup key** (the full config
  digest) — identical requests that ride the same execution for free.

Merged sources keep arrival order and drop duplicates, so the executed
config is itself an ordinary :class:`~repro.api.RunConfig` — replaying
it through a direct :meth:`Session.run` reproduces the served result
digest bit for bit, which is exactly what the serve-smoke CI gate does.

Admission control lives at :meth:`Broker.submit`: when the queue holds
``max_depth`` requests the submit raises :class:`QueueFull` (the HTTP
layer turns that into 429 + Retry-After) instead of letting latency
grow without bound.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from concurrent.futures import Future

from repro.api import SOURCED_ALGORITHMS, RunConfig
from repro.errors import ServeError

__all__ = ["Broker", "BrokerClosed", "QueryRequest", "QueueFull", "plan_batch"]

_ids = itertools.count(1)


class QueueFull(ServeError):
    """The bounded request queue is at capacity (HTTP 429)."""

    def __init__(self, depth: int, retry_after: float = 1.0) -> None:
        super().__init__(
            f"request queue is full ({depth} queued); retry later"
        )
        self.depth = depth
        self.retry_after = retry_after


class BrokerClosed(ServeError):
    """The broker stopped accepting requests (drain in progress, 503)."""


@dataclass
class QueryRequest:
    """One admitted query waiting for (or riding) an engine run."""

    graph: str
    config: RunConfig
    id: int = field(default_factory=lambda: next(_ids))
    future: "Future[Dict[str, object]]" = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    cancelled: bool = False

    def __post_init__(self) -> None:
        self.dedup_key: str = self.config.digest()
        # batchable iff the request pins explicit sources on a sourced
        # algorithm — then same-base-config requests merge source lists
        if (
            self.config.algorithm in SOURCED_ALGORITHMS
            and self.config.sources is not None
        ):
            self.batch_key: Optional[str] = self.config.replace(
                sources=None
            ).digest()
        else:
            self.batch_key = None

    @property
    def queue_wait(self) -> float:
        return time.perf_counter() - self.enqueued_at


def plan_batch(batch: List[QueryRequest]) -> Tuple[RunConfig, bool]:
    """The single config a batch executes as, and whether it coalesced.

    Merged sources keep first-arrival order and drop duplicates; a
    batch of identical requests (pure dedup) or a singleton executes
    the head request's config unchanged.
    """
    head = batch[0]
    if head.batch_key is None or len(batch) == 1:
        return head.config, False
    merged: List[int] = []
    seen = set()
    for req in batch:
        for source in req.config.sources:
            if source not in seen:
                seen.add(source)
                merged.append(source)
    config = head.config.replace(sources=tuple(merged))
    return config, config.digest() != head.dedup_key


class Broker:
    """Bounded multi-lane request queue with batch-forming dequeue."""

    def __init__(
        self,
        max_depth: int = 64,
        batching: bool = True,
        max_batch: int = 64,
    ) -> None:
        if max_depth < 1:
            raise ServeError(f"max_depth must be >= 1, got {max_depth}")
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.max_depth = max_depth
        self.batching = batching
        self.max_batch = max_batch
        self._cond = threading.Condition()
        self._lanes: Dict[str, Deque[QueryRequest]] = {}
        self._depth = 0
        self._closed = False

    # -- submission (event-loop side) -------------------------------------

    def submit(self, request: QueryRequest) -> None:
        """Admit a request, or refuse with :class:`QueueFull` /
        :class:`BrokerClosed`."""
        with self._cond:
            if self._closed:
                raise BrokerClosed("broker is draining; not accepting work")
            if self._depth >= self.max_depth:
                raise QueueFull(self._depth)
            self._lanes.setdefault(request.graph, deque()).append(request)
            self._depth += 1
            self._cond.notify_all()

    def depth(self) -> int:
        with self._cond:
            return self._depth

    def close(self) -> None:
        """Stop admitting; queued work remains for workers to drain."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- dequeue (worker side) --------------------------------------------

    def next_batch(
        self, graph: str, timeout: Optional[float] = None
    ) -> Optional[List[QueryRequest]]:
        """Block until the lane has work, then take one batch.

        Returns ``None`` once the broker is closed and the lane is
        empty — the worker's signal to exit.  ``timeout`` bounds one
        wait slice (used by tests; workers pass ``None`` and rely on
        close() waking them).
        """
        with self._cond:
            while True:
                lane = self._lanes.get(graph)
                while lane and lane[0].cancelled:
                    lane.popleft()
                    self._depth -= 1
                if lane:
                    return self._form_batch(lane)
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def _form_batch(self, lane: Deque[QueryRequest]) -> List[QueryRequest]:
        head = lane.popleft()
        self._depth -= 1
        batch = [head]
        if not self.batching:
            return batch
        kept: Deque[QueryRequest] = deque()
        while lane:
            req = lane.popleft()
            if req.cancelled:
                self._depth -= 1
                continue
            mergeable = req.dedup_key == head.dedup_key or (
                head.batch_key is not None
                and req.batch_key == head.batch_key
            )
            if mergeable and len(batch) < self.max_batch:
                batch.append(req)
                self._depth -= 1
            else:
                kept.append(req)
        lane.extend(kept)
        return batch
