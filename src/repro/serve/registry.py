"""Named-graph registry: load and partition once, serve forever.

Every entry binds a graph to its own caching :class:`~repro.api.Session`,
so the expensive per-run artifacts — partitions per (strategy,
machines), executors per (backend, workers), the process executor's
shared-memory CSR topology — are built on the first query that needs
them and shared read-only by every request after it.  That is the whole
point of the daemon: the script workflow paid load + partition +
publish on every query; the registry pays it once per graph.

Graph *specs* are strings so the CLI and HTTP admin endpoint share one
format:

* a benchmark dataset short name — ``s27``, ``tw``, … (``dataset:``
  prefix optional);
* a generator spec — ``rmat:scale=11,edge_factor=8,seed=7`` with
  optional ``weighted=<seed>`` (adds seeded uniform edge weights, which
  SSSP queries need) and ``directed=1`` (skips symmetrization);
* an edge-list file — ``file:/path/to/graph.txt`` (whitespace- or
  comma-separated ``src dst [weight]`` lines).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import RunConfig, Session
from repro.errors import ServeError
from repro.graph.csr import CSRGraph

__all__ = ["GraphEntry", "GraphRegistry", "parse_graph_spec"]

#: how many example sources /graphs advertises so clients need not
#: guess which vertex ids are non-isolated
_SAMPLE_SOURCES = 64


def parse_graph_spec(spec: str) -> CSRGraph:
    """Build a graph from a registry spec string (see module docs)."""
    kind, _, rest = spec.partition(":")
    if kind == "dataset" or not rest:
        from repro.bench import DATASETS, dataset

        name = rest if kind == "dataset" else spec
        if name not in DATASETS:
            raise ServeError(
                f"unknown dataset {name!r} in graph spec {spec!r}; "
                f"available: {sorted(DATASETS)}"
            )
        return dataset(name)
    if kind == "rmat":
        from repro.graph.generators import random_weights, rmat
        from repro.graph.transform import to_undirected

        params: Dict[str, int] = {}
        for pair in rest.split(","):
            key, _, value = pair.partition("=")
            key = key.strip()
            try:
                params[key] = int(value)
            except ValueError:
                raise ServeError(
                    f"bad rmat parameter {pair!r} in graph spec {spec!r}; "
                    "expected key=integer"
                ) from None
        allowed = {"scale", "edge_factor", "seed", "weighted", "directed"}
        unknown = set(params) - allowed
        if unknown or "scale" not in params:
            raise ServeError(
                f"graph spec {spec!r} must set scale= and may set "
                f"{sorted(allowed - {'scale'})}; got {sorted(params)}"
            )
        weighted = params.pop("weighted", None)
        directed = params.pop("directed", 0)
        graph = rmat(**params)
        if not directed:
            graph = to_undirected(graph)
        if weighted is not None:
            graph = random_weights(graph, seed=weighted, low=0.1, high=1.0)
        return graph
    if kind == "file":
        from repro.graph.io import load_edge_list

        return load_edge_list(rest)
    raise ServeError(
        f"unknown graph spec {spec!r}; expected a dataset name, "
        "rmat:scale=...,edge_factor=...,seed=..., or file:/path"
    )


@dataclass
class GraphEntry:
    """One served graph: the CSR, its session, and advertisable facts."""

    name: str
    graph: CSRGraph
    spec: str
    session: Session = field(init=False)
    loaded_at: float = field(init=False)

    def __post_init__(self) -> None:
        self.session = Session(self.graph)
        self.loaded_at = time.time()

    def describe(self) -> Dict[str, object]:
        """JSON-ready facts for the ``/graphs`` endpoint.

        Reads the session's *current* snapshot, not the load-time CSR,
        so the advertised shape tracks ``POST /mutate``.
        """
        graph, version = self.session._graph_snapshot()
        degrees = graph.out_degrees()
        sample = np.flatnonzero(degrees > 0)[:_SAMPLE_SOURCES]
        return {
            "name": self.name,
            "spec": self.spec,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "weighted": bool(graph.is_weighted),
            "graph_version": int(version),
            "sample_sources": [int(v) for v in sample],
        }

    def close(self) -> None:
        self.session.close()


class GraphRegistry:
    """Thread-safe name -> :class:`GraphEntry` mapping."""

    def __init__(self) -> None:
        self._entries: Dict[str, GraphEntry] = {}
        self._lock = threading.Lock()

    def load(self, name: str, spec: str) -> GraphEntry:
        """Build the graph for ``spec`` and register it under ``name``."""
        return self.add(name, parse_graph_spec(spec), spec=spec)

    def add(self, name: str, graph: CSRGraph,
            spec: str = "<programmatic>") -> GraphEntry:
        """Register an already-built graph under ``name``."""
        if not name:
            raise ServeError("graph name must be non-empty")
        entry = GraphEntry(name=name, graph=graph, spec=spec)
        with self._lock:
            if name in self._entries:
                raise ServeError(f"graph {name!r} is already registered")
            self._entries[name] = entry
        return entry

    def get(self, name: str) -> GraphEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ServeError(
                f"unknown graph {name!r}; registered: {self.names()}"
            )
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> List[GraphEntry]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def describe(self) -> List[Dict[str, object]]:
        return [entry.describe() for entry in self.entries()]

    def default_name(self) -> Optional[str]:
        """The only graph's name, when exactly one is registered.

        Lets single-graph deployments omit ``graph`` in requests.
        """
        names = self.names()
        return names[0] if len(names) == 1 else None

    def close(self) -> None:
        """Close every entry's session (idempotent, like the sessions)."""
        for entry in self.entries():
            entry.close()
