"""Service metrics: QPS, queue depth, batch sizes, latency percentiles.

:class:`ServeMetrics` is the single sink every serving-layer component
reports into.  It is ObsHub-backed: the serve-level counters live in an
:class:`~repro.obs.metrics.MetricsRegistry` shared with per-worker
:class:`~repro.obs.hooks.ObsHub` instances (built by :meth:`hub`), so
``/metrics`` exposes the service picture (requests, rejections, queue
depth, batch sizes, wait/latency histograms) *and* the engine-level
events of the runs it served (phases, kernel batches, comm bytes) in
one Prometheus scrape.

Latency percentiles are computed two ways on purpose:

* the ``repro_serve_latency_seconds`` histogram uses fixed buckets —
  the right shape for a Prometheus scrape pipeline;
* :meth:`snapshot` keeps a bounded window of exact samples and reports
  true p50/p99 — the numbers ``bench_serve.py`` and the ``/stats``
  endpoint print, where bucket-edge quantization would drown the
  batched-vs-unbatched comparison.

All mutators take the internal lock: the HTTP side (asyncio event
loop) and the per-graph worker threads report concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.hooks import ObsHub
from repro.obs.metrics import MetricsRegistry

__all__ = ["ServeMetrics", "percentile"]

#: request latency / queue-wait buckets, in seconds
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: batch-size buckets (requests merged into one engine run)
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: terminal request statuses the requests_total counter partitions by
STATUSES = ("ok", "error", "rejected", "draining", "timeout")


def percentile(samples: List[float], q: float) -> float:
    """Exact q-quantile (0..1) by linear interpolation, 0.0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class ServeMetrics:
    """Thread-safe service metrics over one shared registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 window: int = 4096) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=window)
        self._batch_sizes: Deque[int] = deque(maxlen=window)
        self._started = time.perf_counter()
        reg = self.registry
        self._requests = reg.counter(
            "repro_serve_requests_total",
            "terminal request outcomes by status", labels=("status",),
        )
        self._coalesced = reg.counter(
            "repro_serve_coalesced_requests_total",
            "requests answered by a run they shared with other requests",
        )
        self._runs = reg.counter(
            "repro_serve_runs_total", "engine runs executed by workers"
        )
        self._depth = reg.gauge(
            "repro_serve_queue_depth", "admitted requests awaiting a worker"
        )
        self._inflight = reg.gauge(
            "repro_serve_inflight_batches", "batches currently executing",
        )
        self._batch_hist = reg.histogram(
            "repro_serve_batch_size",
            "requests merged into one engine run",
            buckets=BATCH_BUCKETS,
        )
        self._latency_hist = reg.histogram(
            "repro_serve_latency_seconds",
            "admission-to-response latency of ok requests",
            buckets=LATENCY_BUCKETS,
        )
        self._wait_hist = reg.histogram(
            "repro_serve_queue_wait_seconds",
            "time between admission and batch formation",
            buckets=LATENCY_BUCKETS,
        )
        self._run_hist = reg.histogram(
            "repro_serve_run_seconds",
            "wall-clock of one batched engine run",
            buckets=LATENCY_BUCKETS,
        )
        # zero-fill the status partitions so /metrics always exposes
        # the full taxonomy, scrapes before the first rejection included
        for status in STATUSES:
            self._requests.inc(0.0, status=status)

    def hub(self) -> ObsHub:
        """A fresh ObsHub feeding this registry.

        One per worker thread: the hub carries per-run phase context and
        is not thread-safe, but all hubs share the one registry that
        ``/metrics`` exports.
        """
        return ObsHub(metrics=self.registry)

    # -- admission-side reporting -----------------------------------------

    def queue_depth(self, depth: int) -> None:
        with self._lock:
            self._depth.set(float(depth))

    def rejected(self, status: str = "rejected") -> None:
        with self._lock:
            self._requests.inc(status=status)

    # -- worker-side reporting --------------------------------------------

    def batch_begin(self, size: int, queue_waits: List[float]) -> None:
        with self._lock:
            self._inflight.inc(1.0)
            self._batch_hist.observe(float(size))
            self._batch_sizes.append(int(size))
            for wait in queue_waits:
                self._wait_hist.observe(wait)

    def batch_end(self, run_seconds: float) -> None:
        with self._lock:
            self._inflight.inc(-1.0)
            self._runs.inc()
            self._run_hist.observe(run_seconds)

    def request_done(self, status: str, latency: float,
                     coalesced: bool = False) -> None:
        with self._lock:
            self._requests.inc(status=status)
            if status == "ok":
                self._latency_hist.observe(latency)
                self._latencies.append(latency)
                if coalesced:
                    self._coalesced.inc()

    # -- export ------------------------------------------------------------

    def export_prometheus(self) -> str:
        with self._lock:
            return self.registry.export_prometheus()

    def snapshot(self) -> Dict[str, float]:
        """Exact service-level numbers for ``/stats`` and the bench."""
        with self._lock:
            latencies = list(self._latencies)
            batches = list(self._batch_sizes)
            served = self._requests.value(status="ok")
            uptime = time.perf_counter() - self._started
            return {
                "uptime_seconds": uptime,
                "requests_ok": served,
                "requests_error": self._requests.value(status="error"),
                "requests_rejected": self._requests.value(status="rejected"),
                "requests_draining": self._requests.value(status="draining"),
                "requests_timeout": self._requests.value(status="timeout"),
                "coalesced_requests": self._coalesced.value(),
                "runs": self._runs.value(),
                "queue_depth": self._depth.value(),
                "qps": served / uptime if uptime > 0 else 0.0,
                "latency_p50": percentile(latencies, 0.50),
                "latency_p99": percentile(latencies, 0.99),
                "mean_batch_size": (
                    sum(batches) / len(batches) if batches else 0.0
                ),
            }
