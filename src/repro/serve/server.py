"""The asyncio HTTP/JSON server and its per-graph worker threads.

Split of labor:

* the **event loop** (this module's protocol code) parses HTTP,
  admits requests into the :class:`~repro.serve.batching.Broker`
  (turning :class:`~repro.serve.batching.QueueFull` into 429 +
  Retry-After and a draining broker into 503), and awaits each
  request's future under the per-request timeout;
* one **worker thread per graph** drains that graph's lane batch by
  batch: :func:`~repro.serve.batching.plan_batch` merges the batch
  into a single :class:`~repro.api.RunConfig`, the entry's cached
  :class:`~repro.api.Session` executes it (partition, executor, and
  shared-memory topology reused run over run), and every request in
  the batch is answered with the run's result and canonical digest.

Endpoints
---------

``GET /healthz``
    200 ``{"status": "ok"}`` while serving, 503 ``"draining"`` after
    drain starts.  ``GET /readyz`` is an alias.
``GET /metrics``
    Prometheus text exposition of the shared registry: serve-level
    counters/histograms plus engine-level run metrics.
``GET /stats``
    Exact JSON service numbers (QPS, p50/p99 latency, batch sizes).
``GET /graphs``
    The registry's advertised facts per graph, sample sources included.
``POST /graphs``
    Admin: load ``{"name": ..., "spec": ...}`` into the registry and
    start its worker.
``POST /query``
    Execute ``{"graph": ..., "config": {RunConfig fields}}`` (the
    config may also be spelled flat at the top level).  Responds with
    the run's metrics, the executed (possibly source-merged) config,
    and its ``digest`` — bit-identical to a direct ``Session.run`` of
    that config.
``POST /mutate``
    Apply ``{"graph": ..., "inserts": [[u, v], ...], "deletes":
    [[u, v], ...], "add_vertices": n}`` as one atomic mutation batch
    through :meth:`~repro.api.Session.mutate`.  Responds with the new
    graph version and shape; later queries run against the mutated
    topology (cached partitions are refreshed incrementally, executor
    shared-memory republished on the next run).

Graceful drain: SIGTERM (or :meth:`ServeApp.begin_drain`) closes the
broker, lets the workers finish every admitted request, then stops the
listener.  New queries during the drain get 503 + Retry-After.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import InvalidStateError
from typing import Any, Dict, List, Optional, Tuple

from dataclasses import asdict

from repro.api import RunConfig
from repro.errors import EngineError, ReproError, ServeError
from repro.graph.dynamic import MutationBatch
from repro.serve.batching import (
    Broker,
    BrokerClosed,
    QueryRequest,
    QueueFull,
    plan_batch,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import GraphRegistry

__all__ = ["ServeApp", "ServerThread", "serve_forever"]

#: request bodies beyond this get 413 instead of an allocation
MAX_BODY_BYTES = 1 << 20

#: RunConfig fields a query may set; live attachments are server-owned
_CONFIG_FIELDS = frozenset(
    (
        "engine", "algorithm", "machines", "seed", "options", "faults",
        "checkpointing", "executor", "workers", "verify", "bfs_roots",
        "kcore_k", "kmeans_rounds", "sources", "mode",
        "async_bucket_width",
    )
)

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"


class _HttpReply(Exception):
    """Early-exit reply raised by handlers (errors, rejections)."""

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after: Optional[float] = None) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServeApp:
    """The service: registry + broker + metrics + worker threads."""

    def __init__(
        self,
        registry: GraphRegistry,
        max_depth: int = 64,
        batching: bool = True,
        max_batch: int = 64,
        request_timeout: float = 30.0,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        if request_timeout <= 0:
            raise ServeError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.registry = registry
        self.broker = Broker(
            max_depth=max_depth, batching=batching, max_batch=max_batch
        )
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.request_timeout = request_timeout
        self._workers: Dict[str, threading.Thread] = {}
        self._workers_lock = threading.Lock()
        self._draining = threading.Event()
        self._started = time.time()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn one worker thread per registered graph."""
        for name in self.registry.names():
            self._ensure_worker(name)

    def _ensure_worker(self, name: str) -> None:
        with self._workers_lock:
            if name in self._workers:
                return
            worker = threading.Thread(
                target=self._worker, args=(name,),
                name=f"repro-serve-{name}", daemon=True,
            )
            self._workers[name] = worker
            worker.start()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting; admitted requests still complete."""
        self._draining.set()
        self.broker.close()

    def join_workers(self, timeout: Optional[float] = None) -> bool:
        """Wait for the workers to drain their lanes; True if all exited."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._workers_lock:
            workers = list(self._workers.values())
        for worker in workers:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
            worker.join(remaining)
        return not any(w.is_alive() for w in workers)

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain, wait for the workers, release every graph session."""
        self.begin_drain()
        self.join_workers(timeout)
        self.registry.close()

    # -- worker side -------------------------------------------------------

    def _worker(self, name: str) -> None:
        entry = self.registry.get(name)
        # one hub per worker: per-run phase context is thread-local to
        # the worker, the registry behind it is the shared /metrics one
        hub = self.metrics.hub()
        while True:
            batch = self.broker.next_batch(name)
            self.metrics.queue_depth(self.broker.depth())
            if batch is None:
                return
            live = [req for req in batch if not req.cancelled]
            if not live:
                continue
            self._serve_batch(entry, live, hub)

    def _serve_batch(self, entry, batch: List[QueryRequest], hub) -> None:
        config, merged = plan_batch(batch)
        self.metrics.batch_begin(
            len(batch), [req.queue_wait for req in batch]
        )
        t0 = time.perf_counter()
        try:
            result = entry.session.run(config.replace(obs=hub))
        except Exception as exc:
            self.metrics.batch_end(time.perf_counter() - t0)
            for req in batch:
                try:
                    req.future.set_exception(exc)
                except InvalidStateError:  # pragma: no cover - timed out
                    pass
            return
        self.metrics.batch_end(time.perf_counter() - t0)
        digest = result.digest()
        body = result.to_dict()
        executed = config.to_dict()
        for req in batch:
            payload = {
                "id": req.id,
                "graph": entry.name,
                "digest": digest,
                "result": body,
                "executed_config": executed,
                "batch_size": len(batch),
                "coalesced": len(batch) > 1 or merged,
            }
            try:
                req.future.set_result(payload)
            except InvalidStateError:  # pragma: no cover - timed out
                pass

    # -- admission side ----------------------------------------------------

    def build_request(self, payload: Dict[str, Any]) -> QueryRequest:
        """Turn a /query JSON body into an admitted-shape request."""
        if not isinstance(payload, dict):
            raise _HttpReply(400, {"error": "request body must be an object"})
        payload = dict(payload)
        graph = payload.pop("graph", None) or self.registry.default_name()
        if graph is None:
            raise _HttpReply(
                400,
                {
                    "error": "request must name a graph",
                    "graphs": self.registry.names(),
                },
            )
        try:
            self.registry.get(graph)
        except ServeError as exc:
            raise _HttpReply(404, {"error": str(exc)}) from None
        fields = payload.pop("config", None)
        if fields is None:
            fields = payload  # flat spelling
        elif payload:
            raise _HttpReply(
                400,
                {"error": f"unexpected top-level keys {sorted(payload)}"},
            )
        if not isinstance(fields, dict):
            raise _HttpReply(400, {"error": "config must be an object"})
        unknown = set(fields) - _CONFIG_FIELDS
        if unknown:
            raise _HttpReply(
                400,
                {
                    "error": f"unknown config fields {sorted(unknown)}",
                    "allowed": sorted(_CONFIG_FIELDS),
                },
            )
        if "sources" in fields and fields["sources"] is not None:
            if isinstance(fields["sources"], int):
                fields["sources"] = [fields["sources"]]
        try:
            config = RunConfig.from_dict(fields)
        except (ReproError, TypeError, ValueError) as exc:
            raise _HttpReply(400, {"error": f"bad config: {exc}"}) from None
        return QueryRequest(graph=graph, config=config)

    async def query(self, payload: Dict[str, Any],
                    timeout: Optional[float] = None) -> Dict[str, Any]:
        """Admit, await, and shape one query (raises :class:`_HttpReply`)."""
        if self.draining:
            self.metrics.rejected("draining")
            raise _HttpReply(
                503,
                {"error": "server is draining; retry against a peer"},
                retry_after=5.0,
            )
        request = self.build_request(payload)
        timeout = (
            self.request_timeout
            if timeout is None
            else min(timeout, self.request_timeout)
        )
        try:
            self.broker.submit(request)
        except QueueFull as exc:
            self.metrics.rejected("rejected")
            raise _HttpReply(
                429,
                {"error": str(exc), "queue_depth": exc.depth},
                retry_after=exc.retry_after,
            ) from None
        except BrokerClosed as exc:
            self.metrics.rejected("draining")
            raise _HttpReply(
                503, {"error": str(exc)}, retry_after=5.0
            ) from None
        self.metrics.queue_depth(self.broker.depth())
        try:
            payload = await asyncio.wait_for(
                asyncio.wrap_future(request.future), timeout
            )
        except asyncio.TimeoutError:
            request.cancelled = True
            self.metrics.request_done("timeout", timeout)
            raise _HttpReply(
                504,
                {
                    "error": f"query missed its {timeout:g}s deadline",
                    "id": request.id,
                },
            ) from None
        except (EngineError, ReproError, ValueError) as exc:
            self.metrics.request_done("error", request.queue_wait)
            raise _HttpReply(
                400, {"error": str(exc), "id": request.id}
            ) from None
        except Exception as exc:  # engine bug: surface, don't hang
            self.metrics.request_done("error", request.queue_wait)
            raise _HttpReply(
                500, {"error": f"{type(exc).__name__}: {exc}",
                      "id": request.id}
            ) from None
        latency = time.perf_counter() - request.enqueued_at
        self.metrics.request_done(
            "ok", latency, coalesced=bool(payload.get("coalesced"))
        )
        payload["latency_seconds"] = latency
        return payload

    # -- routing -----------------------------------------------------------

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, bytes, Optional[float]]:
        """Route one request; returns (status, content-type, body, retry)."""
        try:
            if method == "GET" and path in ("/healthz", "/readyz"):
                if self.draining:
                    return _json_reply(503, {"status": "draining"}, 5.0)
                return _json_reply(
                    200,
                    {
                        "status": "ok",
                        "graphs": self.registry.names(),
                        "queue_depth": self.broker.depth(),
                        "uptime_seconds": time.time() - self._started,
                    },
                )
            if method == "GET" and path == "/metrics":
                text = self.metrics.export_prometheus()
                return 200, _TEXT, text.encode("utf-8"), None
            if method == "GET" and path == "/stats":
                stats = dict(self.metrics.snapshot())
                stats["executors"] = {
                    entry.name: entry.session.executor_stats()
                    for entry in self.registry.entries()
                }
                return _json_reply(200, stats)
            if method == "GET" and path == "/graphs":
                return _json_reply(200, {"graphs": self.registry.describe()})
            if method == "POST" and path == "/graphs":
                return await self._admin_load(body)
            if method == "POST" and path == "/mutate":
                return await self._mutate(body)
            if method == "POST" and path == "/query":
                payload = _parse_json(body)
                timeout = None
                if isinstance(payload, dict) and "timeout" in payload:
                    try:
                        timeout = float(payload.pop("timeout"))
                    except (TypeError, ValueError):
                        raise _HttpReply(
                            400, {"error": "timeout must be a number"}
                        ) from None
                return _json_reply(200, await self.query(payload, timeout))
            return _json_reply(
                404,
                {
                    "error": f"no route for {method} {path}",
                    "routes": [
                        "GET /healthz", "GET /metrics", "GET /stats",
                        "GET /graphs", "POST /graphs", "POST /mutate",
                        "POST /query",
                    ],
                },
            )
        except _HttpReply as reply:
            return _json_reply(reply.status, reply.payload,
                               reply.retry_after)

    async def _admin_load(
        self, body: bytes
    ) -> Tuple[int, str, bytes, Optional[float]]:
        payload = _parse_json(body)
        if not isinstance(payload, dict) or not payload.get("name") \
                or not payload.get("spec"):
            raise _HttpReply(
                400, {"error": 'expected {"name": ..., "spec": ...}'}
            )
        if self.draining:
            raise _HttpReply(
                503, {"error": "server is draining"}, retry_after=5.0
            )
        loop = asyncio.get_running_loop()
        try:
            # graph build + partition can take a while: off the loop
            entry = await loop.run_in_executor(
                None, self.registry.load, payload["name"], payload["spec"]
            )
        except ServeError as exc:
            raise _HttpReply(400, {"error": str(exc)}) from None
        self._ensure_worker(entry.name)
        return _json_reply(201, {"loaded": entry.describe()})

    async def _mutate(
        self, body: bytes
    ) -> Tuple[int, str, bytes, Optional[float]]:
        payload = _parse_json(body)
        if not isinstance(payload, dict):
            raise _HttpReply(400, {"error": "request body must be an object"})
        if self.draining:
            raise _HttpReply(
                503, {"error": "server is draining"}, retry_after=5.0
            )
        payload = dict(payload)
        name = payload.pop("graph", None) or self.registry.default_name()
        if name is None:
            raise _HttpReply(
                400,
                {
                    "error": "mutation must name a graph",
                    "graphs": self.registry.names(),
                },
            )
        try:
            entry = self.registry.get(name)
        except ServeError as exc:
            raise _HttpReply(404, {"error": str(exc)}) from None
        try:
            batch = MutationBatch.from_dict(payload)
        except (ReproError, TypeError, ValueError) as exc:
            raise _HttpReply(
                400, {"error": f"bad mutation batch: {exc}"}
            ) from None
        loop = asyncio.get_running_loop()
        hub = self.metrics.hub()
        t0 = time.perf_counter()
        try:
            # delete resolution + partition refresh walk edge arrays:
            # off the event loop, like admin graph loads
            stats = await loop.run_in_executor(
                None, entry.session.mutate, batch, hub
            )
        except ReproError as exc:
            raise _HttpReply(400, {"error": str(exc)}) from None
        return _json_reply(
            200,
            {
                "graph": entry.name,
                "applied": asdict(stats),
                "graph_version": stats.version,
                "num_vertices": stats.num_vertices,
                "num_edges": stats.num_edges,
                "compacted": stats.compacted,
                "latency_seconds": time.perf_counter() - t0,
            },
        )


def _parse_json(body: bytes) -> Any:
    if not body:
        raise _HttpReply(400, {"error": "request body must be JSON"})
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpReply(400, {"error": f"bad JSON: {exc}"}) from None


def _json_reply(
    status: int, payload: Any, retry_after: Optional[float] = None
) -> Tuple[int, str, bytes, Optional[float]]:
    return status, _JSON, json.dumps(payload).encode("utf-8"), retry_after


_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; None at EOF (keep-alive hang-up)."""
    line = await reader.readline()
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise ServeError(f"malformed request line {line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServeError(f"request body of {length} bytes exceeds cap")
    body = await reader.readexactly(length) if length else b""
    return method, path.split("?", 1)[0], headers, body


async def _handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve requests on one connection until hang-up (keep-alive)."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ServeError, asyncio.IncompleteReadError, ValueError):
                break
            if request is None:
                break
            method, path, headers, body = request
            status, ctype, payload, retry_after = await app.dispatch(
                method, path, body
            )
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(payload)}",
            ]
            if retry_after is not None:
                head.append(f"Retry-After: {max(1, int(retry_after))}")
            close = headers.get("connection", "").lower() == "close"
            head.append(f"Connection: {'close' if close else 'keep-alive'}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
            )
            await writer.drain()
            if close:
                break
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
            pass


class ServerThread:
    """The server on a background thread — tests and the bench driver.

    Context-manager protocol: ``__enter__`` starts the app's workers
    and the listener (``.port`` holds the bound port, 0 picks a free
    one), ``__exit__`` drains and closes everything.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-http", daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("server thread failed to start in 30s")
        if self._error is not None:
            raise ServeError(f"server thread failed: {self._error}")
        return self

    async def _main(self) -> None:
        try:
            self.app.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            server = await asyncio.start_server(
                lambda r, w: _handle_connection(self.app, r, w),
                self.host, self.port,
            )
        except BaseException as exc:  # pragma: no cover - bind failure
            self._error = exc
            self._ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop.wait()

    def stop(self, drain_timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        self.app.begin_drain()
        self.app.join_workers(drain_timeout)
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=drain_timeout)
        self._thread = None
        self.app.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(app: ServeApp, host: str = "127.0.0.1",
                  port: int = 8571) -> int:
    """Run the server until SIGTERM/SIGINT, then drain gracefully."""

    async def _amain() -> None:
        app.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        server = await asyncio.start_server(
            lambda r, w: _handle_connection(app, r, w), host, port
        )
        bound = server.sockets[0].getsockname()[1]
        print(
            f"repro serve: listening on http://{host}:{bound} "
            f"(graphs: {', '.join(app.registry.names()) or 'none'})",
            flush=True,
        )
        await stop.wait()
        print("repro serve: draining...", flush=True)
        app.begin_drain()
        # workers finish every admitted request before the listener and
        # its pending responses go away
        await loop.run_in_executor(None, app.join_workers, 30.0)
        server.close()
        await server.wait_closed()

    try:
        asyncio.run(_amain())
    finally:
        app.close()
    print("repro serve: drained, bye", flush=True)
    return 0
