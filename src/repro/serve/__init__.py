"""``repro.serve``: a long-lived graph query service.

The daemon the ROADMAP's service-layer item asks for: an asyncio
HTTP/JSON server multiplexing concurrent queries over shared
partitioned graphs.  Four pieces compose it:

* :class:`~repro.serve.registry.GraphRegistry` — named graphs, each
  loaded and partitioned once and bound to a caching
  :class:`~repro.api.Session`, so every request after the first reuses
  the partition and the executor (including the process executor's
  shared-memory CSR topology);
* :class:`~repro.serve.batching.Broker` — the bounded request queue
  with the batching coalescer: queued same-graph/same-config BFS/SSSP
  queries merge into one multi-source batched run, and identical
  requests dedup by :meth:`~repro.api.RunConfig.digest`;
* :class:`~repro.serve.metrics.ServeMetrics` — ObsHub-backed service
  metrics (request counts, queue depth, batch sizes, latency
  histograms) exported on ``/metrics`` in Prometheus text format;
* :class:`~repro.serve.server.ServeApp` — admission control (bounded
  queue depth with 429 + Retry-After, per-request timeouts, 503 while
  draining) and the HTTP endpoints, with graceful drain on SIGTERM.

Start one from the command line::

    python -m repro serve --graph s27 --port 8571

or programmatically (tests, notebooks)::

    from repro.serve import GraphRegistry, ServeApp, ServerThread

    registry = GraphRegistry()
    registry.load("demo", "rmat:scale=9,edge_factor=8,seed=3")
    with ServerThread(ServeApp(registry)) as server:
        ...  # POST http://127.0.0.1:{server.port}/query
"""

from repro.serve.batching import Broker, BrokerClosed, QueryRequest, QueueFull
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import GraphEntry, GraphRegistry, parse_graph_spec
from repro.serve.server import ServeApp, ServerThread, serve_forever

__all__ = [
    "Broker",
    "BrokerClosed",
    "GraphEntry",
    "GraphRegistry",
    "QueryRequest",
    "QueueFull",
    "ServeApp",
    "ServeMetrics",
    "ServerThread",
    "parse_graph_spec",
    "serve_forever",
]
