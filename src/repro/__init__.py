"""SympleGraph reproduction: distributed graph processing with a
precise loop-carried dependency guarantee (Zhuo et al., PLDI 2020),
executed on a simulated cluster with exact computation/communication
accounting and a calibrated timing model.

Quickstart::

    from repro import rmat, make_engine, bfs

    graph = rmat(scale=12, edge_factor=16, seed=7)
    engine = make_engine("symple", graph, num_machines=16)
    result = bfs(engine, root=0)
    print(result.reached, engine.counters.summary())
"""

from repro.algorithms import (
    bfs,
    connected_components,
    coreness,
    kcore,
    kcore_peel,
    kmeans,
    mis,
    pagerank,
    sample_neighbors,
    scc,
    sssp,
)
from repro.analysis import (
    AnalyzedSignal,
    analyze_signal,
    explain_signal,
    fold_while,
    instrument_signal,
)
from repro.engine import (
    DGaloisEngine,
    GeminiEngine,
    SingleThreadEngine,
    SympleGraphEngine,
    SympleOptions,
    make_engine,
)
from repro.errors import (
    AnalysisError,
    ConvergenceError,
    EngineError,
    FaultError,
    FaultPlanError,
    GraphError,
    InstrumentationError,
    MachineCrashError,
    MessageLossError,
    PartitionError,
    ReproError,
    UnsupportedAlgorithmError,
)
from repro.fault import (
    CheckpointStore,
    CrashFault,
    FaultController,
    FaultPlan,
    MessageFault,
    StragglerFault,
    VertexProgram,
    run_program,
    run_recoverable,
)
from repro.graph import CSRGraph, GraphBuilder, erdos_renyi, rmat
from repro.obs import (
    MetricsRegistry,
    ObsHub,
    Tracer,
    attribution_rows,
    fill_run_metrics,
    read_trace,
    rebuild_counters,
    reconstruct_breakdown,
    registry_breakdown,
    validate_events,
)
from repro.partition import (
    CartesianVertexCut,
    HashVertexCut,
    HybridCut,
    IncomingEdgeCut,
    OutgoingEdgeCut,
    Partition,
)
from repro.runtime import (
    DGALOIS_COST,
    GEMINI_COST,
    SINGLE_THREAD_COST,
    SYMPLE_COST,
    Bitmap,
    CostModel,
)

__version__ = "1.0.0"

__all__ = [
    # graph
    "CSRGraph",
    "GraphBuilder",
    "rmat",
    "erdos_renyi",
    # partition
    "Partition",
    "OutgoingEdgeCut",
    "IncomingEdgeCut",
    "HashVertexCut",
    "HybridCut",
    "CartesianVertexCut",
    # engines
    "make_engine",
    "GeminiEngine",
    "SympleGraphEngine",
    "SympleOptions",
    "DGaloisEngine",
    "SingleThreadEngine",
    # analysis
    "analyze_signal",
    "instrument_signal",
    "AnalyzedSignal",
    "fold_while",
    "explain_signal",
    # algorithms
    "bfs",
    "mis",
    "kcore",
    "kcore_peel",
    "coreness",
    "kmeans",
    "sample_neighbors",
    "connected_components",
    "pagerank",
    "scc",
    "sssp",
    # runtime
    "Bitmap",
    "CostModel",
    "GEMINI_COST",
    "SYMPLE_COST",
    "DGALOIS_COST",
    "SINGLE_THREAD_COST",
    # observability
    "ObsHub",
    "Tracer",
    "MetricsRegistry",
    "fill_run_metrics",
    "registry_breakdown",
    "read_trace",
    "validate_events",
    "rebuild_counters",
    "reconstruct_breakdown",
    "attribution_rows",
    # fault tolerance
    "FaultPlan",
    "CrashFault",
    "StragglerFault",
    "MessageFault",
    "FaultController",
    "CheckpointStore",
    "VertexProgram",
    "run_program",
    "run_recoverable",
    # errors
    "ReproError",
    "GraphError",
    "PartitionError",
    "AnalysisError",
    "InstrumentationError",
    "EngineError",
    "ConvergenceError",
    "UnsupportedAlgorithmError",
    "FaultPlanError",
    "FaultError",
    "MachineCrashError",
    "MessageLossError",
]
