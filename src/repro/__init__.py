"""SympleGraph reproduction: distributed graph processing with a
precise loop-carried dependency guarantee (Zhuo et al., PLDI 2020),
executed on a simulated cluster with exact computation/communication
accounting and a calibrated timing model.

Quickstart::

    from repro import Session, RunConfig, rmat

    graph = rmat(scale=12, edge_factor=16, seed=7)
    with Session(graph) as session:
        result = session.run(RunConfig(engine="symple", algorithm="bfs",
                                       machines=16))
    print(result.simulated_time, result.digest())

For driving an engine by hand (custom algorithms, single phases),
``make_engine`` builds one directly.
"""

from repro.algorithms import (
    IncrementalBFS,
    IncrementalCC,
    IncrementalKCore,
    IncrementalResult,
    bfs,
    connected_components,
    coreness,
    kcore,
    kcore_peel,
    kmeans,
    mis,
    pagerank,
    sample_neighbors,
    scc,
    sssp,
)
from repro.api import Checkpointing, RunConfig, Session
from repro.analysis import (
    AnalyzedSignal,
    analyze_signal,
    explain_signal,
    fold_while,
    instrument_signal,
)
from repro.engine import (
    DGaloisEngine,
    GeminiEngine,
    SingleThreadEngine,
    SympleGraphEngine,
    SympleOptions,
    make_engine,
)
from repro.algorithms.registry import AlgorithmSpec, all_specs, get_spec
from repro.bench.harness import RunResult
from repro.errors import (
    AnalysisError,
    ConvergenceError,
    EngineError,
    FaultError,
    FaultPlanError,
    GraphError,
    InstrumentationError,
    MachineCrashError,
    MessageLossError,
    PartitionError,
    ReproError,
    UnsupportedAlgorithmError,
)
from repro.exec import (
    EXECUTOR_KINDS,
    Executor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.fault import (
    CheckpointStore,
    CrashFault,
    FaultController,
    FaultPlan,
    MessageFault,
    StragglerFault,
    VertexProgram,
    run_program,
    run_recoverable,
)
from repro.graph import (
    CSRGraph,
    DynamicGraph,
    GraphBuilder,
    MutationBatch,
    MutationStats,
    erdos_renyi,
    rmat,
)
from repro.obs import (
    MetricsRegistry,
    ObsHub,
    Tracer,
    attribution_rows,
    fill_run_metrics,
    read_trace,
    rebuild_counters,
    reconstruct_breakdown,
    registry_breakdown,
    validate_events,
)
from repro.partition import (
    CartesianVertexCut,
    HashVertexCut,
    HybridCut,
    IncomingEdgeCut,
    OutgoingEdgeCut,
    Partition,
    RefreshStats,
    refresh_partition,
)
from repro.runtime import (
    DGALOIS_COST,
    GEMINI_COST,
    SINGLE_THREAD_COST,
    SYMPLE_COST,
    Bitmap,
    CostModel,
)

__version__ = "1.0.0"

__all__ = [
    # graph
    "CSRGraph",
    "DynamicGraph",
    "MutationBatch",
    "MutationStats",
    "GraphBuilder",
    "rmat",
    "erdos_renyi",
    # partition
    "Partition",
    "RefreshStats",
    "refresh_partition",
    "OutgoingEdgeCut",
    "IncomingEdgeCut",
    "HashVertexCut",
    "HybridCut",
    "CartesianVertexCut",
    # entry point
    "Session",
    "RunConfig",
    "Checkpointing",
    "RunResult",
    # algorithm registry
    "AlgorithmSpec",
    "all_specs",
    "get_spec",
    # executors
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
    # engines
    "make_engine",
    "GeminiEngine",
    "SympleGraphEngine",
    "SympleOptions",
    "DGaloisEngine",
    "SingleThreadEngine",
    # analysis
    "analyze_signal",
    "instrument_signal",
    "AnalyzedSignal",
    "fold_while",
    "explain_signal",
    # algorithms
    "bfs",
    "mis",
    "kcore",
    "kcore_peel",
    "coreness",
    "kmeans",
    "sample_neighbors",
    "connected_components",
    "pagerank",
    "scc",
    "sssp",
    "IncrementalBFS",
    "IncrementalCC",
    "IncrementalKCore",
    "IncrementalResult",
    # runtime
    "Bitmap",
    "CostModel",
    "GEMINI_COST",
    "SYMPLE_COST",
    "DGALOIS_COST",
    "SINGLE_THREAD_COST",
    # observability
    "ObsHub",
    "Tracer",
    "MetricsRegistry",
    "fill_run_metrics",
    "registry_breakdown",
    "read_trace",
    "validate_events",
    "rebuild_counters",
    "reconstruct_breakdown",
    "attribution_rows",
    # fault tolerance
    "FaultPlan",
    "CrashFault",
    "StragglerFault",
    "MessageFault",
    "FaultController",
    "CheckpointStore",
    "VertexProgram",
    "run_program",
    "run_recoverable",
    # errors
    "ReproError",
    "GraphError",
    "PartitionError",
    "AnalysisError",
    "InstrumentationError",
    "EngineError",
    "ConvergenceError",
    "UnsupportedAlgorithmError",
    "FaultPlanError",
    "FaultError",
    "MachineCrashError",
    "MessageLossError",
]
