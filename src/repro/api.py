"""The supported entry point: :class:`RunConfig` + :class:`Session`.

A :class:`RunConfig` is a frozen, serializable description of one
experiment — engine, algorithm, cluster size, seed, engine options,
fault plan, checkpointing policy, observability sink, and executor
backend.  A :class:`Session` binds a graph, caches the expensive
per-(strategy, machines) partitions and per-(backend, workers)
executors across runs, and executes configs under the paper's
measurement protocol:

    from repro import Session, RunConfig, rmat

    graph = rmat(scale=12, edge_factor=16, seed=7)
    with Session(graph) as session:
        result = session.run(RunConfig(engine="symple", algorithm="bfs"))
        print(result.simulated_time, result.digest())

``session.run(config, machines=32)`` applies keyword overrides via
:func:`dataclasses.replace`; ``run_many`` executes a sequence of
configs against the same cached artifacts.  The legacy free functions
(:func:`repro.bench.harness.run_algorithm`, extended positional
:func:`repro.engine.make_engine`) remain as thin deprecated wrappers
around this module.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.engine import SympleOptions, make_engine
from repro.errors import EngineError, UnsupportedAlgorithmError, VerificationError
from repro.exec import EXECUTOR_KINDS, Executor, make_executor
from repro.fault import FaultPlan
from repro.graph.csr import CSRGraph
from repro.partition import CartesianVertexCut, OutgoingEdgeCut, Partition
from repro.runtime.cost_model import CostModel

__all__ = ["Checkpointing", "RunConfig", "Session"]

_ENGINE_KINDS = ("gemini", "symple", "dgalois", "single")
_ALGORITHMS = ("bfs", "kcore", "mis", "kmeans", "sampling")
_RESUMABLE = ("bfs", "kcore", "mis")
_VERIFY_MODES = ("off", "warn", "strict")


@dataclass(frozen=True)
class Checkpointing:
    """Checkpoint policy for recoverable runs.

    ``interval`` is the superstep period (0 disables checkpointing);
    ``retention`` bounds how many checkpoints the store keeps.
    """

    interval: int = 0
    retention: int = 2

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise EngineError(
                f"checkpoint interval must be >= 0, got {self.interval}"
            )
        if self.retention < 1:
            raise EngineError(
                f"checkpoint retention must be >= 1, got {self.retention}"
            )


@dataclass(frozen=True)
class RunConfig:
    """Frozen description of one experiment run.

    Everything the old ``run_algorithm`` keyword pile expressed, as one
    value that can be stored, compared, replaced field-wise
    (:func:`dataclasses.replace`), and round-tripped through
    :meth:`to_dict`/:meth:`from_dict` (minus the two live objects,
    ``obs`` and ``cost_model``, which are attachments rather than
    configuration).
    """

    engine: str = "symple"
    algorithm: str = "bfs"
    machines: int = 16
    seed: int = 0
    options: Optional[SympleOptions] = None
    faults: Optional[FaultPlan] = None
    checkpointing: Checkpointing = field(default_factory=Checkpointing)
    obs: Any = None
    executor: Any = "serial"
    workers: Optional[int] = None
    cost_model: Optional[CostModel] = None
    verify: str = "off"
    bfs_roots: int = 3
    kcore_k: int = 8
    kmeans_rounds: int = 2

    def __post_init__(self) -> None:
        if self.engine not in _ENGINE_KINDS:
            raise EngineError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {_ENGINE_KINDS}"
            )
        if self.algorithm not in _ALGORITHMS:
            raise EngineError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {_ALGORITHMS}"
            )
        if self.machines < 1:
            raise EngineError(
                f"machines must be >= 1, got {self.machines}"
            )
        if self.options is not None and self.engine != "symple":
            raise EngineError(
                "options= is a SympleGraph knob; the "
                f"{self.engine!r} engine does not accept it"
            )
        if not isinstance(self.executor, Executor) and (
            self.executor not in EXECUTOR_KINDS
        ):
            raise EngineError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTOR_KINDS} or an Executor instance"
            )
        if self.workers is not None and self.workers < 1:
            raise EngineError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.verify not in _VERIFY_MODES:
            raise EngineError(
                f"unknown verify mode {self.verify!r}; "
                f"expected one of {_VERIFY_MODES}"
            )
        if self.faulted and self.algorithm not in _RESUMABLE:
            raise UnsupportedAlgorithmError(
                f"{self.algorithm} is not a resumable program; fault "
                "injection and checkpointing support bfs, kcore, and mis"
            )

    @property
    def faulted(self) -> bool:
        """Whether this run goes through the recoverable driver."""
        return (
            self.faults is not None and not self.faults.empty
        ) or self.checkpointing.interval > 0

    def replace(self, **overrides: Any) -> "RunConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form of the *configuration* fields.

        ``obs`` and ``cost_model`` are live attachments and are not
        serialized; an executor instance serializes as its kind.
        """
        executor = self.executor
        if isinstance(executor, Executor):
            executor = executor.kind
        return {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "machines": self.machines,
            "seed": self.seed,
            "options": (
                None
                if self.options is None
                else dataclasses.asdict(self.options)
            ),
            "faults": (
                None if self.faults is None else self.faults.to_dict()
            ),
            "checkpointing": {
                "interval": self.checkpointing.interval,
                "retention": self.checkpointing.retention,
            },
            "executor": executor,
            "workers": self.workers,
            "verify": self.verify,
            "bfs_roots": self.bfs_roots,
            "kcore_k": self.kcore_k,
            "kmeans_rounds": self.kmeans_rounds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunConfig":
        payload = dict(payload)
        options = payload.get("options")
        if options is not None:
            payload["options"] = SympleOptions(**options)
        faults = payload.get("faults")
        if faults is not None:
            payload["faults"] = FaultPlan.from_dict(faults)
        ckpt = payload.get("checkpointing")
        if ckpt is not None:
            payload["checkpointing"] = Checkpointing(**ckpt)
        return cls(**payload)


class Session:
    """Executes :class:`RunConfig` runs against one bound graph.

    Partitions (per strategy and machine count) and executors (per
    backend and worker count) are built once and reused across runs —
    the process backend in particular publishes the CSR topology to
    shared memory only when the partition it is bound to changes.
    """

    def __init__(self, graph: CSRGraph,
                 config: Optional[RunConfig] = None) -> None:
        self.graph = graph
        self.config = config if config is not None else RunConfig()
        self._partitions: Dict[Tuple[str, int], Partition] = {}
        self._executors: Dict[Tuple[str, Optional[int]], Executor] = {}
        self._verified: Set[Tuple[str, str]] = set()
        self._closed = False

    # -- cached artifacts -------------------------------------------------

    def _partition(self, config: RunConfig) -> Optional[Partition]:
        if config.engine == "single":
            return None
        strategy = "vertexcut" if config.engine == "dgalois" else "edgecut"
        key = (strategy, config.machines)
        part = self._partitions.get(key)
        if part is None:
            cut = (
                CartesianVertexCut()
                if strategy == "vertexcut"
                else OutgoingEdgeCut()
            )
            part = cut.partition(self.graph, config.machines)
            self._partitions[key] = part
        return part

    def _executor(self, config: RunConfig) -> Executor:
        if isinstance(config.executor, Executor):
            # caller-owned: used as-is, never closed by the session
            return make_executor(config.executor, workers=config.workers)
        key = (config.executor, config.workers)
        ex = self._executors.get(key)
        if ex is None:
            ex = make_executor(config.executor, workers=config.workers)
            self._executors[key] = ex
        return ex

    def _preflight(self, config: RunConfig) -> None:
        """Statically verify the run's signal UDFs before executing.

        ``verify="warn"`` downgrades problems to a ``RuntimeWarning``;
        ``verify="strict"`` additionally promotes the strict lint
        severities and refuses the run with
        :class:`~repro.errors.VerificationError`.  Verdicts are purely
        static and cached per (algorithm, mode) for the session's
        lifetime — repeated runs pay for the analysis once.
        """
        if config.verify == "off":
            return
        key = (config.algorithm, config.verify)
        if key in self._verified:
            return
        # imported lazily: the analysis stack is a tooling dependency,
        # not something every execution-only session should pay for
        from repro.algorithms import SIGNAL_UDFS
        from repro.analysis.verify import verify_signal

        strict = config.verify == "strict"
        problems: List[str] = []
        for fn in SIGNAL_UDFS.get(config.algorithm, ()):
            verdict = verify_signal(fn, strict=strict)
            for msg in verdict.messages:
                if msg.level == "error" or (
                    strict and msg.level == "warning"
                ):
                    problems.append(f"{msg.code}: {msg.message}")
        if problems:
            detail = "; ".join(problems)
            if strict:
                raise VerificationError(
                    f"verify='strict' refused to run "
                    f"{config.algorithm!r}: {detail}"
                )
            warnings.warn(
                f"verify='warn': {config.algorithm!r}: {detail}",
                RuntimeWarning,
                stacklevel=4,
            )
        self._verified.add(key)

    # -- execution --------------------------------------------------------

    def run(self, config: Optional[RunConfig] = None,
            **overrides: Any):
        """Execute one run; returns a
        :class:`~repro.bench.harness.RunResult`.

        ``config`` defaults to the session's config; keyword overrides
        are applied on top with :func:`dataclasses.replace`.
        """
        if self._closed:
            raise EngineError("session is closed")
        config = config if config is not None else self.config
        if overrides:
            config = config.replace(**overrides)
        return self._execute(config)

    def run_many(self, configs: Iterable[RunConfig]) -> List[Any]:
        """Execute several configs against the same cached artifacts."""
        return [self.run(config) for config in configs]

    def _execute(self, config: RunConfig):
        # imported here: harness imports this module for the legacy
        # wrapper, so the dependency must stay one-way at import time
        from repro.bench.harness import _run_session_config

        self._preflight(config)
        target = self._partition(config)
        engine = make_engine(
            config.engine,
            self.graph if target is None else target,
            config.machines,
            options=config.options,
            obs=config.obs,
            executor=self._executor(config),
            verify=config.verify,
        )
        return _run_session_config(engine, self.graph, config)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release session-owned executors (shared memory, pools)."""
        for ex in self._executors.values():
            ex.close()
        self._executors.clear()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
