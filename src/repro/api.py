"""The supported entry point: :class:`RunConfig` + :class:`Session`.

A :class:`RunConfig` is a frozen, serializable description of one
experiment — engine, algorithm, cluster size, seed, engine options,
fault plan, checkpointing policy, observability sink, and executor
backend.  A :class:`Session` binds a graph, caches the expensive
per-(strategy, machines) partitions and per-(backend, workers)
executors across runs, and executes configs under the paper's
measurement protocol:

    from repro import Session, RunConfig, rmat

    graph = rmat(scale=12, edge_factor=16, seed=7)
    with Session(graph) as session:
        result = session.run(RunConfig(engine="symple", algorithm="bfs"))
        print(result.simulated_time, result.digest())

``session.run(config, machines=32)`` applies keyword overrides via
:func:`dataclasses.replace`; ``run_many`` executes a sequence of
configs against the same cached artifacts.  Algorithm dispatch and
validation derive from :mod:`repro.algorithms.registry` — one
:class:`~repro.algorithms.registry.AlgorithmSpec` per algorithm is the
single source of truth for what runs, resumes, takes sources, and
supports the async mode.  (The pre-registry legacy free functions are
gone; see the migration stanza in ``docs/API.md``.)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
import warnings
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.algorithms.registry import (
    MODES,
    get_spec,
    resumable_algorithms,
    sourced_algorithms,
)
from repro.engine import SympleOptions, make_engine
from repro.engine.async_mode import ASYNC_ENGINES
from repro.errors import (
    EngineError,
    PartitionError,
    UnsupportedAlgorithmError,
    VerificationError,
)
from repro.exec import EXECUTOR_KINDS, Executor, make_executor
from repro.fault import FaultPlan
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, MutationBatch, MutationStats
from repro.obs.hooks import ObsHub
from repro.partition import CartesianVertexCut, OutgoingEdgeCut, Partition
from repro.partition.delta import refresh_partition
from repro.runtime.cost_model import CostModel

__all__ = ["Checkpointing", "RunConfig", "Session"]

_ENGINE_KINDS = ("gemini", "symple", "dgalois", "single")
_VERIFY_MODES = ("off", "warn", "strict")
#: algorithms that accept an explicit ``sources`` tuple — the
#: multi-source batch entry the serving layer coalesces requests into
#: (registry-derived; kept as a module constant for importers)
SOURCED_ALGORITHMS = sourced_algorithms()


@dataclass(frozen=True)
class Checkpointing:
    """Checkpoint policy for recoverable runs.

    ``interval`` is the superstep period (0 disables checkpointing);
    ``retention`` bounds how many checkpoints the store keeps.
    """

    interval: int = 0
    retention: int = 2

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise EngineError(
                f"checkpoint interval must be >= 0, got {self.interval}"
            )
        if self.retention < 1:
            raise EngineError(
                f"checkpoint retention must be >= 1, got {self.retention}"
            )


@dataclass(frozen=True)
class RunConfig:
    """Frozen description of one experiment run.

    Everything the retired legacy keyword pile expressed, as one
    value that can be stored, compared, replaced field-wise
    (:func:`dataclasses.replace`), and round-tripped through
    :meth:`to_dict`/:meth:`from_dict` (minus the two live objects,
    ``obs`` and ``cost_model``, which are attachments rather than
    configuration).
    """

    engine: str = "symple"
    algorithm: str = "bfs"
    machines: int = 16
    seed: int = 0
    options: Optional[SympleOptions] = None
    faults: Optional[FaultPlan] = None
    checkpointing: Checkpointing = field(default_factory=Checkpointing)
    obs: Any = None
    executor: Any = "serial"
    workers: Optional[int] = None
    cost_model: Optional[CostModel] = None
    verify: str = "off"
    bfs_roots: int = 3
    kcore_k: int = 8
    kmeans_rounds: int = 2
    sources: Optional[Tuple[int, ...]] = None
    mode: str = "sync"
    async_bucket_width: Optional[float] = None

    def __post_init__(self) -> None:
        if self.engine not in _ENGINE_KINDS:
            raise EngineError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {_ENGINE_KINDS}"
            )
        spec = get_spec(self.algorithm)
        if not spec.runnable:
            raise EngineError(
                f"algorithm {self.algorithm!r} is signal-only; it has "
                "no Session.run driver"
            )
        if self.mode not in MODES:
            raise EngineError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.mode == "async":
            if self.engine not in ASYNC_ENGINES:
                raise EngineError(
                    f"mode='async' needs per-bucket activation, which "
                    f"the {self.engine!r} engine does not support; "
                    f"use one of {ASYNC_ENGINES}"
                )
            if not spec.supports_mode("async"):
                from repro.algorithms.registry import async_algorithms

                raise EngineError(
                    f"algorithm {self.algorithm!r} has no async driver; "
                    f"mode='async' supports {async_algorithms()}"
                )
        if self.async_bucket_width is not None:
            if self.mode != "async":
                raise EngineError(
                    "async_bucket_width only applies to mode='async' "
                    f"runs, but mode is {self.mode!r}"
                )
            if not self.async_bucket_width > 0:
                raise EngineError(
                    f"async_bucket_width must be > 0, "
                    f"got {self.async_bucket_width}"
                )
        if self.machines < 1:
            raise EngineError(
                f"machines must be >= 1, got {self.machines}"
            )
        if self.options is not None and self.engine != "symple":
            raise EngineError(
                "options= is a SympleGraph knob; the "
                f"{self.engine!r} engine does not accept it"
            )
        if not isinstance(self.executor, Executor) and (
            self.executor not in EXECUTOR_KINDS
        ):
            raise EngineError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTOR_KINDS} or an Executor instance"
            )
        if self.workers is not None and self.workers < 1:
            raise EngineError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.verify not in _VERIFY_MODES:
            raise EngineError(
                f"unknown verify mode {self.verify!r}; "
                f"expected one of {_VERIFY_MODES}"
            )
        if self.sources is not None:
            if not spec.sourced:
                raise EngineError(
                    f"sources= selects explicit roots for "
                    f"{SOURCED_ALGORITHMS}; the {self.algorithm!r} "
                    "algorithm does not take them"
                )
            try:
                normalized = tuple(int(s) for s in self.sources)
            except (TypeError, ValueError):
                raise EngineError(
                    f"sources must be a sequence of vertex ids, "
                    f"got {self.sources!r}"
                ) from None
            if not normalized:
                raise EngineError("sources must name at least one vertex")
            if any(s < 0 for s in normalized):
                raise EngineError(
                    f"sources must be non-negative vertex ids, "
                    f"got {normalized}"
                )
            object.__setattr__(self, "sources", normalized)
        if self.faulted:
            if not spec.resumable:
                raise UnsupportedAlgorithmError(
                    f"{self.algorithm} is not a resumable program; "
                    "fault injection and checkpointing support "
                    f"{resumable_algorithms()}"
                )
            if self.mode == "async" and not spec.async_resumable:
                raise UnsupportedAlgorithmError(
                    f"{self.algorithm} has no recoverable async "
                    "driver; drop faults/checkpointing or run "
                    "mode='sync'"
                )

    @property
    def faulted(self) -> bool:
        """Whether this run goes through the recoverable driver."""
        return (
            self.faults is not None and not self.faults.empty
        ) or self.checkpointing.interval > 0

    def replace(self, **overrides: Any) -> "RunConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form of the *configuration* fields.

        ``obs`` and ``cost_model`` are live attachments and are not
        serialized; an executor instance serializes as its kind.
        """
        executor = self.executor
        if isinstance(executor, Executor):
            executor = executor.kind
        return {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "machines": self.machines,
            "seed": self.seed,
            "options": (
                None
                if self.options is None
                else dataclasses.asdict(self.options)
            ),
            "faults": (
                None if self.faults is None else self.faults.to_dict()
            ),
            "checkpointing": {
                "interval": self.checkpointing.interval,
                "retention": self.checkpointing.retention,
            },
            "executor": executor,
            "workers": self.workers,
            "verify": self.verify,
            "bfs_roots": self.bfs_roots,
            "kcore_k": self.kcore_k,
            "kmeans_rounds": self.kmeans_rounds,
            "sources": None if self.sources is None else list(self.sources),
            "mode": self.mode,
            "async_bucket_width": self.async_bucket_width,
        }

    def digest(self) -> str:
        """Canonical sha256 over the configuration fields.

        Two configs digest identically iff :meth:`to_dict` agrees —
        the key the serving layer dedups identical requests by and
        groups batchable requests under (after stripping ``sources``).
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunConfig":
        payload = dict(payload)
        options = payload.get("options")
        if options is not None:
            payload["options"] = SympleOptions(**options)
        faults = payload.get("faults")
        if faults is not None:
            payload["faults"] = FaultPlan.from_dict(faults)
        ckpt = payload.get("checkpointing")
        if ckpt is not None:
            payload["checkpointing"] = Checkpointing(**ckpt)
        return cls(**payload)


def _close_executors(executors: Dict[Any, Executor]) -> None:
    """Finalizer body shared by :meth:`Session.close` and GC/atexit.

    Module-level (not a bound method) so the ``weakref.finalize``
    registration holds no reference back to the session itself.
    """
    for ex in list(executors.values()):
        try:
            ex.close()
        except Exception:  # pragma: no cover - best-effort shutdown
            pass
    executors.clear()


class Session:
    """Executes :class:`RunConfig` runs against one bound graph.

    Partitions (per strategy, machine count, *and graph version*) and
    executors (per backend and worker count) are built once and reused
    across runs — the process backend in particular publishes the CSR
    topology to shared memory only when the partition it is bound to
    changes.

    The bound graph may mutate: :meth:`mutate` applies a
    :class:`~repro.graph.dynamic.MutationBatch`, bumps the session's
    ``graph_version``, incrementally refreshes every cached partition
    (dropping the ones whose strategy cannot refresh), and swaps in the
    new snapshot — so the next run on a process executor republishes
    the shared-memory topology under a fresh generation instead of
    serving the stale one.
    """

    def __init__(self, graph: Union[CSRGraph, DynamicGraph],
                 config: Optional[RunConfig] = None) -> None:
        if isinstance(graph, DynamicGraph):
            self._dynamic: Optional[DynamicGraph] = graph
            self.graph = graph.snapshot()
            self.graph_version = graph.version
        else:
            self._dynamic = None
            self.graph = graph
            self.graph_version = 0
        self.config = config if config is not None else RunConfig()
        self._partitions: Dict[Tuple[str, int, int], Partition] = {}
        self._executors: Dict[Tuple[str, Optional[int]], Executor] = {}
        self._verified: Set[Tuple[str, str]] = set()
        self._closed = False
        # guards the cache dicts against concurrent `run` calls; actual
        # execution serializes per executor instance via _run_locks so
        # two threads never interleave work on one executor's context
        self._cache_lock = threading.Lock()
        self._run_locks: Dict[int, threading.RLock] = {}
        # interrupted runs must not leak process pools or
        # multiprocessing.shared_memory segments: the finalizer closes
        # session-owned executors at GC or interpreter exit, and
        # close() routes through it so both paths are idempotent
        self._finalizer = weakref.finalize(
            self, _close_executors, self._executors
        )

    # -- cached artifacts -------------------------------------------------

    def _partition(self, config: RunConfig, graph: CSRGraph,
                   version: int) -> Optional[Partition]:
        if config.engine == "single":
            return None
        strategy = "vertexcut" if config.engine == "dgalois" else "edgecut"
        key = (strategy, config.machines, version)
        part = self._partitions.get(key)
        if part is None:
            with self._cache_lock:
                part = self._partitions.get(key)
                if part is None:
                    cut = (
                        CartesianVertexCut()
                        if strategy == "vertexcut"
                        else OutgoingEdgeCut()
                    )
                    part = cut.partition(graph, config.machines)
                    self._partitions[key] = part
        return part

    def _graph_snapshot(self) -> Tuple[CSRGraph, int]:
        """Consistent (graph, version) pair under the cache lock."""
        with self._cache_lock:
            return self.graph, self.graph_version

    def _executor(self, config: RunConfig) -> Executor:
        if isinstance(config.executor, Executor):
            # caller-owned: used as-is, never closed by the session
            return make_executor(config.executor, workers=config.workers)
        key = (config.executor, config.workers)
        ex = self._executors.get(key)
        if ex is None:
            with self._cache_lock:
                ex = self._executors.get(key)
                if ex is None:
                    ex = make_executor(
                        config.executor, workers=config.workers
                    )
                    self._executors[key] = ex
        return ex

    def _run_lock(self, executor: Executor) -> threading.RLock:
        key = id(executor)
        lock = self._run_locks.get(key)
        if lock is None:
            with self._cache_lock:
                lock = self._run_locks.get(key)
                if lock is None:
                    lock = threading.RLock()
                    self._run_locks[key] = lock
        return lock

    def _preflight(self, config: RunConfig) -> None:
        """Statically verify the run's signal UDFs before executing.

        ``verify="warn"`` downgrades problems to a ``RuntimeWarning``;
        ``verify="strict"`` additionally promotes the strict lint
        severities and refuses the run with
        :class:`~repro.errors.VerificationError`.  Verdicts are purely
        static and cached per (algorithm, mode) for the session's
        lifetime — repeated runs pay for the analysis once.
        """
        if config.verify == "off":
            return
        key = (config.algorithm, config.verify)
        if key in self._verified:
            return
        # imported lazily: the analysis stack is a tooling dependency,
        # not something every execution-only session should pay for
        from repro.algorithms import SIGNAL_UDFS
        from repro.analysis.verify import verify_signal

        strict = config.verify == "strict"
        problems: List[str] = []
        for fn in SIGNAL_UDFS.get(config.algorithm, ()):
            verdict = verify_signal(fn, strict=strict)
            for msg in verdict.messages:
                if msg.level == "error" or (
                    strict and msg.level == "warning"
                ):
                    problems.append(f"{msg.code}: {msg.message}")
        if problems:
            detail = "; ".join(problems)
            if strict:
                raise VerificationError(
                    f"verify='strict' refused to run "
                    f"{config.algorithm!r}: {detail}"
                )
            warnings.warn(
                f"verify='warn': {config.algorithm!r}: {detail}",
                RuntimeWarning,
                stacklevel=4,
            )
        self._verified.add(key)

    # -- execution --------------------------------------------------------

    def run(self, config: Optional[RunConfig] = None,
            **overrides: Any):
        """Execute one run; returns a
        :class:`~repro.bench.harness.RunResult`.

        ``config`` defaults to the session's config; keyword overrides
        are applied on top with :func:`dataclasses.replace`.
        """
        if self._closed:
            raise EngineError("session is closed")
        config = config if config is not None else self.config
        if overrides:
            config = config.replace(**overrides)
        return self._execute(config)

    def run_many(self, configs: Iterable[RunConfig]) -> List[Any]:
        """Execute several configs against the same cached artifacts."""
        return [self.run(config) for config in configs]

    def executor_stats(self) -> Dict[str, Dict[str, Any]]:
        """Stats snapshot of every session-cached executor.

        Keys are ``"kind:workers"``; the process backend reports its
        warm-pool numbers (spawns, topology generation, arena bytes) —
        this is what ``repro.serve`` surfaces under ``/stats``.
        """
        with self._cache_lock:
            items = list(self._executors.items())
        return {
            f"{kind}:{workers if workers else 0}": ex.stats()
            for (kind, workers), ex in items
        }

    def _execute(self, config: RunConfig):
        # imported lazily so the bench package is an execution-time
        # dependency only, not an import-time one
        from repro.bench.harness import _run_session_config

        self._preflight(config)
        # one consistent (graph, version) snapshot: a concurrent mutate
        # cannot hand this run a partition of one topology and the
        # global graph of another
        graph, version = self._graph_snapshot()
        target = self._partition(config, graph, version)
        executor = self._executor(config)
        # executors carry per-bind context (worker pools, shm views, the
        # current state pointer), so concurrent runs sharing one must
        # not interleave: callers on other threads wait their turn here
        # while runs on *different* executors proceed in parallel
        with self._run_lock(executor):
            engine = make_engine(
                config.engine,
                graph if target is None else target,
                config.machines,
                options=config.options,
                obs=config.obs,
                executor=executor,
                verify=config.verify,
            )
            return _run_session_config(engine, graph, config)

    @contextmanager
    def engine_context(self, config: Optional[RunConfig] = None,
                       **overrides: Any):
        """Yield ``(engine, graph, version)`` for hand-driven phases.

        The engine is built over the session's cached partition and
        executor for ``config`` (defaulting to the session config), and
        the executor's run lock is held for the duration — the entry
        point the incremental algorithms drive their pull phases
        through.  The yielded graph/version pair is the consistent
        snapshot the engine was built from, even if :meth:`mutate` runs
        concurrently.
        """
        if self._closed:
            raise EngineError("session is closed")
        config = config if config is not None else self.config
        if overrides:
            config = config.replace(**overrides)
        graph, version = self._graph_snapshot()
        target = self._partition(config, graph, version)
        executor = self._executor(config)
        with self._run_lock(executor):
            engine = make_engine(
                config.engine,
                graph if target is None else target,
                config.machines,
                options=config.options,
                obs=config.obs,
                executor=executor,
                verify=config.verify,
            )
            yield engine, graph, version

    # -- mutation ---------------------------------------------------------

    def mutate(self, batch: MutationBatch, obs: Any = None) -> MutationStats:
        """Apply one mutation batch to the session's graph.

        Wraps a static graph in a :class:`DynamicGraph` on first use,
        applies the batch (atomic; may auto-compact), incrementally
        refreshes every cached partition of the current version (other
        strategies are dropped and rebuilt on demand), and bumps
        ``graph_version`` — which re-keys the partition cache, so the
        next run binds a fresh partition object and the process
        executor republishes its shared-memory topology under a new
        generation instead of serving the stale one.

        ``obs`` (an :class:`~repro.obs.hooks.ObsHub`, tracer, or trace
        path) receives ``mutation_apply`` / ``mutation_compact`` /
        ``partition_refresh`` events.
        """
        if self._closed:
            raise EngineError("session is closed")
        hub = None if obs is None else ObsHub.coerce(obs)
        with self._cache_lock:
            if self._dynamic is None:
                self._dynamic = DynamicGraph(self.graph)
                self.graph_version = self._dynamic.version
            dyn = self._dynamic
            stats = dyn.apply(batch)
            new_graph = dyn.snapshot()
            refreshed: Dict[Tuple[str, int, int], Partition] = {}
            refresh_log = []
            for (strategy, machines, version), part in \
                    self._partitions.items():
                if version != self.graph_version:
                    continue  # superseded topology: let it rebuild
                try:
                    new_part, rstats = refresh_partition(
                        part, new_graph, batch
                    )
                except PartitionError:
                    continue  # strategy without incremental refresh
                refreshed[(strategy, machines, dyn.version)] = new_part
                refresh_log.append((strategy, machines, rstats))
            self._partitions = refreshed
            self.graph = new_graph
            self.graph_version = dyn.version
        if hub is not None:
            hub.mutation_apply(
                graph_version=stats.version,
                inserts=stats.inserts,
                deletes=stats.deletes,
                add_vertices=stats.add_vertices,
                overlay_edges=stats.overlay_edges,
                num_edges=stats.num_edges,
            )
            if stats.compacted:
                hub.mutation_compact(
                    graph_version=stats.version,
                    edges=stats.num_edges,
                    compactions=dyn.compactions,
                )
            for strategy, machines, rstats in refresh_log:
                hub.partition_refresh(
                    strategy=strategy,
                    machines=machines,
                    graph_version=stats.version,
                    touched_machines=len(rstats.touched_machines),
                    reused_machines=rstats.reused_machines,
                    schedule_cells=rstats.schedule_cells,
                    total_cells=rstats.total_cells,
                )
        return stats

    def mutations_since(self, version: int):
        """``(version, batch)`` pairs applied after ``version``.

        None when the session never mutated from that lineage (an
        incremental handle must then recompute from scratch).
        """
        with self._cache_lock:
            if self._dynamic is None:
                return [] if version == self.graph_version else None
            return self._dynamic.batches_since(version)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release session-owned executors (shared memory, pools).

        Idempotent: safe to call repeatedly, from ``__exit__``, and the
        same cleanup runs via ``weakref.finalize`` if the session is
        garbage-collected or the interpreter exits mid-run.
        """
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
