"""Profiling-hook hub: the registration API the runtime reports into.

An :class:`ObsHub` is the single object an engine carries (attached via
``BaseEngine.attach_observer``, ``make_engine(obs=...)``, or
``SympleOptions(trace=...)``).  The engines, the kernel fast path, and
the fault subsystem call its event methods at phase boundaries; the hub
fans each event out to

* the :class:`~repro.obs.tracer.Tracer` (when one is configured),
* its live :class:`~repro.obs.metrics.MetricsRegistry`, and
* any *profiling hooks* registered with :meth:`register` — plain
  objects exposing ``on_<kind>(event)`` methods (or a catch-all
  ``on_event(event)``), called synchronously with the event dict.

Overhead contract: engines guard every call site with
``if self.obs is not None`` — a run without an attached hub pays one
attribute load and a None check per phase, nothing else (asserted by
the perf-smoke gate's <2% budget).  Wall-clock spans (``seconds`` on
phase and kernel-batch events) are measured only while a hub is
attached.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, fill_run_metrics
from repro.obs.tracer import Tracer

__all__ = ["ObsHub", "step_record_payload"]


def step_record_payload(step) -> Dict[str, Any]:
    """JSON-exact payload of a StepRecord's per-machine arrays."""
    return {
        "high_edges": step.high_edges.tolist(),
        "low_edges": step.low_edges.tolist(),
        "high_vertices": step.high_vertices.tolist(),
        "low_vertices": step.low_vertices.tolist(),
        "update_bytes": step.update_bytes.tolist(),
        "dep_bytes": step.dep_bytes.tolist(),
        "slowdown": step.slowdown.tolist(),
    }


class ObsHub:
    """Observability hub: tracer + live metrics + registered hooks."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hooks: List[Any] = []
        # current span context, so leaf events (dep transfers, kernel
        # batches) don't need the phase/step threaded through call sites
        self._phase: Optional[int] = None
        self._step: Optional[int] = None
        self._mode: Optional[str] = None
        self._phase_t0 = 0.0

    # -- construction helpers --------------------------------------------

    @classmethod
    def to_path(cls, path: str, capacity: int = 100_000) -> "ObsHub":
        """Hub streaming its trace to a JSONL file."""
        return cls(tracer=Tracer(path=path, capacity=capacity))

    @classmethod
    def coerce(cls, value: Any) -> "ObsHub":
        """Accept an ObsHub, a Tracer, or a trace-file path."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Tracer):
            return cls(tracer=value)
        if isinstance(value, (str, bytes)):
            return cls.to_path(value)
        raise ReproError(
            f"cannot build an ObsHub from {type(value).__name__}; "
            "pass an ObsHub, a Tracer, or a trace-file path"
        )

    # -- hook registration -------------------------------------------------

    def register(self, hook: Any) -> None:
        """Register a profiling hook (``on_<kind>``/``on_event`` methods)."""
        if hook not in self._hooks:
            self._hooks.append(hook)

    def unregister(self, hook: Any) -> None:
        if hook in self._hooks:
            self._hooks.remove(hook)

    def _emit(self, kind: str, **data: Any) -> None:
        if self.tracer is not None:
            event = self.tracer.emit(kind, **data)
        else:
            event = {"kind": kind, **data}
        for hook in self._hooks:
            fn = getattr(hook, "on_" + kind, None)
            if fn is None:
                fn = getattr(hook, "on_event", None)
            if fn is not None:
                fn(event)

    # -- engine phase boundaries -------------------------------------------

    def phase_begin(self, phase: int, mode: str, engine: str,
                    machines: int) -> None:
        self._phase = phase
        self._step = 0
        self._mode = mode
        self._phase_t0 = time.perf_counter()
        self.metrics.counter(
            "repro_phases_total", "engine phases started",
            labels=("mode",),
        ).inc(mode=mode)
        self._emit("phase_begin", phase=phase, mode=mode, engine=engine,
                   machines=machines)

    def phase_end(self, record) -> None:
        self._emit(
            "phase_end",
            phase=self._phase,
            mode=record.mode,
            steps=len(record.steps),
            sync_bytes=int(record.sync_bytes),
            push_bytes=int(record.push_bytes),
            seconds=time.perf_counter() - self._phase_t0,
        )
        self._phase = None
        self._step = None
        self._mode = None

    def step_begin(self, step: int) -> None:
        self._step = step
        self.metrics.counter(
            "repro_steps_total", "circulant steps executed"
        ).inc()
        self._emit("step_begin", phase=self._phase, step=step)

    def step_end(self, step: int, record) -> None:
        self._emit("step_end", phase=self._phase, step=step,
                   **step_record_payload(record))

    def dep_transfer(self, src: int, dst: int, nbytes: int) -> None:
        self.metrics.counter(
            "repro_dep_transfers_total", "dependency hand-offs sent"
        ).inc()
        self.metrics.counter(
            "repro_dep_transfer_bytes_total", "dependency hand-off bytes"
        ).inc(nbytes)
        self._emit("dep_transfer", phase=self._phase, step=self._step,
                   src=src, dst=dst, bytes=int(nbytes))

    def kernel_batch(self, machine: int, kernel: str, vertices: int,
                     edges: int, seconds: float) -> None:
        self.metrics.counter(
            "repro_kernel_batches_total", "batched kernel invocations",
            labels=("kernel",),
        ).inc(kernel=kernel)
        self.metrics.histogram(
            "repro_kernel_batch_seconds",
            "wall-clock seconds per kernel batch",
            buckets=(1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0),
        ).observe(seconds)
        self._emit("kernel_batch", phase=self._phase, step=self._step,
                   machine=machine, kernel=kernel, vertices=int(vertices),
                   edges=int(edges), seconds=seconds)

    def exec_map_begin(self, backend: str, workers: int,
                       tasks: int) -> None:
        self.metrics.counter(
            "repro_exec_maps_total", "executor map_machines dispatches",
            labels=("backend",),
        ).inc(backend=backend)
        self._emit("exec_map_begin", phase=self._phase, step=self._step,
                   backend=backend, workers=int(workers), tasks=int(tasks))

    def exec_map_end(self, backend: str, tasks: int,
                     seconds: float) -> None:
        self.metrics.histogram(
            "repro_exec_map_seconds",
            "wall-clock seconds per executor map",
            buckets=(1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0),
        ).observe(seconds)
        self._emit("exec_map_end", phase=self._phase, step=self._step,
                   backend=backend, tasks=int(tasks), seconds=seconds)

    def exec_fallback(self, backend: str, reason: str) -> None:
        self.metrics.counter(
            "repro_exec_fallbacks_total",
            "executor maps that degraded to inline execution",
            labels=("backend",),
        ).inc(backend=backend)
        self._emit("exec_fallback", backend=backend, reason=reason)

    def exec_pool_spawn(self, backend: str, workers: int, generation: int,
                        spawns: int) -> None:
        """A persistent worker pool came up (first spawn or crash respawn)."""
        self.metrics.counter(
            "repro_exec_pool_spawns_total",
            "worker pool spawns (first start + crash respawns)",
            labels=("backend",),
        ).inc(backend=backend)
        self.metrics.gauge(
            "repro_exec_pool_workers", "workers in the live pool",
            labels=("backend",),
        ).set(int(workers), backend=backend)
        self.metrics.gauge(
            "repro_exec_pool_generation",
            "topology generation the pool is serving",
            labels=("backend",),
        ).set(int(generation), backend=backend)
        self._emit("exec_pool_spawn", backend=backend, workers=int(workers),
                   generation=int(generation), spawns=int(spawns))

    def exec_arena_grow(self, backend: str, arena: str, bytes: int) -> None:
        """A shared-memory arena grew geometrically to ``bytes`` capacity."""
        self.metrics.counter(
            "repro_exec_arena_grows_total",
            "shared-memory arena geometric growths",
            labels=("arena",),
        ).inc(arena=arena)
        self.metrics.gauge(
            "repro_exec_arena_bytes", "shared-memory arena capacity",
            labels=("arena",),
        ).set(int(bytes), arena=arena)
        self._emit("exec_arena_grow", backend=backend, arena=arena,
                   bytes=int(bytes))

    def sync_update(self, record_index: int, nbytes: int) -> None:
        self._emit("sync_update", record=record_index, bytes=int(nbytes))

    def implicit_record(self, machines: int) -> None:
        self._emit("implicit_record", machines=machines)

    # -- async bucket scheduler boundaries ---------------------------------

    def bucket_begin(self, bucket: int, lo: float, hi: float,
                     size: int) -> None:
        """The async scheduler opened priority bucket ``[lo, hi)``."""
        self.metrics.counter(
            "repro_buckets_total", "priority buckets drained"
        ).inc()
        self._emit("bucket_begin", bucket=int(bucket), lo=float(lo),
                   hi=float(hi), size=int(size))

    def bucket_end(self, bucket: int, waves: int, activations: int) -> None:
        """A priority bucket drained after ``waves`` activation waves."""
        self.metrics.counter(
            "repro_async_activations_total",
            "vertex activations under the async scheduler",
        ).inc(int(activations))
        self._emit("bucket_end", bucket=int(bucket), waves=int(waves),
                   activations=int(activations))

    # -- fault-tolerance boundaries ---------------------------------------

    def checkpoint(self, superstep: int, nbytes: int,
                   record_index: Optional[int]) -> None:
        self.metrics.counter(
            "repro_checkpoints_total", "checkpoints written"
        ).inc()
        self.metrics.counter(
            "repro_checkpoint_bytes_total", "checkpoint bytes written"
        ).inc(nbytes)
        self._emit("checkpoint", superstep=superstep, bytes=int(nbytes),
                   record=record_index)

    def restore(self, superstep: int, nbytes: int,
                record_index: Optional[int]) -> None:
        self.metrics.counter(
            "repro_restores_total", "checkpoint restores"
        ).inc()
        self._emit("restore", superstep=superstep, bytes=int(nbytes),
                   record=record_index)

    def crash(self, machine: int, iteration: int, step: int) -> None:
        self.metrics.counter(
            "repro_crashes_total", "injected machine crashes"
        ).inc()
        self._emit("crash", machine=machine, iteration=iteration,
                   step=step)
        # a crash aborts the open phase; close the span context so the
        # next phase doesn't inherit it
        self._phase = None
        self._step = None
        self._mode = None

    def rollback(self, recoveries: int, superstep: int, restored: int,
                 from_scratch: bool, penalty: float) -> None:
        self.metrics.counter(
            "repro_rollbacks_total", "recovery rollbacks"
        ).inc()
        self._emit("rollback", recoveries=recoveries, superstep=superstep,
                   restored=restored, from_scratch=from_scratch,
                   penalty=penalty)

    # -- dynamic graphs ----------------------------------------------------

    def mutation_apply(self, graph_version: int, inserts: int,
                       deletes: int, add_vertices: int,
                       overlay_edges: int, num_edges: int) -> None:
        """One mutation batch committed to a session's dynamic graph."""
        self.metrics.counter(
            "repro_mutations_total", "mutation batches applied"
        ).inc()
        self.metrics.counter(
            "repro_mutated_edges_total", "edges inserted or deleted",
            labels=("op",),
        ).inc(inserts, op="insert")
        self.metrics.counter(
            "repro_mutated_edges_total", "edges inserted or deleted",
            labels=("op",),
        ).inc(deletes, op="delete")
        self.metrics.gauge(
            "repro_graph_version", "current dynamic-graph version"
        ).set(int(graph_version))
        self.metrics.gauge(
            "repro_overlay_edges", "pending overlay entries"
        ).set(int(overlay_edges))
        self._emit("mutation_apply", graph_version=int(graph_version),
                   inserts=int(inserts), deletes=int(deletes),
                   add_vertices=int(add_vertices),
                   overlay_edges=int(overlay_edges),
                   num_edges=int(num_edges))

    def mutation_compact(self, graph_version: int, edges: int,
                         compactions: int) -> None:
        """The delta overlay was folded into a fresh base CSR."""
        self.metrics.counter(
            "repro_compactions_total", "overlay compactions"
        ).inc()
        self._emit("mutation_compact", graph_version=int(graph_version),
                   edges=int(edges), compactions=int(compactions))

    def partition_refresh(self, strategy: str, machines: int,
                          graph_version: int, touched_machines: int,
                          reused_machines: int, schedule_cells: int,
                          total_cells: int) -> None:
        """A cached partition was incrementally refreshed."""
        self.metrics.counter(
            "repro_partition_refreshes_total",
            "incremental partition refreshes", labels=("strategy",),
        ).inc(strategy=strategy)
        self.metrics.counter(
            "repro_schedule_cells_invalidated_total",
            "circulant schedule cells dirtied by mutations",
        ).inc(schedule_cells)
        self._emit("partition_refresh", strategy=strategy,
                   machines=int(machines),
                   graph_version=int(graph_version),
                   touched_machines=int(touched_machines),
                   reused_machines=int(reused_machines),
                   schedule_cells=int(schedule_cells),
                   total_cells=int(total_cells))

    # -- run finalization --------------------------------------------------

    def run_end(self, engine, cost_model=None) -> None:
        """Close out a run: emit the summary event, fill run metrics.

        Called once by the harness (or manually after driving an engine
        directly).  ``cost_model`` defaults to the engine's own.
        """
        model = cost_model if cost_model is not None else engine.default_cost
        options = getattr(engine, "options", None)
        double_buffering = getattr(options, "double_buffering", True)
        schedule = getattr(options, "schedule", "circulant")
        fill_run_metrics(
            self.metrics,
            engine.counters,
            model,
            engine.cost_kind,
            double_buffering=double_buffering,
            schedule=schedule,
        )
        self._emit(
            "run_end",
            engine=engine.cost_kind,
            machines=engine.num_machines,
            summary=engine.counters.summary(),
            double_buffering=bool(double_buffering),
            schedule=schedule,
        )

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()
