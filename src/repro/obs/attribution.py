"""Post-hoc attribution: reconstruct runs and split simulated time.

A trace emitted by :class:`~repro.obs.hooks.ObsHub` is *complete*:
``step_end`` events carry every per-machine :class:`StepRecord` array,
``phase_end`` the iteration-wide sync/push traffic, ``checkpoint`` /
``restore`` / ``sync_update`` the late mutations of already-committed
records, and ``run_end`` the final counter summary.
:func:`rebuild_counters` therefore reconstructs the run's
:class:`~repro.runtime.counters.Counters` bit-for-bit (integers are
exact in JSON; float64 round-trips through ``repr``), so a cost-model
breakdown recomputed from the trace equals the live one exactly —
the property the CI trace gate asserts.

:func:`attribute_record` replays the cost model's circulant
discrete-event recursion step by step and reports, per (machine, step),
where the simulated time went: compute, *exposed* dependency wait
(machine blocked on the incoming hand-off), and the wait *hidden* by
double buffering's split transfer — the Figure 7/11 view.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.runtime.counters import COMM_TAGS, Counters, IterationRecord, StepRecord
from repro.runtime.cost_model import CostModel

__all__ = [
    "rebuild_counters",
    "reconstruct_breakdown",
    "attribute_record",
    "attribution_rows",
]

_STEP_ARRAYS = (
    "high_edges",
    "low_edges",
    "high_vertices",
    "low_vertices",
    "update_bytes",
    "dep_bytes",
)


def _step_from_event(event: Dict[str, Any], machines: int) -> StepRecord:
    step = StepRecord(machines)
    for name in _STEP_ARRAYS:
        setattr(step, name, np.asarray(event[name], dtype=np.int64))
    step.slowdown = np.asarray(event["slowdown"], dtype=np.float64)
    return step


def rebuild_counters(events: Iterable[Dict[str, Any]]) -> Counters:
    """Reconstruct a run's :class:`Counters` exactly from its trace.

    Requires a ``run_end`` event (the harness emits one); step records
    of aborted phases (a crash severs the circulation before
    ``phase_end``) are discarded, matching the live engine, which never
    commits them.
    """
    counters: Optional[Counters] = None
    machines: Optional[int] = None
    pending: List[StepRecord] = []
    run_end: Optional[Dict[str, Any]] = None
    for event in events:
        kind = event.get("kind")
        if kind == "phase_begin":
            machines = int(event["machines"])
            if counters is None:
                counters = Counters(machines)
            elif machines != counters.num_machines:
                raise ReproError(
                    "trace mixes machine counts "
                    f"({counters.num_machines} vs {machines})"
                )
            pending = []
        elif kind == "step_end":
            if machines is None:
                raise ReproError("step_end before any phase_begin")
            pending.append(_step_from_event(event, machines))
        elif kind == "phase_end":
            if counters is None:
                raise ReproError("phase_end before any phase_begin")
            record = IterationRecord(mode=event["mode"])
            record.steps = pending
            record.sync_bytes = int(event["sync_bytes"])
            record.push_bytes = int(event["push_bytes"])
            counters.add_iteration(record)
            pending = []
        elif kind == "crash":
            pending = []
        elif kind == "implicit_record":
            machines = int(event["machines"])
            if counters is None:
                counters = Counters(machines)
            record = IterationRecord(mode="pull")
            record.steps = [StepRecord(machines)]
            counters.add_iteration(record)
        elif kind == "sync_update":
            if counters is None or event["record"] >= len(counters.iterations):
                raise ReproError("sync_update references a missing record")
            counters.iterations[event["record"]].sync_bytes += int(
                event["bytes"]
            )
        elif kind in ("checkpoint", "restore"):
            index = event["record"]
            if index is None:
                continue
            if counters is None or index >= len(counters.iterations):
                raise ReproError(f"{kind} references a missing record")
            counters.iterations[index].ckpt_bytes += int(event["bytes"])
        elif kind == "run_end":
            run_end = event
    if run_end is None:
        raise ReproError(
            "trace has no run_end event; incomplete traces cannot be "
            "reconstructed exactly"
        )
    if counters is None:
        counters = Counters(int(run_end["machines"]))
    summary = run_end["summary"]
    counters.edges_traversed = int(summary["edges_traversed"])
    counters.vertices_processed = int(summary["vertices_processed"])
    counters.penalty_time = float(summary["penalty_time"])
    for tag in COMM_TAGS:
        counters.bytes_by_tag[tag] = int(summary[f"{tag}_bytes"])
        counters.messages_by_tag[tag] = int(summary["messages_by_tag"][tag])
    return counters


def reconstruct_breakdown(
    events: Iterable[Dict[str, Any]],
    cost_model: CostModel,
    engine: Optional[str] = None,
    double_buffering: Optional[bool] = None,
    schedule: Optional[str] = None,
) -> Dict[str, float]:
    """Cost-model breakdown recomputed purely from a trace.

    Engine kind, double-buffering flag, and schedule default to what the
    ``run_end`` event recorded, so one trace file is self-describing.
    """
    events = list(events)
    run_end = next(
        (e for e in events if e.get("kind") == "run_end"), None
    )
    if run_end is None:
        raise ReproError("trace has no run_end event")
    if engine is None:
        engine = run_end["engine"]
    if double_buffering is None:
        double_buffering = bool(run_end.get("double_buffering", True))
    if schedule is None:
        schedule = run_end.get("schedule", "circulant")
    counters = rebuild_counters(events)
    return cost_model.breakdown(
        counters, engine, double_buffering=double_buffering,
        schedule=schedule,
    )


def attribute_record(
    cost_model: CostModel,
    record: IterationRecord,
    double_buffering: bool = True,
) -> List[Dict[str, Any]]:
    """Per-(machine, step) time attribution for one circulant iteration.

    Replays :meth:`CostModel.symple_iteration_time`'s discrete-event
    recursion and returns, for each step, per-machine float64 arrays:

    * ``compute`` — edge/vertex work incl. straggler slowdown;
    * ``dep_wait`` — time the machine sat *blocked* on the incoming
      dependency hand-off (after its low-degree overlap ran out);
    * ``hidden_wait`` — wait that double buffering's split transfer hid
      behind the first half of high-degree compute (zero when
      ``double_buffering=False``: nothing is hidden, all wait exposed);
    * ``start`` / ``finish`` — the machine's span within the iteration.

    Exposed-wait totals match the residual ``dependency_wait`` the
    breakdown reports for a pure sequence of circulant pull iterations.
    """
    steps = record.steps
    if not steps:
        return []
    p = steps[0].num_machines
    finish = np.zeros(p, dtype=np.float64)
    prev_send_a = np.full(p, -np.inf)
    prev_send_b = np.full(p, -np.inf)
    prev_dep_bytes = np.zeros(p, dtype=np.float64)
    out: List[Dict[str, Any]] = []

    for index, step in enumerate(steps):
        c_high = (
            cost_model.compute_time(step.high_edges, step.high_vertices)
            * step.slowdown
        )
        c_low = (
            cost_model.compute_time(step.low_edges, step.low_vertices)
            * step.slowdown
        )
        if p == 1:
            # no hand-off on a single machine (matches the cost model)
            arrive_a = np.full(p, -np.inf)
            arrive_b = np.full(p, -np.inf)
        else:
            right = (np.arange(p) + 1) % p
            arrive_a = prev_send_a[right] + cost_model.transfer_time(
                prev_dep_bytes[right] / 2.0
            ) + np.where(
                np.isfinite(prev_send_a[right]), cost_model.latency, 0.0
            )
            arrive_b = prev_send_b[right] + cost_model.transfer_time(
                prev_dep_bytes[right] / 2.0
            ) + np.where(
                np.isfinite(prev_send_b[right]), cost_model.latency, 0.0
            )

        has_work = (c_high + c_low) > 0
        t0 = finish + np.where(has_work, cost_model.step_overhead, 0.0)
        t_low = t0 + c_low
        if double_buffering:
            start_a = np.maximum(t_low, arrive_a)
            wait_a = start_a - t_low
            t_a = start_a + c_high / 2.0
            start_b = np.maximum(t_a, arrive_b)
            wait_b = start_b - t_a
            t_b = start_b + c_high / 2.0
            send_a, send_b = t_a, t_b
            exposed = wait_a + wait_b
            # what the same machine would have waited had the whole
            # dependency shipped once, after the full previous step
            naive = np.maximum(arrive_b - t_low, 0.0)
            hidden = np.maximum(naive - exposed, 0.0)
        else:
            start = np.maximum(t_low, arrive_b)
            exposed = start - t_low
            hidden = np.zeros(p, dtype=np.float64)
            t_b = start + c_high
            send_a = send_b = t_b
        out.append(
            {
                "step": index,
                "compute": c_high + c_low,
                "dep_wait": exposed,
                "hidden_wait": hidden,
                "start": t0,
                "finish": t_b.copy(),
            }
        )
        finish = t_b
        prev_send_a, prev_send_b = send_a, send_b
        prev_dep_bytes = np.asarray(step.dep_bytes, dtype=np.float64)
    return out


def attribution_rows(
    counters: Counters,
    cost_model: CostModel,
    double_buffering: bool = True,
) -> List[Dict[str, Any]]:
    """Flat per-(iteration, step, machine) rows over a whole run.

    The tabular view ``repro trace --attribution`` prints; push-mode
    iterations have no dependency circulation and are skipped.
    """
    rows: List[Dict[str, Any]] = []
    for it, record in enumerate(counters.iterations):
        if record.mode != "pull":
            continue
        for entry in attribute_record(
            cost_model, record, double_buffering=double_buffering
        ):
            for m in range(record.steps[0].num_machines):
                rows.append(
                    {
                        "iteration": it,
                        "step": entry["step"],
                        "machine": m,
                        "compute": float(entry["compute"][m]),
                        "dep_wait": float(entry["dep_wait"][m]),
                        "hidden_wait": float(entry["hidden_wait"][m]),
                        "start": float(entry["start"][m]),
                        "finish": float(entry["finish"][m]),
                    }
                )
    return rows
