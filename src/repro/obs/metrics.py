"""Metrics registry: named counters, gauges, and histograms.

Subsumes the ad-hoc reporting scattered across the runtime — the
per-tag byte totals of :class:`~repro.runtime.counters.Counters` and
the component breakdown of
:meth:`~repro.runtime.cost_model.CostModel.breakdown` — behind one
registry exportable as JSON (experiment archives) or Prometheus text
exposition format (scrape endpoints, CI artifacts).

Two usage modes:

* **live** — an :class:`~repro.obs.hooks.ObsHub` owns a registry and
  bumps counters as hook events fire (phases, steps, dep transfers,
  kernel batches, checkpoints, rollbacks);
* **post-hoc** — :func:`fill_run_metrics` prices a finished run's
  counters through a cost model into the same registry, which is what
  ``repro metrics`` and the benchmark exporters emit.

Metric and label names follow Prometheus conventions (``repro_`` prefix,
``_total`` suffix on counters); values are plain Python numbers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.runtime.counters import COMM_TAGS, Counters
from repro.runtime.cost_model import CostModel

__all__ = [
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "fill_run_metrics",
    "registry_breakdown",
]

DEFAULT_BUCKETS = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


def _label_key(label_names: Sequence[str],
               labels: Dict[str, object]) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ReproError(
            f"expected labels {tuple(label_names)}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class Metric:
    """Base class: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._samples: Dict[Tuple[str, ...], float] = {}

    # -- access ----------------------------------------------------------

    def value(self, **labels: object) -> float:
        key = _label_key(self.label_names, labels)
        return self._samples.get(key, 0.0)

    def samples(self) -> List[Dict[str, object]]:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in sorted(self._samples.items())
        ]

    # -- export ----------------------------------------------------------

    def _prom_lines(self) -> List[str]:
        lines = []
        for key, value in sorted(self._samples.items()):
            lines.append(_prom_sample(self.name, self.label_names, key,
                                      value))
        return lines


def _prom_label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{n}="{v}"' for n, v in zip(names, values)
    )
    return "{" + body + "}"


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _prom_sample(name: str, names: Sequence[str], values: Sequence[str],
                 value: float) -> str:
    return f"{name}{_prom_label_str(names, values)} {_prom_number(value)}"


class Counter(Metric):
    """Monotonically increasing sample per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ReproError("counters only go up")
        key = _label_key(self.label_names, labels)
        self._samples[key] = self._samples.get(key, 0.0) + float(amount)


class Gauge(Metric):
    """Point-in-time sample per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        self._samples[key] = self._samples.get(key, 0.0) + float(amount)


class Histogram(Metric):
    """Cumulative-bucket histogram per label set (Prometheus layout)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise ReproError("histogram buckets must be sorted, non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        # per label key: (bucket_counts, sum, count)
        self._hist: Dict[Tuple[str, ...],
                         Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        counts, total, n = self._hist.get(
            key, ([0] * len(self.buckets), 0.0, 0)
        )
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._hist[key] = (counts, total + float(value), n + 1)

    def samples(self) -> List[Dict[str, object]]:
        out = []
        for key, (counts, total, n) in sorted(self._hist.items()):
            out.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "buckets": {
                        _prom_number(b): c
                        for b, c in zip(self.buckets, counts)
                    },
                    "sum": total,
                    "count": n,
                }
            )
        return out

    def _prom_lines(self) -> List[str]:
        lines = []
        names = self.label_names + ("le",)
        for key, (counts, total, n) in sorted(self._hist.items()):
            for bound, count in zip(self.buckets, counts):
                lines.append(
                    _prom_sample(self.name + "_bucket", names,
                                 key + (_prom_number(bound),), count)
                )
            lines.append(
                _prom_sample(self.name + "_bucket", names,
                             key + ("+Inf",), n)
            )
            lines.append(
                _prom_sample(self.name + "_sum", self.label_names, key,
                             total)
            )
            lines.append(
                _prom_sample(self.name + "_count", self.label_names, key, n)
            )
        return lines


class MetricsRegistry:
    """Get-or-create registry of named metrics with exporters."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            if existing.label_names != tuple(labels):
                raise ReproError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.label_names}"
                )
            return existing
        metric = cls(name, help, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export ----------------------------------------------------------

    def export_json(self) -> Dict[str, object]:
        return {
            "metrics": [
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "samples": metric.samples(),
                }
                for _, metric in sorted(self._metrics.items())
            ]
        }

    def export_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.export_json(), indent=indent)

    def export_prometheus(self) -> str:
        """Prometheus text exposition format (one block per family)."""
        lines: List[str] = []
        for _, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._prom_lines())
        return "\n".join(lines) + "\n"


def fill_run_metrics(
    registry: MetricsRegistry,
    counters: Counters,
    cost_model: Optional[CostModel] = None,
    engine_kind: Optional[str] = None,
    double_buffering: bool = True,
    schedule: str = "circulant",
) -> MetricsRegistry:
    """Price a finished run's counters into ``registry``.

    Populates the work/traffic totals always, and — when a cost model
    and engine kind are given — the simulated-time breakdown the paper's
    Figure 11 reports, plus a per-step critical-path compute histogram.
    Call once per run: the traffic counters are cumulative.
    """
    registry.gauge(
        "repro_edges_traversed", "neighbors examined by signal UDFs"
    ).set(counters.edges_traversed)
    registry.gauge(
        "repro_vertices_processed", "vertices run through signal UDFs"
    ).set(counters.vertices_processed)
    registry.gauge(
        "repro_iterations", "engine phases recorded"
    ).set(len(counters.iterations))
    registry.gauge(
        "repro_penalty_time",
        "simulated time charged outside work records (faults, backoff)",
    ).set(counters.penalty_time)
    comm_bytes = registry.counter(
        "repro_comm_bytes_total", "remote bytes by communication tag",
        labels=("tag",),
    )
    comm_msgs = registry.counter(
        "repro_comm_messages_total",
        "remote message batches by communication tag", labels=("tag",),
    )
    for tag in COMM_TAGS:
        comm_bytes.inc(counters.bytes_by_tag[tag], tag=tag)
        comm_msgs.inc(counters.messages_by_tag[tag], tag=tag)

    if cost_model is None or engine_kind is None:
        return registry

    breakdown = cost_model.breakdown(
        counters, engine_kind, double_buffering=double_buffering,
        schedule=schedule,
    )
    registry.gauge(
        "repro_simulated_time_total", "total simulated execution time"
    ).set(breakdown["total"])
    component = registry.gauge(
        "repro_simulated_time_breakdown",
        "simulated time by cost source", labels=("component",),
    )
    for name, value in breakdown.items():
        if name != "total":
            component.set(value, component=name)
    step_compute = registry.histogram(
        "repro_step_compute_time",
        "critical-path compute time per recorded step",
    )
    for record in counters.iterations:
        for step in record.steps:
            compute = cost_model.step_compute_time(step)
            step_compute.observe(float(np.max(compute, initial=0.0)))
    return registry


def registry_breakdown(registry: MetricsRegistry) -> Dict[str, float]:
    """Read the cost breakdown back out of an exported registry.

    The inverse view of :func:`fill_run_metrics` — benchmark scripts
    consume this instead of calling the cost model themselves.
    """
    total = registry.get("repro_simulated_time_total")
    component = registry.get("repro_simulated_time_breakdown")
    if total is None or component is None:
        raise ReproError(
            "registry has no simulated-time breakdown; was "
            "fill_run_metrics called with a cost model?"
        )
    out = {"total": total.value()}
    for sample in component.samples():
        out[sample["labels"]["component"]] = sample["value"]
    return out
