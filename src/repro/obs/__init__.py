"""Structured observability: event tracing, metrics, profiling hooks.

The paper's whole evaluation (Tables 2-7, Figures 10-11) is a set of
derived views over execution counters; this package makes those views
fall out of *one instrumented run* instead of bespoke benchmark
scripts:

* :mod:`repro.obs.tracer` — span-style JSONL event traces with a
  bounded ring buffer and a schema validator;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  JSON and Prometheus text exporters;
* :mod:`repro.obs.hooks` — the :class:`ObsHub` the engines, kernel fast
  path, and fault subsystem report into (and a registration API for
  custom profiling hooks);
* :mod:`repro.obs.attribution` — exact trace -> Counters
  reconstruction and per-(machine, step) compute/dep-wait/overlap
  attribution.

Entry points: ``SympleOptions(trace=...)``, ``make_engine(obs=...)``,
``repro run --trace/--metrics``, ``repro trace``, ``repro metrics``.
"""

from repro.obs.attribution import (
    attribute_record,
    attribution_rows,
    rebuild_counters,
    reconstruct_breakdown,
)
from repro.obs.hooks import ObsHub
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fill_run_metrics,
    registry_breakdown,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    Tracer,
    read_trace,
    summarize_events,
    validate_events,
)

__all__ = [
    "ObsHub",
    "Tracer",
    "EVENT_KINDS",
    "read_trace",
    "validate_events",
    "summarize_events",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "fill_run_metrics",
    "registry_breakdown",
    "rebuild_counters",
    "reconstruct_breakdown",
    "attribute_record",
    "attribution_rows",
]
