"""Structured event tracing.

A :class:`Tracer` records span-style begin/end events for everything
the runtime does — engine phases, circulant steps, dependency
transfers, kernel batches, checkpoints, recovery rollbacks — as plain
dicts with a monotonically increasing sequence number.  Events live in
a bounded in-memory ring buffer (old events are dropped, never the
run), and, when a ``path`` is given, stream to disk as JSON Lines so a
crash loses at most the unflushed tail.

The schema is deliberately small and closed: :data:`EVENT_KINDS` maps
each event kind to the keys it must carry, and :func:`validate_events`
checks a trace against it — the CI gate runs it on every traced
benchmark run (``repro trace FILE``).  Every numeric field is either an
exact integer or a ``float64`` round-tripped through ``repr``, so a
trace is *complete*: :func:`repro.obs.attribution.rebuild_counters`
reconstructs the run's :class:`~repro.runtime.counters.Counters`
bit-for-bit and the cost-model breakdown recomputed from a trace
matches the live run exactly.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ReproError

__all__ = [
    "EVENT_KINDS",
    "Tracer",
    "read_trace",
    "validate_events",
    "summarize_events",
]

# kind -> required keys (beyond "seq" and "kind")
EVENT_KINDS: Dict[str, tuple] = {
    # engine phases (one pull or push call)
    "phase_begin": ("phase", "mode", "engine", "machines"),
    "phase_end": ("phase", "mode", "steps", "sync_bytes", "push_bytes"),
    # circulant steps (one per phase for the BSP engines)
    "step_begin": ("phase", "step"),
    "step_end": (
        "phase",
        "step",
        "high_edges",
        "low_edges",
        "high_vertices",
        "low_vertices",
        "update_bytes",
        "dep_bytes",
        "slowdown",
    ),
    # dependency hand-off at a circulant step boundary
    "dep_transfer": ("phase", "step", "src", "dst", "bytes"),
    # batched-kernel fast-path invocations (wall-clock profiled)
    "kernel_batch": ("phase", "machine", "kernel", "vertices", "edges",
                     "seconds"),
    # executor dispatch spans (one map_machines call each); the
    # backend/workers fields are run configuration, like "seconds" —
    # everything that feeds counter reconstruction lives elsewhere
    "exec_map_begin": ("phase", "step", "backend", "workers", "tasks"),
    "exec_map_end": ("phase", "step", "backend", "tasks", "seconds"),
    # a concurrent backend ran one map inline (unpicklable payload)
    "exec_fallback": ("backend", "reason"),
    # a persistent worker pool was (re)spawned — spawns > 1 means a
    # crash respawn; generation tracks topology remaps without respawn
    "exec_pool_spawn": ("backend", "workers", "generation", "spawns"),
    # a shared-memory delta arena grew geometrically to a new capacity
    "exec_arena_grow": ("backend", "arena", "bytes"),
    # out-of-phase sync broadcast (BaseEngine.sync_state)
    "sync_update": ("record", "bytes"),
    # implicit iteration record created by sync_state on a fresh engine
    "implicit_record": ("machines",),
    # async bucket scheduler: one priority bucket drained (bucket_begin
    # opens the [lo, hi) priority range with `size` pending vertices;
    # bucket_end reports the activation waves the drain took)
    "bucket_begin": ("bucket", "lo", "hi", "size"),
    "bucket_end": ("bucket", "waves", "activations"),
    # fault tolerance
    "checkpoint": ("superstep", "bytes", "record"),
    "restore": ("superstep", "bytes", "record"),
    "crash": ("machine", "iteration", "step"),
    "rollback": ("recoveries", "superstep", "restored", "from_scratch",
                 "penalty"),
    # run summary (emitted once when the harness finishes)
    "run_end": ("engine", "machines", "summary"),
    # dynamic graphs: one batch of edge/vertex mutations was applied
    "mutation_apply": ("graph_version", "inserts", "deletes",
                       "add_vertices", "overlay_edges", "num_edges"),
    # the delta overlay was folded into a fresh base CSR
    "mutation_compact": ("graph_version", "edges", "compactions"),
    # a cached partition was incrementally refreshed after a mutation:
    # schedule_cells counts the circulant cells the batch dirtied
    # (out of machines^2), touched/reused count rebuilt machines
    "partition_refresh": ("strategy", "machines", "graph_version",
                          "touched_machines", "reused_machines",
                          "schedule_cells", "total_cells"),
}

# keys carrying wall-clock measurements: legitimate to differ between
# two otherwise identical runs (see tests/test_obs_equivalence.py)
VOLATILE_KEYS = ("seconds",)


def _json_default(value: Any):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value)!r}")


class Tracer:
    """Bounded ring buffer of trace events with optional JSONL streaming.

    ``capacity`` bounds the in-memory buffer (oldest events are evicted
    and counted in :attr:`dropped`); ``path`` additionally streams every
    event to a JSONL file, opened lazily on the first emit so an unused
    tracer costs nothing.
    """

    def __init__(self, path: Optional[str] = None,
                 capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ReproError("tracer capacity must be positive")
        self.path = path
        self.capacity = capacity
        self.dropped = 0
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._fh = None

    # -- recording -------------------------------------------------------

    def emit(self, kind: str, **data: Any) -> Dict[str, Any]:
        """Append one event; returns the event dict (with its seq)."""
        self._seq += 1
        event = {"seq": self._seq, "kind": kind, **data}
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "w", encoding="utf-8")
            self._fh.write(
                json.dumps(event, separators=(",", ":"),
                           default=_json_default)
                + "\n"
            )
        return event

    # -- access ----------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Buffered events, oldest first (bounded by ``capacity``)."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def to_jsonl(self, path: str) -> None:
        """Dump the buffered events to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._ring:
                fh.write(
                    json.dumps(event, separators=(",", ":"),
                               default=_json_default)
                    + "\n"
                )

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{lineno}: invalid trace JSON: {exc}"
                ) from None
            if not isinstance(event, dict):
                raise ReproError(
                    f"{path}:{lineno}: trace event must be a JSON object"
                )
            events.append(event)
    return events


def validate_events(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Schema-check a trace; returns a list of problems (empty = valid).

    Checks: known kinds, required keys present, strictly increasing
    ``seq``, per-machine array lengths on ``step_end`` events, and
    phase begin/end nesting.
    """
    problems: List[str] = []
    last_seq = 0
    machines: Optional[int] = None
    open_phase: Optional[int] = None
    for i, event in enumerate(events):
        where = f"event {i}"
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(
                f"{where}: seq {seq!r} not strictly increasing"
            )
        else:
            last_seq = seq
        missing = [k for k in EVENT_KINDS[kind] if k not in event]
        if missing:
            problems.append(f"{where}: {kind} missing keys {missing}")
            continue
        if kind == "phase_begin":
            machines = event["machines"]
            if open_phase is not None:
                # an aborted phase (injected crash) never ends; only one
                # may be open at a time
                pass
            open_phase = event["phase"]
        elif kind == "phase_end":
            if open_phase is None:
                problems.append(f"{where}: phase_end without phase_begin")
            open_phase = None
        elif kind == "step_end" and machines is not None:
            for key in ("high_edges", "low_edges", "high_vertices",
                        "low_vertices", "update_bytes", "dep_bytes",
                        "slowdown"):
                arr = event[key]
                if not isinstance(arr, list) or len(arr) != machines:
                    problems.append(
                        f"{where}: step_end {key} is not a "
                        f"{machines}-machine array"
                    )
        elif kind == "run_end":
            summary = event["summary"]
            if not isinstance(summary, dict):
                problems.append(f"{where}: run_end summary not an object")
            else:
                for key in ("edges_traversed", "total_bytes",
                            "messages_by_tag", "penalty_time"):
                    if key not in summary:
                        problems.append(
                            f"{where}: run_end summary missing {key!r}"
                        )
    return problems


def summarize_events(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Event counts by kind — the ``repro trace`` one-line overview."""
    counts: Dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
