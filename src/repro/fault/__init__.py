"""Fault tolerance: injection, checkpointing, and crash recovery.

The subsystem has four parts (see ``docs/API.md``):

* :mod:`repro.fault.plan` — deterministic, seeded fault schedules
  (machine crashes, stragglers, message drop/delay/duplication);
* :mod:`repro.fault.injector` — the :class:`FaultController` applying
  a plan through engine phase/step hooks and the network delivery hook;
* :mod:`repro.fault.checkpoint` — durable snapshots at superstep
  boundaries with interval and rolling-retention policy;
* :mod:`repro.fault.recovery` — :func:`run_recoverable`, the
  coordinator that rolls back to the last consistent checkpoint and
  replays, with bounded exponential-backoff retries.

Algorithms participate through the :class:`VertexProgram` protocol
(:mod:`repro.fault.program`); BFS, K-core, and MIS ship as programs.
"""

from repro.fault.checkpoint import Checkpoint, CheckpointStore, snapshot_nbytes
from repro.fault.injector import FaultController
from repro.fault.plan import CrashFault, FaultPlan, MessageFault, StragglerFault
from repro.fault.program import VertexProgram, run_program
from repro.fault.recovery import RecoveryReport, run_recoverable

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "snapshot_nbytes",
    "FaultController",
    "CrashFault",
    "StragglerFault",
    "MessageFault",
    "FaultPlan",
    "VertexProgram",
    "run_program",
    "RecoveryReport",
    "run_recoverable",
]
