"""Circulant-aware checkpointing.

A :class:`CheckpointStore` snapshots execution state at superstep
boundaries: the full :class:`~repro.engine.state.StateStore` (vertex
arrays, scalars, and the frontier arrays the algorithms keep there)
plus the resumable-loop context of the running
:class:`~repro.fault.program.VertexProgram`.  Snapshots are taken only
at superstep boundaries, which are also circulant *step* boundaries:
SympleGraph's per-pull :class:`~repro.engine.dep.DepStore` is transient
within a phase, so a crash severs the dependency circulation and
recovery restarts the interrupted phase with dependency bitmaps blanked
— correct by the paper's Section 5.1 incomplete-information guarantee
(the re-executed phase merely rediscovers its breaks).

The store models durable, replicated storage: writes survive crashes,
and their cost is charged through the ``ckpt`` communication tag and
the cost model's checkpoint term so overhead shows up in the
communication tables.  ``retention`` bounds how many snapshots are kept
(rolling window), as production checkpoint stores do.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.engine.state import StateStore

__all__ = ["Checkpoint", "CheckpointStore", "snapshot_nbytes"]

_SCALAR_BYTES = 8  # wire size charged per non-array state field


def snapshot_nbytes(snapshot: Dict[str, Any]) -> int:
    """Serialized size of a state snapshot (arrays + scalars)."""
    total = 0
    for value in snapshot.values():
        if isinstance(value, np.ndarray):
            total += int(value.nbytes)
        else:
            total += _SCALAR_BYTES
    return total


@dataclass
class Checkpoint:
    """One durable snapshot of a run at a superstep boundary."""

    superstep: int
    state: Dict[str, Any]
    ctx: Dict[str, Any]
    extras: Dict[str, np.ndarray] = field(default_factory=dict)
    nbytes: int = 0

    def restore_into(self, state: StateStore) -> Dict[str, Any]:
        """Load this snapshot back into a live state store.

        Arrays are copied, so re-execution cannot corrupt the stored
        snapshot; returns a fresh deep copy of the loop context.
        """
        state.restore(self.state)
        return copy.deepcopy(self.ctx)


class CheckpointStore:
    """Rolling window of durable checkpoints with interval policy.

    ``interval`` of 0 disables checkpointing entirely; ``interval`` of
    N takes a snapshot entering supersteps 0, N, 2N, ... (the superstep
    0 baseline gives recovery a consistent restore point before the
    first interval elapses).
    """

    def __init__(self, interval: int = 0, retention: int = 2) -> None:
        if interval < 0:
            raise ValueError("checkpoint interval must be non-negative")
        if retention < 1:
            raise ValueError("retention must keep at least one checkpoint")
        self.interval = interval
        self.retention = retention
        self._checkpoints: List[Checkpoint] = []
        self._last_saved: Optional[int] = None
        # overhead accounting, surfaced in recovery reports
        self.checkpoints_taken = 0
        self.bytes_written = 0
        self.restores = 0
        self.bytes_restored = 0

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def due(self, superstep: int) -> bool:
        """Should a snapshot be taken entering this superstep?

        False for a superstep that already has one — recovery replays
        re-enter the restored superstep without re-writing it.
        """
        if not self.enabled:
            return False
        if self._last_saved is not None and superstep <= self._last_saved:
            return False
        return superstep % self.interval == 0

    def save(
        self,
        superstep: int,
        state: StateStore,
        ctx: Dict[str, Any],
        extras: Optional[Dict[str, np.ndarray]] = None,
    ) -> Checkpoint:
        """Snapshot the run entering ``superstep`` and roll retention."""
        snap = state.snapshot()
        extras = {
            name: arr.copy() for name, arr in (extras or {}).items()
        }
        nbytes = snapshot_nbytes(snap) + sum(
            int(a.nbytes) for a in extras.values()
        )
        checkpoint = Checkpoint(
            superstep=superstep,
            state=snap,
            ctx=copy.deepcopy(ctx),
            extras=extras,
            nbytes=nbytes,
        )
        self._checkpoints.append(checkpoint)
        del self._checkpoints[: -self.retention]
        self._last_saved = superstep
        self.checkpoints_taken += 1
        self.bytes_written += nbytes
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        return self._checkpoints[-1] if self._checkpoints else None

    def restore_latest(
        self, state: StateStore
    ) -> Optional[tuple[Checkpoint, Dict[str, Any]]]:
        """Restore the most recent checkpoint into ``state``.

        Returns ``(checkpoint, ctx)`` with a fresh deep copy of the
        loop context, or ``None`` when nothing has been saved yet
        (recovery then restarts from scratch)."""
        checkpoint = self.latest()
        if checkpoint is None:
            return None
        ctx = checkpoint.restore_into(state)
        self.restores += 1
        self.bytes_restored += checkpoint.nbytes
        return checkpoint, ctx

    def __len__(self) -> int:
        return len(self._checkpoints)
