"""Fault injection runtime.

A :class:`FaultController` applies a :class:`~repro.fault.plan.FaultPlan`
to a running engine through three hook points:

* **phase/step hooks** — engines call :meth:`check_crash` when a phase
  (and, for SympleGraph's circulant pull, each step) begins; a matching
  :class:`~repro.fault.plan.CrashFault` raises
  :class:`~repro.errors.MachineCrashError`.  Because slot application
  is bulk-synchronous, aborting mid-phase never leaves partial updates
  in the :class:`~repro.engine.state.StateStore` — the crash costs the
  work already metered, not correctness.
* **delivery hook** — installed on :class:`SimulatedNetwork`; message
  drops are retransmitted with exponential backoff (bytes and delay
  charged), bounded by ``max_retries`` before escalating to
  :class:`~repro.errors.MessageLossError`; delays and duplicates charge
  penalty time and extra traffic.  Dependency (``dep``) drops are
  advisory (Section 5.1) and handled inside the SympleGraph engine as
  blind processing instead of retransmission.
* **straggler hook** — :meth:`slowdown` yields the per-machine compute
  multiplier for a phase, recorded on the
  :class:`~repro.runtime.counters.StepRecord` and priced by the cost
  model.

One ``numpy.random.Generator``, seeded from ``plan.seed``, backs every
probabilistic draw, so the full crash/drop/straggler schedule replays
bit-identically for a given (seed, plan) pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import MachineCrashError, MessageLossError
from repro.fault.plan import CrashFault, FaultPlan
from repro.runtime.network import DeliveryOutcome

__all__ = ["FaultController"]


class FaultController:
    """Deterministic fault injector bound to one engine."""

    def __init__(
        self,
        plan: FaultPlan,
        num_machines: int,
        max_retries: int = 5,
        backoff_base: float = 20.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        plan.validate(num_machines)
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.plan = plan
        self.num_machines = num_machines
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.rng = rng if rng is not None else np.random.default_rng(plan.seed)
        self._pending_crashes: List[CrashFault] = list(plan.crashes)
        self._dep_loss_rate = plan.dep_loss_rate()
        # message faults that the delivery hook applies (dep drops are
        # applied semantically inside the engine instead)
        self._delivery_faults = [
            f for f in plan.messages
            if not (f.kind == "drop" and f.tag == "dep")
        ]
        self._obs = None  # observability hub, cached at bind time
        self.stats: Dict[str, int] = {
            "crashes": 0,
            "recoveries": 0,
            "messages_dropped": 0,
            "retransmissions": 0,
            "messages_delayed": 0,
            "messages_duplicated": 0,
            "dep_losses": 0,
        }

    # -- engine binding ----------------------------------------------------

    def bind(self, engine) -> None:
        """Install this controller's hooks on an engine.

        Called by ``BaseEngine.attach_faults`` and again after
        ``reset_metrics`` (which replaces the network) or
        ``attach_observer`` (which changes the hub this controller
        reports crash events to)."""
        engine.network.delivery_hook = self.deliver
        self._obs = getattr(engine, "obs", None)

    # -- crash injection ---------------------------------------------------

    def check_crash(self, iteration: int, step: int = 0) -> None:
        """Raise if a crash event fires at this (iteration, step) boundary.

        Events are one-shot: a fired crash is consumed, so recovery's
        re-execution (which continues the global phase count) does not
        trip over it again.
        """
        for event in self._pending_crashes:
            if event.iteration != iteration:
                continue
            event_step = event.step if event.step is not None else 0
            if event_step != step:
                continue
            self._pending_crashes.remove(event)
            self.stats["crashes"] += 1
            if self._obs is not None:
                self._obs.crash(event.machine, iteration, step)
            raise MachineCrashError(event.machine, iteration, step)

    # -- straggler injection -----------------------------------------------

    def slowdown(self, iteration: int) -> np.ndarray:
        """Per-machine compute multiplier for one phase (>= 1.0)."""
        factors = np.ones(self.num_machines, dtype=np.float64)
        for event in self.plan.stragglers:
            if event.active(iteration):
                factors[event.machine] = max(
                    factors[event.machine], event.factor
                )
        return factors

    # -- dependency loss (Section 5.1) -------------------------------------

    @property
    def dep_loss_rate(self) -> float:
        return self._dep_loss_rate

    def dep_lost(self) -> bool:
        """One control-bit read misses its dependency message."""
        if self._dep_loss_rate <= 0.0:
            return False
        lost = bool(self.rng.random() < self._dep_loss_rate)
        if lost:
            self.stats["dep_losses"] += 1
        return lost

    # -- message delivery --------------------------------------------------

    @property
    def delivery_faults_active(self) -> bool:
        """Does :meth:`deliver` make probabilistic draws on this plan?

        True when any message fault is applied by the delivery hook
        (dep drops are handled semantically in the engine and excluded).
        The SympleGraph engine consults this to decide whether batched
        kernels may run under a dep-loss plan: when the hook also draws
        from the shared generator, only the per-vertex interpreter
        preserves the draw order.
        """
        return bool(self._delivery_faults)

    def deliver(
        self, src: int, dst: int, tag: str, nbytes: int
    ) -> Optional[DeliveryOutcome]:
        """Delivery hook for :class:`SimulatedNetwork.send`."""
        outcome = DeliveryOutcome()
        for fault in self._delivery_faults:
            if not fault.applies(tag):
                continue
            if fault.kind == "drop":
                attempts = 1
                delay = 0.0
                while self.rng.random() < fault.rate:
                    if attempts > self.max_retries:
                        self.stats["messages_dropped"] += 1
                        raise MessageLossError(
                            f"{tag} message {src}->{dst} lost after "
                            f"{self.max_retries} retries"
                        )
                    # exponential backoff before the retransmission
                    delay += self.backoff_base * (2.0 ** (attempts - 1))
                    attempts += 1
                if attempts > 1:
                    self.stats["retransmissions"] += attempts - 1
                    outcome.attempts += attempts - 1
                    outcome.delay += delay
            elif fault.kind == "delay":
                if self.rng.random() < fault.rate:
                    self.stats["messages_delayed"] += 1
                    outcome.delay += fault.delay
            elif fault.kind == "duplicate":
                if self.rng.random() < fault.rate:
                    self.stats["messages_duplicated"] += 1
                    outcome.extra_copies += 1
        return outcome

    # -- bookkeeping -------------------------------------------------------

    def note_recovery(self) -> None:
        self.stats["recoveries"] += 1
