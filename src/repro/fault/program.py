"""Resumable vertex programs: framework-owned superstep loops.

Checkpoint/restore is only well-defined when the framework — not the
algorithm — owns the iteration loop (Pregel's design): the checkpoint
must capture everything the loop will read after a rollback.  A
:class:`VertexProgram` factors an algorithm into

* :meth:`setup` — declare state, return the :class:`StateStore`;
* :meth:`step` — one superstep (engine phases + the state transitions
  between them); return ``True`` to continue;
* :meth:`result` — package the final answer.

All loop-carried mutable values live either in the ``StateStore`` or
in the ``ctx`` dict the driver passes to every call — both are captured
by checkpoints.  Program instances themselves must hold only immutable
configuration and graph-derived read-only data, so a rollback never
needs to touch them.

:func:`run_program` is the plain driver: it produces byte-for-byte the
same execution as the hand-written loops it replaced (the public
``bfs``/``kcore``/``mis`` functions are now thin wrappers over it).
:func:`~repro.fault.recovery.run_recoverable` is the fault-tolerant
driver sharing the same protocol.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.engine.state import StateStore

__all__ = ["VertexProgram", "run_program"]


class VertexProgram:
    """An algorithm expressed as a resumable superstep loop."""

    name = "program"

    def setup(self, engine, ctx: Dict[str, Any]) -> StateStore:
        """Declare state, seed initial values, return the state store."""
        raise NotImplementedError

    def step(self, engine, s: StateStore, ctx: Dict[str, Any]) -> bool:
        """Run one superstep; return ``True`` while not converged."""
        raise NotImplementedError

    def result(self, engine, s: StateStore, ctx: Dict[str, Any]):
        """Package the final answer (must not run engine phases)."""
        raise NotImplementedError


def run_program(program: VertexProgram, engine):
    """Drive a program to convergence without fault tolerance."""
    ctx: Dict[str, Any] = {}
    s = program.setup(engine, ctx)
    while program.step(engine, s, ctx):
        pass
    return program.result(engine, s, ctx)
