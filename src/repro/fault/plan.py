"""Deterministic fault plans.

A :class:`FaultPlan` is a declarative, seeded description of every
fault a run must survive — the simulated analogue of a chaos-testing
schedule.  Three event kinds:

* :class:`CrashFault` — a machine dies at an (iteration, step)
  boundary.  ``iteration`` counts engine phases (pull or push calls)
  from the start of the run; ``step`` addresses a circulant step inside
  a SympleGraph dense pull (``None`` or 0 means the phase boundary,
  which is where crashes land for the BSP engines).  Crashes are
  one-shot: the machine restarts and rejoins during recovery.
* :class:`StragglerFault` — a machine computes ``factor`` times slower
  over an iteration window (``[start, end)``; open-ended when ``end``
  is ``None``).
* :class:`MessageFault` — probabilistic per-message faults on a
  communication tag (``None`` = every tag): ``drop`` (retransmitted
  with exponential backoff, escalating to a crash when the retry
  budget is exhausted), ``delay`` (adds in-flight latency), and
  ``duplicate`` (spurious extra copy, charged as traffic).  Drops on
  the ``dep`` tag are special: dependency messages are *advisory*
  (paper Section 5.1), so they are never retransmitted — the receiver
  processes blind, losing savings but never correctness.

All randomness (message-fault draws, dep-loss draws) flows from the
plan's single top-level ``seed`` through one ``numpy.random.Generator``
owned by the :class:`~repro.fault.injector.FaultController`, so a
``(seed, FaultPlan)`` pair replays the identical fault schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultPlanError
from repro.runtime.counters import COMM_TAGS

__all__ = ["CrashFault", "StragglerFault", "MessageFault", "FaultPlan"]

MESSAGE_FAULT_KINDS = ("drop", "delay", "duplicate")


@dataclass(frozen=True)
class CrashFault:
    """Machine ``machine`` crashes entering (iteration, step)."""

    machine: int
    iteration: int
    step: Optional[int] = None

    def validate(self) -> None:
        if self.machine < 0:
            raise FaultPlanError("crash machine must be non-negative")
        if self.iteration < 0:
            raise FaultPlanError("crash iteration must be non-negative")
        if self.step is not None and self.step < 0:
            raise FaultPlanError("crash step must be non-negative")


@dataclass(frozen=True)
class StragglerFault:
    """Machine ``machine`` runs ``factor``x slower on ``[start, end)``."""

    machine: int
    factor: float
    start: int = 0
    end: Optional[int] = None

    def validate(self) -> None:
        if self.machine < 0:
            raise FaultPlanError("straggler machine must be non-negative")
        if self.factor < 1.0:
            raise FaultPlanError(
                "straggler factor must be >= 1 (it is a slowdown)"
            )
        if self.start < 0:
            raise FaultPlanError("straggler start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise FaultPlanError("straggler window must be non-empty")

    def active(self, iteration: int) -> bool:
        if iteration < self.start:
            return False
        return self.end is None or iteration < self.end


@dataclass(frozen=True)
class MessageFault:
    """Per-message fault on one tag (or all tags when ``tag`` is None)."""

    kind: str
    rate: float
    tag: Optional[str] = None
    delay: float = 50.0  # simulated time units, for kind == "delay"

    def validate(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown message fault kind {self.kind!r}; "
                f"expected one of {MESSAGE_FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError("message fault rate must be a probability")
        if self.tag is not None and self.tag not in COMM_TAGS:
            raise FaultPlanError(
                f"unknown communication tag {self.tag!r}; "
                f"expected one of {COMM_TAGS}"
            )
        if self.delay < 0.0:
            raise FaultPlanError("message delay must be non-negative")

    def applies(self, tag: str) -> bool:
        return self.tag is None or self.tag == tag


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults."""

    seed: int = 0
    crashes: Tuple[CrashFault, ...] = field(default_factory=tuple)
    stragglers: Tuple[StragglerFault, ...] = field(default_factory=tuple)
    messages: Tuple[MessageFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "messages", tuple(self.messages))
        self.validate()

    # -- validation --------------------------------------------------------

    def validate(self, num_machines: Optional[int] = None) -> None:
        """Check internal consistency, and cluster fit when ``num_machines``
        is known (events must address existing machines)."""
        for event in (*self.crashes, *self.stragglers, *self.messages):
            event.validate()
        if num_machines is not None:
            for event in (*self.crashes, *self.stragglers):
                if event.machine >= num_machines:
                    raise FaultPlanError(
                        f"fault targets machine {event.machine} but the "
                        f"cluster has only {num_machines} machines"
                    )

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.stragglers or self.messages)

    def dep_loss_rate(self) -> float:
        """Combined drop probability for dependency messages."""
        keep = 1.0
        for fault in self.messages:
            if fault.kind == "drop" and fault.applies("dep"):
                keep *= 1.0 - fault.rate
        return 1.0 - keep

    # -- builders ----------------------------------------------------------

    @classmethod
    def single_crash(
        cls,
        machine: int,
        iteration: int,
        step: Optional[int] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """One machine crash — the smallest interesting plan."""
        return cls(
            seed=seed, crashes=(CrashFault(machine, iteration, step),)
        )

    @classmethod
    def dep_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Section 5.1's lost-dependency experiment as a plan."""
        return cls(
            seed=seed, messages=(MessageFault("drop", rate, tag="dep"),)
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict:
        events: List[Dict] = []
        for c in self.crashes:
            event: Dict = {
                "kind": "crash", "machine": c.machine,
                "iteration": c.iteration,
            }
            if c.step is not None:
                event["step"] = c.step
            events.append(event)
        for s in self.stragglers:
            event = {
                "kind": "straggler", "machine": s.machine,
                "factor": s.factor, "start": s.start,
            }
            if s.end is not None:
                event["end"] = s.end
            events.append(event)
        for m in self.messages:
            event = {"kind": "message", "fault": m.kind, "rate": m.rate}
            if m.tag is not None:
                event["tag"] = m.tag
            if m.kind == "delay":
                event["delay"] = m.delay
            events.append(event)
        return {"seed": self.seed, "events": events}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        crashes: List[CrashFault] = []
        stragglers: List[StragglerFault] = []
        messages: List[MessageFault] = []
        for event in payload.get("events", ()):
            kind = event.get("kind")
            try:
                if kind == "crash":
                    crashes.append(
                        CrashFault(
                            machine=int(event["machine"]),
                            iteration=int(event["iteration"]),
                            step=(
                                int(event["step"])
                                if "step" in event else None
                            ),
                        )
                    )
                elif kind == "straggler":
                    stragglers.append(
                        StragglerFault(
                            machine=int(event["machine"]),
                            factor=float(event["factor"]),
                            start=int(event.get("start", 0)),
                            end=(
                                int(event["end"]) if "end" in event else None
                            ),
                        )
                    )
                elif kind == "message":
                    messages.append(
                        MessageFault(
                            kind=str(event["fault"]),
                            rate=float(event["rate"]),
                            tag=event.get("tag"),
                            delay=float(event.get("delay", 50.0)),
                        )
                    )
                else:
                    raise FaultPlanError(
                        f"unknown fault event kind {kind!r}"
                    )
            except KeyError as exc:
                raise FaultPlanError(
                    f"fault event {event!r} is missing field {exc}"
                ) from None
        return cls(
            seed=int(payload.get("seed", 0)),
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            messages=tuple(messages),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault plan JSON: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
