"""Crash recovery: checkpoint rollback and deterministic replay.

:func:`run_recoverable` drives a :class:`~repro.fault.program.VertexProgram`
under an optional :class:`~repro.fault.plan.FaultPlan`.  When an
injected fault surfaces — a machine crash, or a message-loss escalation
after the retry budget — the coordinator rolls *every* machine back to
the last consistent checkpoint and re-executes from that superstep:

* state restore is a copy, so replay cannot corrupt the snapshot;
* the crash aborts mid-phase, but bulk-synchronous slot application
  means the interrupted phase left no partial writes: re-execution
  restarts it at a step boundary with dependency bitmaps blanked
  (SympleGraph's per-pull ``DepStore`` is rebuilt), correct by the
  paper's Section 5.1 guarantee;
* the wasted partial work, the checkpoint writes, the restore reads,
  and an exponential-backoff restart penalty are all charged to the
  engine's counters, so recovery overhead is visible in the
  communication tables and the simulated execution time;
* without any checkpoint (interval 0, or a crash before the first
  snapshot), recovery degrades to restart-from-scratch.

Replay is deterministic — algorithms draw no randomness after
``setup`` and injector randomness never feeds algorithm state — so the
recovered result is bit-identical to the fault-free run (asserted by
``tests/test_fault_recovery.py`` for BFS, K-core, and MIS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import FaultError
from repro.fault.checkpoint import CheckpointStore
from repro.fault.injector import FaultController
from repro.fault.plan import FaultPlan
from repro.fault.program import VertexProgram

__all__ = ["RecoveryReport", "run_recoverable"]


@dataclass
class RecoveryReport:
    """What fault tolerance did (and cost) during one run."""

    supersteps: int = 0
    replayed_supersteps: int = 0
    crashes: int = 0
    recoveries: int = 0
    restarts_from_scratch: int = 0
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    restores: int = 0
    restored_bytes: int = 0
    backoff_time: float = 0.0
    fault_stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "supersteps": self.supersteps,
            "replayed_supersteps": self.replayed_supersteps,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "restarts_from_scratch": self.restarts_from_scratch,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "restores": self.restores,
            "restored_bytes": self.restored_bytes,
            "backoff_time": self.backoff_time,
            "fault_stats": dict(self.fault_stats),
        }


def _charge_checkpoint(engine, nbytes: int, superstep: int = 0) -> None:
    """Charge a snapshot write: every machine streams its masters' share
    to the durable store (modeled as the machine to its right, so the
    traffic matrices show the ring pattern replicated stores produce)."""
    p = engine.num_machines
    share = nbytes // p if p else nbytes
    if p > 1 and share > 0:
        for m in range(p):
            engine.network.send(m, (m + 1) % p, "ckpt", share)
    else:
        engine.counters.add_bytes("ckpt", nbytes)
    record = _latest_record(engine)
    if record is not None:
        record.ckpt_bytes += nbytes
    obs = getattr(engine, "obs", None)
    if obs is not None:
        obs.checkpoint(superstep, nbytes, _latest_record_index(engine))


def _charge_restore(engine, nbytes: int, superstep: int = 0) -> None:
    """Charge a restore: the snapshot streams back from the store."""
    p = engine.num_machines
    share = nbytes // p if p else nbytes
    if p > 1 and share > 0:
        for m in range(p):
            engine.network.send((m + 1) % p, m, "ckpt", share)
    else:
        engine.counters.add_bytes("ckpt", nbytes)
    record = _latest_record(engine)
    if record is not None:
        record.ckpt_bytes += nbytes
    obs = getattr(engine, "obs", None)
    if obs is not None:
        obs.restore(superstep, nbytes, _latest_record_index(engine))


def _latest_record(engine):
    records = engine.counters.iterations
    return records[-1] if records else None


def _latest_record_index(engine):
    records = engine.counters.iterations
    return len(records) - 1 if records else None


def run_recoverable(
    program: VertexProgram,
    engine,
    plan: Optional[FaultPlan] = None,
    checkpoint_interval: int = 0,
    retention: int = 2,
    max_recoveries: int = 16,
    max_retries: int = 5,
    backoff_base: float = 50.0,
    controller: Optional[FaultController] = None,
):
    """Run a program with fault injection and crash recovery.

    Returns ``(result, report)``.  ``plan=None`` (or an empty plan)
    with ``checkpoint_interval=0`` reduces to :func:`run_program`
    semantics with zero overhead.  A run whose faults keep firing
    faster than recovery can make progress raises the final
    :class:`~repro.errors.FaultError` after ``max_recoveries``
    attempts.
    """
    if controller is None and plan is not None and not plan.empty:
        controller = FaultController(
            plan,
            engine.num_machines,
            max_retries=max_retries,
            backoff_base=backoff_base,
        )
    engine.attach_faults(controller)
    store = CheckpointStore(interval=checkpoint_interval, retention=retention)
    report = RecoveryReport()

    try:
        ctx: Dict[str, Any] = {}
        s = program.setup(engine, ctx)
        superstep = 0
        while True:
            try:
                if store.due(superstep):
                    checkpoint = store.save(superstep, s, ctx)
                    _charge_checkpoint(engine, checkpoint.nbytes, superstep)
                cont = program.step(engine, s, ctx)
            except FaultError:
                report.recoveries += 1
                if report.recoveries > max_recoveries:
                    raise
                if controller is not None:
                    controller.note_recovery()
                # exponential backoff: detection + restart latency
                delay = backoff_base * (2.0 ** min(report.recoveries - 1, 8))
                engine.counters.add_penalty(delay)
                report.backoff_time += delay
                crashed_at = superstep
                restored = store.restore_latest(s)
                if restored is None:
                    # no durable snapshot: restart from scratch
                    report.restarts_from_scratch += 1
                    report.replayed_supersteps += superstep
                    ctx = {}
                    s = program.setup(engine, ctx)
                    superstep = 0
                else:
                    checkpoint, ctx = restored
                    report.replayed_supersteps += (
                        superstep - checkpoint.superstep
                    )
                    _charge_restore(
                        engine, checkpoint.nbytes, checkpoint.superstep
                    )
                    superstep = checkpoint.superstep
                obs = getattr(engine, "obs", None)
                if obs is not None:
                    obs.rollback(
                        recoveries=report.recoveries,
                        superstep=crashed_at,
                        restored=superstep,
                        from_scratch=restored is None,
                        penalty=delay,
                    )
                continue
            superstep += 1
            report.supersteps += 1
            if not cont:
                break
        result = program.result(engine, s, ctx)
    finally:
        engine.attach_faults(None)

    report.checkpoints_taken = store.checkpoints_taken
    report.checkpoint_bytes = store.bytes_written
    report.restores = store.restores
    report.restored_bytes = store.bytes_restored
    if controller is not None:
        report.crashes = controller.stats["crashes"]
        report.fault_stats = dict(controller.stats)
    return result, report
