"""Experiment harness.

Runs one (engine, algorithm, dataset) combination under the paper's
measurement protocol and returns every metric the evaluation tables
report: simulated execution time, edges traversed, and the per-tag
communication breakdown.  BFS follows the paper's multi-root protocol
(random non-isolated roots, averaged).

The supported entry point is :class:`repro.Session` with a
:class:`repro.RunConfig`; dispatch goes through
:mod:`repro.algorithms.registry`, whose per-algorithm runners drive
the prepared engine and report a
:class:`~repro.algorithms.registry.RunOutcome` back here.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.algorithms.registry import ALGORITHMS, get_spec
from repro.engine.base import BaseEngine
from repro.fault import run_program, run_recoverable
from repro.graph.csr import CSRGraph

__all__ = ["RunResult", "ALGORITHMS", "speedup"]


@dataclass
class RunResult:
    """Metrics from one experiment run."""

    engine: str
    algorithm: str
    num_machines: int
    simulated_time: float
    edges_traversed: int
    update_bytes: int
    dep_bytes: int
    sync_bytes: int
    push_bytes: int
    total_bytes: int
    extra: Dict[str, float] = field(default_factory=dict)
    #: digest of the converged algorithm output alone (no
    #: schedule-dependent metadata) — what sync-vs-async equivalence
    #: compares; None for algorithms without a canonical fixpoint
    fixpoint: Optional[str] = None

    @property
    def non_dep_bytes(self) -> int:
        """Everything except dependency traffic (Gemini-comparable)."""
        return self.total_bytes - self.dep_bytes

    def to_dict(self) -> Dict:
        """JSON-serializable form (for experiment archives)."""
        return {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "num_machines": self.num_machines,
            "simulated_time": self.simulated_time,
            "edges_traversed": self.edges_traversed,
            "update_bytes": self.update_bytes,
            "dep_bytes": self.dep_bytes,
            "sync_bytes": self.sync_bytes,
            "push_bytes": self.push_bytes,
            "total_bytes": self.total_bytes,
            "extra": dict(self.extra),
            "fixpoint": self.fixpoint,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunResult":
        return cls(**payload)

    def digest(self) -> str:
        """Canonical sha256 over every metric this result carries.

        Two runs digest identically iff their engine/algorithm config
        and every counter, byte tally, simulated time, and extra metric
        agree exactly — the cross-executor equivalence check the CI
        perf-smoke gate diffs.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _merge_report(extra: Dict[str, float], report) -> None:
    """Accumulate a RecoveryReport into a run's ``extra`` metrics."""
    payload = report.to_dict()
    stats = payload.pop("fault_stats")
    for key in (
        "retransmissions",
        "messages_delayed",
        "messages_duplicated",
        "dep_losses",
    ):
        payload[key] = stats.get(key, 0)
    for key, value in payload.items():
        name = f"fault_{key}"
        extra[name] = extra.get(name, 0) + value


def _run_session_config(engine: BaseEngine, graph: CSRGraph, config):
    """Drive one :class:`repro.RunConfig` on a prepared engine.

    The measurement core behind :meth:`repro.Session.run`: looks up the
    algorithm's registered runner, hands it a ``drive`` closure that
    routes :class:`~repro.fault.program.VertexProgram` executions
    through the plain or the recoverable driver (merging
    RecoveryReports into the extras), and collects the counters under
    the outcome's averaging scale.
    """
    extra: Dict[str, float] = {}
    faulted = config.faulted
    cost_model = config.cost_model

    def drive(program):
        if not faulted:
            return run_program(program, engine)
        result, report = run_recoverable(
            program,
            engine,
            plan=config.faults,
            checkpoint_interval=config.checkpointing.interval,
            retention=config.checkpointing.retention,
        )
        _merge_report(extra, report)
        return result

    spec = get_spec(config.algorithm)
    outcome = spec.runner(engine, graph, config, drive, extra)
    time = engine.execution_time(cost_model) * outcome.scale
    if engine.obs is not None:
        engine.obs.run_end(engine, cost_model)
    return _collect(
        engine,
        config.algorithm,
        time,
        extra,
        scale=outcome.scale,
        fixpoint=outcome.fixpoint,
    )


def _collect(
    engine: BaseEngine,
    algorithm: str,
    simulated_time: float,
    extra: Dict[str, float],
    scale: float = 1.0,
    fixpoint: Optional[str] = None,
) -> RunResult:
    c = engine.counters
    return RunResult(
        engine=engine.kind,
        algorithm=algorithm,
        num_machines=engine.num_machines,
        simulated_time=simulated_time,
        edges_traversed=int(c.edges_traversed * scale),
        update_bytes=int(c.update_bytes * scale),
        dep_bytes=int(c.dep_bytes * scale),
        sync_bytes=int(c.sync_bytes * scale),
        push_bytes=int(c.push_bytes * scale),
        total_bytes=int(c.total_bytes * scale),
        extra=extra,
        fixpoint=fixpoint,
    )


def speedup(baseline: RunResult, contender: RunResult) -> float:
    """How much faster the contender is (>1 means contender wins)."""
    if contender.simulated_time <= 0:
        raise ValueError("contender has no recorded time")
    return baseline.simulated_time / contender.simulated_time
