"""Experiment harness.

Runs one (engine, algorithm, dataset) combination under the paper's
measurement protocol and returns every metric the evaluation tables
report: simulated execution time, edges traversed, and the per-tag
communication breakdown.  BFS follows the paper's multi-root protocol
(random non-isolated roots, averaged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.algorithms import (
    BFSProgram,
    KCoreProgram,
    MISProgram,
    kmeans,
    sample_neighbors,
)
from repro.engine import SympleOptions, make_engine
from repro.engine.base import BaseEngine
from repro.errors import UnsupportedAlgorithmError
from repro.fault import FaultPlan, run_program, run_recoverable
from repro.graph.csr import CSRGraph
from repro.runtime.cost_model import CostModel

__all__ = ["RunResult", "run_algorithm", "ALGORITHMS", "speedup"]

ALGORITHMS = ("bfs", "kcore", "mis", "kmeans", "sampling")


@dataclass
class RunResult:
    """Metrics from one experiment run."""

    engine: str
    algorithm: str
    num_machines: int
    simulated_time: float
    edges_traversed: int
    update_bytes: int
    dep_bytes: int
    sync_bytes: int
    push_bytes: int
    total_bytes: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def non_dep_bytes(self) -> int:
        """Everything except dependency traffic (Gemini-comparable)."""
        return self.total_bytes - self.dep_bytes

    def to_dict(self) -> Dict:
        """JSON-serializable form (for experiment archives)."""
        return {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "num_machines": self.num_machines,
            "simulated_time": self.simulated_time,
            "edges_traversed": self.edges_traversed,
            "update_bytes": self.update_bytes,
            "dep_bytes": self.dep_bytes,
            "sync_bytes": self.sync_bytes,
            "push_bytes": self.push_bytes,
            "total_bytes": self.total_bytes,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunResult":
        return cls(**payload)


def _bfs_roots(graph: CSRGraph, num_roots: int, seed: int) -> np.ndarray:
    """Random non-isolated roots (the paper uses 64 of them)."""
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(graph.out_degrees() > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertex to root BFS at")
    count = min(num_roots, candidates.size)
    return rng.choice(candidates, size=count, replace=False)


def _merge_report(extra: Dict[str, float], report) -> None:
    """Accumulate a RecoveryReport into a run's ``extra`` metrics."""
    payload = report.to_dict()
    stats = payload.pop("fault_stats")
    for key in (
        "retransmissions",
        "messages_delayed",
        "messages_duplicated",
        "dep_losses",
    ):
        payload[key] = stats.get(key, 0)
    for key, value in payload.items():
        name = f"fault_{key}"
        extra[name] = extra.get(name, 0) + value


def run_algorithm(
    engine_kind: str,
    graph: CSRGraph,
    algorithm: str,
    num_machines: int = 16,
    seed: int = 0,
    options: Optional[SympleOptions] = None,
    cost_model: Optional[CostModel] = None,
    bfs_roots: int = 3,
    kcore_k: int = 8,
    kmeans_rounds: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_interval: int = 0,
    retention: int = 2,
    obs=None,
) -> RunResult:
    """Execute one experiment and collect its metrics.

    BFS accumulates counters over ``bfs_roots`` random roots and
    reports the per-root average simulated time, mirroring the paper's
    averaging protocol at reduced repetition count.

    ``fault_plan``/``checkpoint_interval`` run the algorithm under
    :func:`repro.fault.run_recoverable`: faults are injected, the state
    is checkpointed every ``checkpoint_interval`` supersteps, and the
    recovery metrics land in ``extra`` under ``fault_*`` keys.  Only the
    program-ported algorithms (bfs, kcore, mis) support this.

    ``obs`` attaches an observability hub (or tracer, or trace-file
    path — see :mod:`repro.obs`) to the engine; the harness finalizes
    it with a ``run_end`` summary event and the run's metrics before
    returning.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    faulted = (
        fault_plan is not None and not fault_plan.empty
    ) or checkpoint_interval > 0
    if faulted and algorithm in ("kmeans", "sampling"):
        raise UnsupportedAlgorithmError(
            f"{algorithm} is not a resumable program; fault injection "
            "and checkpointing support bfs, kcore, and mis"
        )

    engine = make_engine(
        engine_kind, graph, num_machines, options=options, obs=obs
    )
    extra: Dict[str, float] = {}

    def drive(program):
        if not faulted:
            return run_program(program, engine)
        result, report = run_recoverable(
            program,
            engine,
            plan=fault_plan,
            checkpoint_interval=checkpoint_interval,
            retention=retention,
        )
        _merge_report(extra, report)
        return result

    if algorithm == "bfs":
        roots = _bfs_roots(graph, bfs_roots, seed)
        reached = 0
        for root in roots:
            result = drive(BFSProgram(int(root)))
            reached += result.reached
        extra["avg_reached"] = reached / len(roots)
        time = engine.execution_time(cost_model) / len(roots)
        if engine.obs is not None:
            engine.obs.run_end(engine, cost_model)
        return _collect(engine, algorithm, time, extra, scale=1.0 / len(roots))
    if algorithm == "kcore":
        result = drive(KCoreProgram(kcore_k))
        extra["core_size"] = result.size
        extra["rounds"] = result.rounds
    elif algorithm == "mis":
        result = drive(MISProgram(seed=seed))
        extra["mis_size"] = result.size
        extra["rounds"] = result.rounds
    elif algorithm == "kmeans":
        result = kmeans(engine, rounds=kmeans_rounds, seed=seed)
        extra["assigned"] = result.assigned_count
    elif algorithm == "sampling":
        result = sample_neighbors(engine, seed=seed)
        extra["sampled"] = result.sampled_count

    time = engine.execution_time(cost_model)
    if engine.obs is not None:
        engine.obs.run_end(engine, cost_model)
    return _collect(engine, algorithm, time, extra)


def _collect(
    engine: BaseEngine,
    algorithm: str,
    simulated_time: float,
    extra: Dict[str, float],
    scale: float = 1.0,
) -> RunResult:
    c = engine.counters
    return RunResult(
        engine=engine.kind,
        algorithm=algorithm,
        num_machines=engine.num_machines,
        simulated_time=simulated_time,
        edges_traversed=int(c.edges_traversed * scale),
        update_bytes=int(c.update_bytes * scale),
        dep_bytes=int(c.dep_bytes * scale),
        sync_bytes=int(c.sync_bytes * scale),
        push_bytes=int(c.push_bytes * scale),
        total_bytes=int(c.total_bytes * scale),
        extra=extra,
    )


def speedup(baseline: RunResult, contender: RunResult) -> float:
    """How much faster the contender is (>1 means contender wins)."""
    if contender.simulated_time <= 0:
        raise ValueError("contender has no recorded time")
    return baseline.simulated_time / contender.simulated_time
