"""Experiment harness.

Runs one (engine, algorithm, dataset) combination under the paper's
measurement protocol and returns every metric the evaluation tables
report: simulated execution time, edges traversed, and the per-tag
communication breakdown.  BFS follows the paper's multi-root protocol
(random non-isolated roots, averaged).

The supported entry point is :class:`repro.Session` with a
:class:`repro.RunConfig`; :func:`run_algorithm` remains as a thin
deprecated wrapper over it.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.algorithms import (
    BFSProgram,
    KCoreProgram,
    MISProgram,
    bfs_multi,
    kmeans,
    sample_neighbors,
    sssp_multi,
)
from repro.engine import SympleOptions
from repro.engine.base import BaseEngine
from repro.fault import FaultPlan, run_program, run_recoverable
from repro.graph.csr import CSRGraph
from repro.runtime.cost_model import CostModel

__all__ = ["RunResult", "run_algorithm", "ALGORITHMS", "speedup"]

ALGORITHMS = ("bfs", "kcore", "mis", "kmeans", "sampling")


@dataclass
class RunResult:
    """Metrics from one experiment run."""

    engine: str
    algorithm: str
    num_machines: int
    simulated_time: float
    edges_traversed: int
    update_bytes: int
    dep_bytes: int
    sync_bytes: int
    push_bytes: int
    total_bytes: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def non_dep_bytes(self) -> int:
        """Everything except dependency traffic (Gemini-comparable)."""
        return self.total_bytes - self.dep_bytes

    def to_dict(self) -> Dict:
        """JSON-serializable form (for experiment archives)."""
        return {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "num_machines": self.num_machines,
            "simulated_time": self.simulated_time,
            "edges_traversed": self.edges_traversed,
            "update_bytes": self.update_bytes,
            "dep_bytes": self.dep_bytes,
            "sync_bytes": self.sync_bytes,
            "push_bytes": self.push_bytes,
            "total_bytes": self.total_bytes,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunResult":
        return cls(**payload)

    def digest(self) -> str:
        """Canonical sha256 over every metric this result carries.

        Two runs digest identically iff their engine/algorithm config
        and every counter, byte tally, simulated time, and extra metric
        agree exactly — the cross-executor equivalence check the CI
        perf-smoke gate diffs.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _bfs_roots(graph: CSRGraph, num_roots: int, seed: int) -> np.ndarray:
    """Random non-isolated roots (the paper uses 64 of them)."""
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(graph.out_degrees() > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertex to root BFS at")
    count = min(num_roots, candidates.size)
    return rng.choice(candidates, size=count, replace=False)


def _run_sources(graph: CSRGraph, config, default_count: int) -> np.ndarray:
    """The roots/sources one run traverses from.

    Explicit ``config.sources`` (validated against the graph) when the
    caller — typically the serving layer's batching coalescer — pinned
    them; otherwise the seeded multi-root protocol.
    """
    if config.sources is None:
        return _bfs_roots(graph, default_count, config.seed)
    sources = np.asarray(config.sources, dtype=np.int64)
    n = graph.num_vertices
    bad = sources[(sources < 0) | (sources >= n)]
    if bad.size:
        raise ValueError(
            f"sources {bad.tolist()} out of range for a graph with "
            f"{n} vertices"
        )
    return sources


def _merge_report(extra: Dict[str, float], report) -> None:
    """Accumulate a RecoveryReport into a run's ``extra`` metrics."""
    payload = report.to_dict()
    stats = payload.pop("fault_stats")
    for key in (
        "retransmissions",
        "messages_delayed",
        "messages_duplicated",
        "dep_losses",
    ):
        payload[key] = stats.get(key, 0)
    for key, value in payload.items():
        name = f"fault_{key}"
        extra[name] = extra.get(name, 0) + value


def _run_session_config(engine: BaseEngine, graph: CSRGraph, config):
    """Drive one :class:`repro.RunConfig` on a prepared engine.

    The measurement core shared by :meth:`repro.Session.run` and the
    legacy :func:`run_algorithm` wrapper: multi-root BFS averaging,
    the recoverable driver when faults/checkpointing are configured,
    per-algorithm extra metrics, and the ``run_end`` obs event.
    """
    extra: Dict[str, float] = {}
    faulted = config.faulted
    cost_model = config.cost_model

    def drive(program):
        if not faulted:
            return run_program(program, engine)
        result, report = run_recoverable(
            program,
            engine,
            plan=config.faults,
            checkpoint_interval=config.checkpointing.interval,
            retention=config.checkpointing.retention,
        )
        _merge_report(extra, report)
        return result

    algorithm = config.algorithm
    if algorithm in ("bfs", "sssp"):
        roots = _run_sources(
            graph, config, config.bfs_roots if algorithm == "bfs" else 1
        )
        if algorithm == "sssp":
            results = sssp_multi(engine, [int(r) for r in roots])
        elif faulted:
            results = [drive(BFSProgram(int(root))) for root in roots]
        else:
            # the multi-source batch entry: identical program sequence,
            # one engine serving the whole batch
            results = bfs_multi(engine, [int(r) for r in roots])
        reached = sum(result.reached for result in results)
        extra["avg_reached"] = reached / len(roots)
        if config.sources is not None:
            # explicit sources get per-source answers in the result so
            # a coalesced serving batch can answer every request
            for root, result in zip(roots, results):
                extra[f"reached[{int(root)}]"] = float(result.reached)
        time = engine.execution_time(cost_model) / len(roots)
        if engine.obs is not None:
            engine.obs.run_end(engine, cost_model)
        return _collect(engine, algorithm, time, extra, scale=1.0 / len(roots))
    if algorithm == "kcore":
        result = drive(KCoreProgram(config.kcore_k))
        extra["core_size"] = result.size
        extra["rounds"] = result.rounds
    elif algorithm == "mis":
        result = drive(MISProgram(seed=config.seed))
        extra["mis_size"] = result.size
        extra["rounds"] = result.rounds
    elif algorithm == "kmeans":
        result = kmeans(
            engine, rounds=config.kmeans_rounds, seed=config.seed
        )
        extra["assigned"] = result.assigned_count
    elif algorithm == "sampling":
        result = sample_neighbors(engine, seed=config.seed)
        extra["sampled"] = result.sampled_count

    time = engine.execution_time(cost_model)
    if engine.obs is not None:
        engine.obs.run_end(engine, cost_model)
    return _collect(engine, algorithm, time, extra)


# keyword arguments whose use marks a caller for the Session migration
_LEGACY_KWARGS = (
    "options",
    "cost_model",
    "fault_plan",
    "checkpoint_interval",
    "retention",
    "obs",
)


def run_algorithm(
    engine_kind: str,
    graph: CSRGraph,
    algorithm: str,
    num_machines: int = 16,
    seed: int = 0,
    *legacy,
    options: Optional[SympleOptions] = None,
    cost_model: Optional[CostModel] = None,
    bfs_roots: int = 3,
    kcore_k: int = 8,
    kmeans_rounds: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_interval: int = 0,
    retention: int = 2,
    obs=None,
    executor=None,
    workers: Optional[int] = None,
) -> RunResult:
    """Deprecated thin wrapper over :class:`repro.Session`.

    Kept so existing call sites run unchanged, but any use of the
    legacy keyword pile (``options``, ``cost_model``, ``fault_plan``,
    ``checkpoint_interval``, ``retention``, ``obs``) or positional
    arguments beyond ``seed`` raises a :class:`DeprecationWarning`
    pointing at :class:`repro.RunConfig`.  The simple positional core —
    engine kind, graph, algorithm, machines, seed — stays silent, as do
    the per-algorithm conveniences (``bfs_roots``, ``kcore_k``,
    ``kmeans_rounds``) and the executor selection.
    """
    from repro.api import Checkpointing, RunConfig, Session

    if algorithm not in ALGORITHMS:
        # the historical contract of this wrapper (RunConfig raises
        # EngineError for the same misuse)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    legacy_used = [
        name
        for name, value, default in (
            ("options", options, None),
            ("cost_model", cost_model, None),
            ("fault_plan", fault_plan, None),
            ("checkpoint_interval", checkpoint_interval, 0),
            ("retention", retention, 2),
            ("obs", obs, None),
        )
        if value != default
    ]
    if legacy or legacy_used:
        detail = (
            f"keyword arguments {legacy_used} are"
            if legacy_used
            else "positional arguments beyond seed are"
        )
        warnings.warn(
            f"run_algorithm's legacy {detail} deprecated; build a "
            "repro.RunConfig and run it through repro.Session",
            DeprecationWarning,
            stacklevel=2,
        )
    if legacy:
        # old order: options, cost_model, bfs_roots, kcore_k,
        # kmeans_rounds, fault_plan, checkpoint_interval, retention, obs
        names = (
            "options",
            "cost_model",
            "bfs_roots",
            "kcore_k",
            "kmeans_rounds",
            "fault_plan",
            "checkpoint_interval",
            "retention",
            "obs",
        )
        if len(legacy) > len(names):
            raise TypeError(
                f"run_algorithm takes at most {5 + len(names)} "
                "positional arguments"
            )
        values = dict(zip(names, legacy))
        options = values.get("options", options)
        cost_model = values.get("cost_model", cost_model)
        bfs_roots = values.get("bfs_roots", bfs_roots)
        kcore_k = values.get("kcore_k", kcore_k)
        kmeans_rounds = values.get("kmeans_rounds", kmeans_rounds)
        fault_plan = values.get("fault_plan", fault_plan)
        checkpoint_interval = values.get(
            "checkpoint_interval", checkpoint_interval
        )
        retention = values.get("retention", retention)
        obs = values.get("obs", obs)

    config = RunConfig(
        engine=engine_kind,
        algorithm=algorithm,
        machines=num_machines,
        seed=seed,
        options=options,
        faults=fault_plan,
        checkpointing=Checkpointing(
            interval=checkpoint_interval, retention=retention
        ),
        obs=obs,
        executor=executor if executor is not None else "serial",
        workers=workers,
        cost_model=cost_model,
        bfs_roots=bfs_roots,
        kcore_k=kcore_k,
        kmeans_rounds=kmeans_rounds,
    )
    with Session(graph, config) as session:
        return session.run()


def _collect(
    engine: BaseEngine,
    algorithm: str,
    simulated_time: float,
    extra: Dict[str, float],
    scale: float = 1.0,
) -> RunResult:
    c = engine.counters
    return RunResult(
        engine=engine.kind,
        algorithm=algorithm,
        num_machines=engine.num_machines,
        simulated_time=simulated_time,
        edges_traversed=int(c.edges_traversed * scale),
        update_bytes=int(c.update_bytes * scale),
        dep_bytes=int(c.dep_bytes * scale),
        sync_bytes=int(c.sync_bytes * scale),
        push_bytes=int(c.push_bytes * scale),
        total_bytes=int(c.total_bytes * scale),
        extra=extra,
    )


def speedup(baseline: RunResult, contender: RunResult) -> float:
    """How much faster the contender is (>1 means contender wins)."""
    if contender.simulated_time <= 0:
        raise ValueError("contender has no recorded time")
    return baseline.simulated_time / contender.simulated_time
