"""Paper-style table rendering.

Each benchmark prints rows in the same layout as the corresponding
paper table, plus a machine-readable dict for assertions and for
EXPERIMENTS.md.  Formatting only — no measurement logic here.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_ratio", "geomean"]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def format_ratio(value: float) -> str:
    """Two-decimal rendering used for speedup/ratio cells."""
    return f"{value:.2f}"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: List[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, "=" * len(title), line(headers), rule]
    out.extend(line(row) for row in str_rows)
    if note:
        out.append(rule)
        out.append(note)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.4g}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)
