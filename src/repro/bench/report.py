"""Result collection.

Benchmarks persist each paper table under ``benchmarks/results/``;
:func:`collect_results` stitches them into one report (the basis for
EXPERIMENTS.md's measured numbers), and :func:`results_manifest`
reports which experiments have been regenerated and which are missing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["EXPECTED_RESULTS", "collect_results", "results_manifest"]

# experiment id -> result file stem
EXPECTED_RESULTS = {
    "Table 2": "table2",
    "Table 3": "table3",
    "Table 4": "table4",
    "Table 5": "table5",
    "Table 6": "table6",
    "Table 7": "table7",
    "Figure 10": "fig10",
    "Figure 11": "fig11",
    "COST metric": "cost",
    "Threshold ablation": "ablation_threshold",
    "Partition ablation": "ablation_partition",
    "Time breakdown": "breakdown",
}


@dataclass(frozen=True)
class Manifest:
    """Which expected results are present on disk."""

    present: Dict[str, str]
    missing: List[str]

    @property
    def complete(self) -> bool:
        return not self.missing


def results_manifest(results_dir: str) -> Manifest:
    """Check the results directory against the expected experiments."""
    present: Dict[str, str] = {}
    missing: List[str] = []
    for name, stem in EXPECTED_RESULTS.items():
        path = os.path.join(results_dir, f"{stem}.txt")
        if os.path.exists(path):
            present[name] = path
        else:
            missing.append(name)
    return Manifest(present=present, missing=missing)


def collect_results(results_dir: str, output_path: str | None = None) -> str:
    """Concatenate all regenerated tables into one report string.

    Writes the report to ``output_path`` when given.  Missing
    experiments are listed at the top so a partial bench run is
    visible.
    """
    manifest = results_manifest(results_dir)
    sections = ["SympleGraph reproduction: collected measurements", "=" * 48]
    if manifest.missing:
        sections.append(
            "MISSING (re-run `pytest benchmarks/ --benchmark-only`): "
            + ", ".join(manifest.missing)
        )
    for name, path in manifest.present.items():
        with open(path, "r", encoding="utf-8") as fh:
            body = fh.read().rstrip()
        sections.append("")
        sections.append(f"## {name}")
        sections.append(body)
    report = "\n".join(sections) + "\n"
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as fh:
            fh.write(report)
    return report
