"""Benchmark dataset registry.

The paper evaluates on four real-world graphs and three Graph500 R-MAT
graphs (Table 1).  The real graphs (up to 43B edges) are substituted by
degree-matched synthetic stand-ins at ~1/1000 scale, preserving the
properties the evaluation hinges on:

* ``s27``/``s28``/``s29`` keep the defining Graph500 relation — the
  *same* edge count with edge factors in ratio 32:16:8, so the paper's
  "larger average degree -> fewer edges traversed" trend (Section 7.3)
  is directly observable;
* ``tw``/``fr`` (social graphs) are skewed R-MAT cores with a long
  chain attached, the structure the paper blames for the iterative
  K-core's disadvantage against linear peeling on social graphs
  (Section 7.2);
* ``cl`` (web crawl) has a weakly-skewed core and a dominant chain, so
  the adaptive BFS stays top-down in most iterations and SympleGraph
  shows no BFS gain — Table 3's observed behaviour;
* ``gsh`` is a dense skewed web-graph stand-in.

All graphs are symmetrized (the paper's pre-processing) and cached per
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.generators import attach_chain, rmat
from repro.graph.transform import to_undirected

__all__ = ["DatasetSpec", "DATASETS", "dataset", "dataset_names", "PAPER_GRAPHS"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named benchmark graph."""

    name: str
    paper_name: str
    description: str
    build: Callable[[], CSRGraph]


def _tw() -> CSRGraph:
    core = to_undirected(rmat(scale=11, edge_factor=24, seed=101))
    return attach_chain(core, chain_length=64)


def _fr() -> CSRGraph:
    core = to_undirected(rmat(scale=12, edge_factor=14, seed=102))
    return attach_chain(core, chain_length=96)


def _s27() -> CSRGraph:
    return to_undirected(rmat(scale=11, edge_factor=32, seed=127))


def _s28() -> CSRGraph:
    return to_undirected(rmat(scale=12, edge_factor=16, seed=128))


def _s29() -> CSRGraph:
    return to_undirected(rmat(scale=13, edge_factor=8, seed=129))


def _cl() -> CSRGraph:
    # Weak skew (flatter R-MAT probabilities) + dominant chain: the
    # bottom-up direction rarely pays off, as on Clueweb-12.
    core = to_undirected(
        rmat(scale=11, edge_factor=12, a=0.45, b=0.22, c=0.22, seed=103)
    )
    return attach_chain(core, chain_length=256)


def _gsh() -> CSRGraph:
    return to_undirected(rmat(scale=12, edge_factor=20, seed=104))


DATASETS: Dict[str, DatasetSpec] = {
    "tw": DatasetSpec(
        "tw", "Twitter-2010", "social graph stand-in (skewed + chain)", _tw
    ),
    "fr": DatasetSpec(
        "fr", "Friendster", "social graph stand-in (skewed + chain)", _fr
    ),
    "s27": DatasetSpec(
        "s27", "R-MAT-Scale27-E32", "Graph500 R-MAT, edge factor 32", _s27
    ),
    "s28": DatasetSpec(
        "s28", "R-MAT-Scale28-E16", "Graph500 R-MAT, edge factor 16", _s28
    ),
    "s29": DatasetSpec(
        "s29", "R-MAT-Scale29-E8", "Graph500 R-MAT, edge factor 8", _s29
    ),
    "cl": DatasetSpec(
        "cl", "Clueweb-12", "web crawl stand-in (weak skew + long chain)", _cl
    ),
    "gsh": DatasetSpec(
        "gsh", "Gsh-2015", "web graph stand-in (dense, skewed)", _gsh
    ),
}

# The paper's Table 1, for documentation/reporting purposes.
PAPER_GRAPHS: Dict[str, Tuple[str, str]] = {
    "tw": ("42M", "1.5B"),
    "fr": ("66M", "1.8B"),
    "s27": ("134M", "4.3B"),
    "s28": ("268M", "4.3B"),
    "s29": ("537M", "4.3B"),
    "cl": ("978M", "43B"),
    "gsh": ("988M", "34B"),
}


@lru_cache(maxsize=None)
def dataset(name: str) -> CSRGraph:
    """Build (or fetch from cache) a registry graph by short name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.build()


def dataset_names() -> Tuple[str, ...]:
    """Short names of every registered benchmark graph."""
    return tuple(DATASETS)
