"""Benchmark harness: datasets, runner, table formatting."""

from repro.bench.datasets import DATASETS, DatasetSpec, dataset, dataset_names
from repro.bench.harness import ALGORITHMS, RunResult, speedup
from repro.bench.sweeps import (
    SweepResult,
    kcore_sweep,
    machine_sweep,
    threshold_sweep,
)
from repro.bench.tables import format_table, geomean

__all__ = [
    "SweepResult",
    "machine_sweep",
    "kcore_sweep",
    "threshold_sweep",
    "DATASETS",
    "DatasetSpec",
    "dataset",
    "dataset_names",
    "ALGORITHMS",
    "RunResult",
    "speedup",
    "format_table",
    "geomean",
]
