"""Parameter sweeps.

Programmatic versions of the evaluation's sweep protocols: machine
counts (Figure 10 / Table 7), K values (Table 2), and the degree
threshold (Section 6).  Each returns structured results usable by the
CLI, notebooks, or the benches.  All sweeps run through one
:class:`repro.Session`, so the graph's partitions are built once per
machine count and reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import RunConfig, Session
from repro.bench.harness import RunResult
from repro.engine import SympleOptions
from repro.graph.csr import CSRGraph

__all__ = ["SweepResult", "machine_sweep", "kcore_sweep", "threshold_sweep"]


@dataclass
class SweepResult:
    """Results of a one-dimensional sweep."""

    parameter: str
    values: List[object] = field(default_factory=list)
    runs: Dict[object, RunResult] = field(default_factory=dict)

    def times(self) -> Dict[object, float]:
        return {v: self.runs[v].simulated_time for v in self.values}

    def best(self) -> object:
        """Parameter value with the lowest simulated time."""
        if not self.values:
            raise ValueError("empty sweep")
        return min(self.values, key=lambda v: self.runs[v].simulated_time)


def machine_sweep(
    engine_kind: str,
    graph: CSRGraph,
    algorithm: str,
    machine_counts: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 0,
    **kwargs,
) -> SweepResult:
    """Scalability sweep over the cluster size (Figure 10's x-axis)."""
    sweep = SweepResult(parameter="machines")
    base = RunConfig(
        engine=engine_kind, algorithm=algorithm, seed=seed, **kwargs
    )
    with Session(graph, base) as session:
        for p in machine_counts:
            sweep.values.append(p)
            sweep.runs[p] = session.run(machines=p)
    return sweep


def kcore_sweep(
    engine_kind: str,
    graph: CSRGraph,
    ks: Sequence[int] = (4, 8, 16, 32, 64),
    num_machines: int = 8,
    seed: int = 0,
) -> SweepResult:
    """Table 2's K sweep."""
    sweep = SweepResult(parameter="k")
    base = RunConfig(
        engine=engine_kind,
        algorithm="kcore",
        machines=num_machines,
        seed=seed,
    )
    with Session(graph, base) as session:
        for k in ks:
            sweep.values.append(k)
            sweep.runs[k] = session.run(kcore_k=k)
    return sweep


def threshold_sweep(
    graph: CSRGraph,
    algorithm: str,
    thresholds: Sequence[int] = (2, 4, 8, 16, 32, 64),
    num_machines: int = 16,
    seed: int = 0,
    base_options: Optional[SympleOptions] = None,
    **kwargs,
) -> SweepResult:
    """Section 6's differentiated-propagation threshold sweep."""
    base = base_options or SympleOptions()
    sweep = SweepResult(parameter="degree_threshold")
    config = RunConfig(
        engine="symple",
        algorithm=algorithm,
        machines=num_machines,
        seed=seed,
        **kwargs,
    )
    with Session(graph, config) as session:
        for threshold in thresholds:
            options = SympleOptions(
                degree_threshold=threshold,
                differentiated=True,
                double_buffering=base.double_buffering,
                schedule=base.schedule,
            )
            sweep.values.append(threshold)
            sweep.runs[threshold] = session.run(options=options)
    return sweep
