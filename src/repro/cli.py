"""Command-line interface.

Run experiments and inspect the framework without writing code::

    python -m repro datasets
    python -m repro run --engine symple --dataset s27 --algorithm mis
    python -m repro run --algorithm bfs --machines 4 --trace run.jsonl
    python -m repro compare --dataset s28 --algorithm kcore --machines 16
    python -m repro analyze bfs
    python -m repro lint src/repro/algorithms --format sarif
    python -m repro verify src/repro/algorithms --strict
    python -m repro metrics --algorithm bfs --format prom
    python -m repro trace run.jsonl --breakdown

``run`` executes one experiment and prints the metrics the paper's
tables report (``--trace``/``--metrics`` additionally stream a JSONL
event trace / a metrics export); ``compare`` runs Gemini and
SympleGraph side by side; ``analyze`` prints the analyzer report for
one of the built-in UDFs; ``lint`` runs the rule engine over
signal/slot UDFs and exits 1 on warnings, 2 on errors (notes are
informational); ``verify`` additionally certifies every kernel
classification against its shape contract and flags executor
determinism hazards, with the same exit-code semantics; ``metrics``
runs one experiment and exports its metric
registry as JSON or Prometheus text; ``trace`` validates a recorded
trace against the event schema (exit 1 on violations) and summarizes
it, optionally reconstructing the cost breakdown and the per-(machine,
step) attribution from the trace alone.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import explain_signal
from repro.api import Checkpointing, RunConfig, Session
from repro.bench import ALGORITHMS, DATASETS, dataset, speedup
from repro.bench.tables import format_table
from repro.engine import SympleOptions

_SIGNALS = {}


def _load_signals():
    if not _SIGNALS:
        from repro.algorithms import SIGNAL_UDFS

        _SIGNALS.update(
            {name: fns[0] for name, fns in SIGNAL_UDFS.items()}
        )
    return _SIGNALS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SympleGraph reproduction: simulated distributed "
        "graph processing with precise loop-carried dependency.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the benchmark dataset registry")

    run = sub.add_parser("run", help="run one experiment")
    _add_run_args(run)
    run.add_argument(
        "--engine",
        default="symple",
        choices=("gemini", "symple", "dgalois", "single"),
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file (bfs/kcore/mis)",
    )
    run.add_argument(
        "--checkpoint-interval",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N supersteps (0 disables, the default)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream a structured JSONL event trace to PATH",
    )
    run.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the run's metric registry to PATH",
    )
    run.add_argument(
        "--metrics-format",
        default="json",
        choices=("json", "prom"),
        help="metrics export format (default: json)",
    )
    run.add_argument(
        "--digest",
        action="store_true",
        help="print the result's canonical sha256 digest (equal across "
        "executor backends; the CI equivalence gate diffs it)",
    )

    metrics = sub.add_parser(
        "metrics", help="run one experiment and export its metrics"
    )
    _add_run_args(metrics)
    metrics.add_argument(
        "--engine",
        default="symple",
        choices=("gemini", "symple", "dgalois", "single"),
    )
    metrics.add_argument(
        "--format",
        default="json",
        choices=("json", "prom"),
        help="export format: JSON or Prometheus text (default: json)",
    )
    metrics.add_argument(
        "--output", default=None, help="write the export here instead of stdout"
    )

    trace = sub.add_parser(
        "trace", help="validate and summarize a recorded JSONL trace"
    )
    trace.add_argument("file", help="trace file written by --trace")
    trace.add_argument(
        "--breakdown",
        action="store_true",
        help="reconstruct the cost-model breakdown from the trace",
    )
    trace.add_argument(
        "--attribution",
        action="store_true",
        help="print the per-(machine, step) compute/dep-wait/overlap table",
    )

    compare = sub.add_parser(
        "compare", help="run Gemini and SympleGraph side by side"
    )
    _add_run_args(compare)

    analyze = sub.add_parser(
        "analyze", help="print the analyzer report for a built-in UDF"
    )
    analyze.add_argument("signal", choices=sorted(_load_signals()))

    lint = sub.add_parser(
        "lint", help="lint signal/slot UDFs in modules or files"
    )
    lint.add_argument(
        "targets",
        nargs="+",
        help="a .py file, a directory, a dotted module name, or a "
        "built-in signal name (e.g. kcore)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=("text", "json", "sarif"),
        help="output format (default: text)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODE",
        help="disable a rule code (repeatable)",
    )
    lint.add_argument(
        "--output", default=None, help="write the report here instead of stdout"
    )

    verify = sub.add_parser(
        "verify",
        help="certify kernel classifications and flag determinism hazards",
    )
    verify.add_argument(
        "targets",
        nargs="+",
        help="a .py file, a directory, a dotted module name, or a "
        "built-in signal name (e.g. kcore)",
    )
    verify.add_argument(
        "--strict",
        action="store_true",
        help="promote strict severities (non-commutative-slot becomes "
        "a warning) before computing the exit code",
    )
    verify.add_argument(
        "--format",
        default="text",
        choices=("text", "json", "sarif"),
        help="output format (default: text)",
    )
    verify.add_argument(
        "--output", default=None, help="write the report here instead of stdout"
    )

    sweep = sub.add_parser(
        "sweep", help="sweep machine counts for one engine/algorithm"
    )
    sweep.add_argument("--engine", default="symple",
                       choices=("gemini", "symple", "dgalois"))
    sweep.add_argument("--dataset", default="s27", choices=sorted(DATASETS))
    sweep.add_argument("--algorithm", default="mis", choices=ALGORITHMS)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--machines", type=int, nargs="+", default=[1, 2, 4, 8, 16]
    )

    schedule = sub.add_parser(
        "schedule", help="print the circulant schedule matrix (Figure 7)"
    )
    schedule.add_argument("--machines", type=int, default=4)

    serve = sub.add_parser(
        "serve", help="start the long-lived graph query service"
    )
    serve.add_argument(
        "--graph",
        action="append",
        default=None,
        metavar="NAME=SPEC",
        help="serve a graph under NAME (repeatable); SPEC is a dataset "
        "short name, rmat:scale=...,edge_factor=...,seed=..., or "
        "file:/path.  Bare SPEC uses itself as the name.  "
        "Default: the s27 benchmark dataset.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8571)
    serve.add_argument(
        "--max-depth", type=int, default=64,
        help="admission control: queued requests beyond this get "
        "429 + Retry-After (default: 64)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="most requests one engine run may coalesce (default: 64)",
    )
    serve.add_argument(
        "--no-batching", action="store_true",
        help="serve request-at-a-time (disables the coalescer; the "
        "bench's unbatched baseline)",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline; late queries get 504 (default: 30)",
    )

    report = sub.add_parser(
        "report", help="collect regenerated benchmark tables into one report"
    )
    report.add_argument(
        "--results-dir",
        default=None,
        help="directory of bench results (default: benchmarks/results)",
    )
    report.add_argument("--output", default=None, help="write report here")

    return parser


def _add_run_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--dataset", default="s27", choices=sorted(DATASETS))
    cmd.add_argument("--algorithm", default="bfs", choices=ALGORITHMS)
    cmd.add_argument("--machines", type=int, default=16)
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument("--kcore-k", type=int, default=8)
    cmd.add_argument("--bfs-roots", type=int, default=3)
    cmd.add_argument(
        "--mode", default="sync", choices=("sync", "async"),
        help="execution mode: BSP supersteps (sync) or the "
        "priority-bucket scheduler (async; bfs/cc/pagerank/sssp on "
        "the symple/gemini/single engines)",
    )
    cmd.add_argument(
        "--bucket-width", type=float, default=None, metavar="W",
        help="async bucket width (priority range per bucket; "
        "default: a per-algorithm heuristic)",
    )
    cmd.add_argument(
        "--no-double-buffering", action="store_true",
        help="disable the double-buffering optimization",
    )
    cmd.add_argument(
        "--no-differentiated", action="store_true",
        help="disable differentiated dependency propagation",
    )
    cmd.add_argument(
        "--schedule", default="circulant", choices=("circulant", "naive")
    )
    cmd.add_argument(
        "--no-kernels", action="store_true",
        help="force the per-vertex UDF interpreter (disable the "
        "batched NumPy kernel fast path; results are identical)",
    )
    cmd.add_argument(
        "--executor", default="serial",
        choices=("serial", "thread", "process"),
        help="backend the per-machine work units run on (results are "
        "bit-identical across backends; default: serial)",
    )
    cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the thread/process executor "
        "(default: cpu count)",
    )


def _options(args) -> SympleOptions:
    return SympleOptions(
        double_buffering=not args.no_double_buffering,
        differentiated=not args.no_differentiated,
        schedule=args.schedule,
        use_kernels=not args.no_kernels,
    )


def _run_config(engine: str, args, obs=None) -> RunConfig:
    fault_plan = None
    if getattr(args, "faults", None):
        from repro.fault import FaultPlan

        fault_plan = FaultPlan.load(args.faults)
    return RunConfig(
        engine=engine,
        algorithm=args.algorithm,
        machines=args.machines,
        seed=args.seed,
        options=_options(args) if engine == "symple" else None,
        faults=fault_plan,
        checkpointing=Checkpointing(
            interval=getattr(args, "checkpoint_interval", 0)
        ),
        obs=obs,
        executor=getattr(args, "executor", "serial"),
        workers=getattr(args, "workers", None),
        bfs_roots=args.bfs_roots,
        kcore_k=args.kcore_k,
        mode=getattr(args, "mode", "sync"),
        async_bucket_width=getattr(args, "bucket_width", None),
    )


def _execute(engine: str, args, obs=None):
    with Session(dataset(args.dataset)) as session:
        return session.run(_run_config(engine, args, obs=obs))


def _export_metrics(registry, fmt: str, output: Optional[str]) -> None:
    text = (
        registry.export_prometheus()
        if fmt == "prom"
        else registry.export_json_str()
    )
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"metrics written to {output}")
    else:
        print(text)


def _trace(args) -> int:
    """Run ``repro trace``: validate, summarize, optionally reconstruct."""
    from repro.obs import (
        read_trace,
        rebuild_counters,
        reconstruct_breakdown,
        summarize_events,
        validate_events,
    )
    from repro.runtime.cost_model import (
        DGALOIS_COST,
        GEMINI_COST,
        SINGLE_THREAD_COST,
        SYMPLE_COST,
    )

    try:
        events = read_trace(args.file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    problems = validate_events(events)
    if problems:
        for problem in problems:
            print(f"schema violation: {problem}", file=sys.stderr)
        return 1
    counts = summarize_events(events)
    total = sum(counts.values())
    by_kind = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"{args.file}: {total} events ({by_kind})")

    if not (args.breakdown or args.attribution):
        return 0
    run_end = next(
        (e for e in events if e.get("kind") == "run_end"), None
    )
    if run_end is None:
        print(
            "trace has no run_end event; cannot reconstruct costs",
            file=sys.stderr,
        )
        return 1
    presets = {
        "gemini": GEMINI_COST,
        "symple": SYMPLE_COST,
        "dgalois": DGALOIS_COST,
        "single": SINGLE_THREAD_COST,
    }
    model = presets.get(run_end["engine"], SYMPLE_COST)
    if args.breakdown:
        breakdown = reconstruct_breakdown(events, model)
        print(f"cost breakdown ({run_end['engine']} preset):")
        for component, value in breakdown.items():
            print(f"  {component:>16}: {value:,.1f}")
    if args.attribution:
        from repro.obs import attribution_rows

        rows = attribution_rows(
            rebuild_counters(events),
            model,
            double_buffering=bool(run_end.get("double_buffering", True)),
        )
        if not rows:
            print("no circulant pull iterations to attribute")
            return 0
        table = [
            [
                r["iteration"], r["step"], r["machine"],
                f"{r['compute']:,.1f}", f"{r['dep_wait']:,.1f}",
                f"{r['hidden_wait']:,.1f}", f"{r['finish']:,.1f}",
            ]
            for r in rows
        ]
        print(
            format_table(
                "per-(machine, step) attribution",
                ["iter", "step", "machine", "compute", "dep.wait",
                 "hidden.wait", "finish"],
                table,
            )
        )
    return 0


def _metric_rows(results) -> List[List[object]]:
    rows = []
    for r in results:
        rows.append(
            [
                r.engine,
                f"{r.simulated_time:,.0f}",
                f"{r.edges_traversed:,}",
                f"{r.update_bytes:,}",
                f"{r.dep_bytes:,}",
                f"{r.total_bytes:,}",
            ]
        )
    return rows


def _lint(args) -> int:
    """Run ``repro lint``: discover, lint, render, exit-code."""
    from repro.analysis.linter import run_lint
    from repro.analysis.report import render_json, render_sarif, render_text
    from repro.analysis.rules import LintConfig

    config = LintConfig(disabled=frozenset(args.ignore))
    run = run_lint(args.targets, config=config, named_signals=_load_signals())
    if args.format == "json":
        text = render_json(run.messages)
    elif args.format == "sarif":
        text = render_sarif(run.messages)
    else:
        body = render_text(run.messages)
        text = (body + "\n" if body else "") + run.summary()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return run.exit_code


def _verify(args) -> int:
    """Run ``repro verify``: discover, certify, render, exit-code.

    Exit semantics match ``repro lint``: 2 on errors (an unsound
    kernel classification or an analyzer rejection), 1 on warnings
    (determinism hazards; plus strict-promoted rules under
    ``--strict``), 0 otherwise.
    """
    from repro.analysis.report import render_json, render_sarif, render_text
    from repro.analysis.verify import verify_targets

    report = verify_targets(
        args.targets, strict=args.strict, named_signals=_load_signals()
    )
    if args.format == "json":
        text = render_json(report.messages)
    elif args.format == "sarif":
        text = render_sarif(report.messages)
    else:
        body = render_text(report.messages)
        text = (body + "\n" if body else "") + report.summary()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return report.exit_code


def _serve(args) -> int:
    """Run ``repro serve``: load graphs, start the daemon, drain on TERM."""
    from repro.serve import GraphRegistry, ServeApp, serve_forever

    registry = GraphRegistry()
    for item in args.graph or ["s27"]:
        name, eq, spec = item.partition("=")
        if not eq:
            name, spec = item, item
        entry = registry.load(name, spec)
        facts = entry.describe()
        print(
            f"repro serve: loaded {name!r} <- {spec} "
            f"({facts['num_vertices']:,} vertices, "
            f"{facts['num_edges']:,} edges)",
            flush=True,
        )
    app = ServeApp(
        registry,
        max_depth=args.max_depth,
        batching=not args.no_batching,
        max_batch=args.max_batch,
        request_timeout=args.timeout,
    )
    return serve_forever(app, host=args.host, port=args.port)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        rows = []
        for name, spec in DATASETS.items():
            g = dataset(name)
            rows.append(
                [name, spec.paper_name, g.num_vertices, g.num_edges,
                 spec.description]
            )
        print(
            format_table(
                "Benchmark datasets (paper graph -> scaled stand-in)",
                ["name", "paper graph", "|V|", "|E|", "notes"],
                rows,
            )
        )
        return 0

    if args.command == "analyze":
        print(explain_signal(_load_signals()[args.signal]))
        return 0

    if args.command == "lint":
        return _lint(args)

    if args.command == "verify":
        return _verify(args)

    if args.command == "serve":
        return _serve(args)

    if args.command == "schedule":
        from repro.runtime.trace import render_schedule

        print(render_schedule(args.machines))
        return 0

    if args.command == "report":
        import os

        from repro.bench.report import collect_results

        results_dir = args.results_dir
        if results_dir is None:
            results_dir = os.path.join(os.getcwd(), "benchmarks", "results")
        print(collect_results(results_dir, output_path=args.output))
        return 0

    if args.command == "sweep":
        from repro.bench.sweeps import machine_sweep

        sweep = machine_sweep(
            args.engine,
            dataset(args.dataset),
            args.algorithm,
            machine_counts=args.machines,
            seed=args.seed,
        )
        rows = [
            [p, f"{sweep.runs[p].simulated_time:,.0f}",
             f"{sweep.runs[p].total_bytes:,}"]
            for p in sweep.values
        ]
        print(
            format_table(
                f"{args.engine} {args.algorithm}/{args.dataset} "
                "machine sweep",
                ["machines", "sim.time", "total.bytes"],
                rows,
                note=f"best machine count: {sweep.best()}",
            )
        )
        return 0

    if args.command == "metrics":
        from repro.obs import ObsHub

        hub = ObsHub()
        _execute(args.engine, args, obs=hub)
        _export_metrics(hub.metrics, args.format, args.output)
        return 0

    if args.command == "trace":
        return _trace(args)

    if args.command == "run":
        hub = None
        if args.trace or args.metrics:
            from repro.obs import ObsHub, Tracer

            tracer = Tracer(path=args.trace) if args.trace else None
            hub = ObsHub(tracer=tracer)
        result = _execute(args.engine, args, obs=hub)
        print(
            format_table(
                f"{args.algorithm} on {args.dataset} "
                f"({args.machines} machines)",
                ["engine", "sim.time", "edges", "upd.bytes", "dep.bytes",
                 "total.bytes"],
                _metric_rows([result]),
            )
        )
        for key, value in sorted(result.extra.items()):
            print(f"{key}: {value}")
        if args.digest:
            print(f"digest: {result.digest()}")
        if hub is not None:
            hub.close()
            if args.trace:
                print(f"trace written to {args.trace}")
            if args.metrics:
                _export_metrics(
                    hub.metrics, args.metrics_format, args.metrics
                )
        return 0

    if args.command == "compare":
        with Session(dataset(args.dataset)) as session:
            gem = session.run(_run_config("gemini", args))
            sym = session.run(_run_config("symple", args))
        print(
            format_table(
                f"{args.algorithm} on {args.dataset} "
                f"({args.machines} machines)",
                ["engine", "sim.time", "edges", "upd.bytes", "dep.bytes",
                 "total.bytes"],
                _metric_rows([gem, sym]),
                note=f"SympleGraph speedup: {speedup(gem, sym):.2f}x",
            )
        )
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
