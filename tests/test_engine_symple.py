"""SympleGraph engine: circulant scheduling, dependency propagation,
skip semantics, option handling."""

import numpy as np
import pytest

from repro.engine import (
    GeminiEngine,
    SympleGraphEngine,
    SympleOptions,
    circulant_machine_order,
    circulant_partition,
)
from repro.errors import EngineError
from repro.graph import CSRGraph, rmat, star_graph, to_undirected
from repro.partition import OutgoingEdgeCut


def break_signal(v, nbrs, s, emit):
    for u in nbrs:
        if s.flag[u]:
            emit(u)
            break


def first_wins_slot(v, value, s):
    if s.result[v] >= 0:
        return False
    s.result[v] = value
    return True


class TestCirculantSchedule:
    @pytest.mark.parametrize("p", [2, 3, 4, 7, 16])
    def test_each_step_is_a_permutation(self, p):
        """In every step, the p (machine, partition) pairs are disjoint."""
        for s in range(p):
            partitions = [circulant_partition(m, s, p) for m in range(p)]
            assert sorted(partitions) == list(range(p))

    @pytest.mark.parametrize("p", [2, 3, 4, 7, 16])
    def test_each_pair_processed_exactly_once(self, p):
        seen = set()
        for s in range(p):
            for m in range(p):
                seen.add((m, circulant_partition(m, s, p)))
        assert len(seen) == p * p

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_machine_order_ends_at_master(self, p):
        for j in range(p):
            order = circulant_machine_order(j, p)
            assert order[-1] == j
            assert sorted(order) == list(range(p))

    @pytest.mark.parametrize("p", [3, 5])
    def test_dependency_flows_to_left_neighbor(self, p):
        """The machine processing partition j at step s+1 is the left
        neighbor of the one processing it at step s."""
        for j in range(p):
            order = circulant_machine_order(j, p)
            for s in range(p - 1):
                assert order[s + 1] == (order[s] - 1) % p


class TestDependencySemantics:
    def make_engine(self, graph, p=4, **opts):
        options = SympleOptions(degree_threshold=0, **opts)
        return SympleGraphEngine(
            OutgoingEdgeCut().partition(graph, p), options=options
        )

    def test_skip_eliminates_edges(self):
        """Once one machine breaks, later machines scan nothing."""
        g = star_graph(40)  # hub 0 pulls from all leaves
        engine = self.make_engine(g, p=4)
        s = engine.new_state()
        s.add_array("flag", bool, True)  # first neighbor breaks
        s.add_array("result", np.int64, -1)
        active = np.zeros(g.num_vertices, dtype=bool)
        active[0] = True
        result = engine.pull(break_signal, first_wins_slot, s, active)
        # precise semantics: exactly 1 edge examined for the hub
        assert result.edges_traversed == 1

    def test_gemini_scans_every_machine(self):
        g = star_graph(40)
        engine = GeminiEngine(OutgoingEdgeCut().partition(g, 4))
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = np.zeros(g.num_vertices, dtype=bool)
        active[0] = True
        result = engine.pull(break_signal, first_wins_slot, s, active)
        # every machine holding in-edges of the hub scans its first
        # neighbor independently
        holders = sum(
            1
            for m in range(4)
            if engine.partition.local_in(m).degree(0) > 0
        )
        assert result.edges_traversed == holders

    def test_dep_bytes_emitted_between_steps(self, small_graph):
        engine = self.make_engine(small_graph, p=4)
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = small_graph.in_degrees() > 0
        engine.pull(break_signal, first_wins_slot, s, active)
        assert engine.counters.dep_bytes > 0
        # dependency only flows to the left neighbor
        dep = engine.network.traffic["dep"]
        p = engine.num_machines
        for src in range(p):
            for dst in range(p):
                if dep[src, dst] > 0:
                    assert dst == (src - 1) % p

    def test_no_dependency_falls_back_to_parallel(self, small_graph):
        """A UDF without break/carried state runs Gemini-style."""

        def scan_all(v, nbrs, s, emit):
            for u in nbrs:
                if s.flag[u]:
                    emit(u)  # no break, no carried state

        engine = self.make_engine(small_graph, p=4)
        s = engine.new_state()
        s.add_array("flag", bool, True)
        active = small_graph.in_degrees() > 0
        engine.pull(scan_all, lambda v, x, st: False, s, active)
        assert engine.counters.dep_bytes == 0
        assert len(engine.counters.iterations[0].steps) == 1

    def test_single_machine_no_dep_traffic(self, small_graph):
        engine = self.make_engine(small_graph, p=1)
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = small_graph.in_degrees() > 0
        engine.pull(break_signal, first_wins_slot, s, active)
        assert engine.counters.dep_bytes == 0

    def test_circulant_records_p_steps(self, small_graph):
        engine = self.make_engine(small_graph, p=4)
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = small_graph.in_degrees() > 0
        engine.pull(break_signal, first_wins_slot, s, active)
        assert len(engine.counters.iterations[0].steps) == 4


class TestDifferentiatedPropagation:
    def test_low_degree_vertices_skip_dependency(self, small_graph):
        """With a huge threshold nothing is 'high': no dep traffic."""
        options = SympleOptions(degree_threshold=10**9)
        engine = SympleGraphEngine(
            OutgoingEdgeCut().partition(small_graph, 4), options=options
        )
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = small_graph.in_degrees() > 0
        engine.pull(break_signal, first_wins_slot, s, active)
        assert engine.counters.dep_bytes == 0
        # all work recorded in the low-degree class
        step = engine.counters.iterations[0].steps[0]
        assert step.high_edges.sum() == 0
        assert step.low_edges.sum() > 0

    def test_differentiation_off_treats_all_as_high(self, small_graph):
        options = SympleOptions(differentiated=False)
        engine = SympleGraphEngine(
            OutgoingEdgeCut().partition(small_graph, 4), options=options
        )
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = small_graph.in_degrees() > 0
        engine.pull(break_signal, first_wins_slot, s, active)
        low = sum(
            st.low_edges.sum()
            for st in engine.counters.iterations[0].steps
        )
        assert low == 0

    def test_allow_differentiated_false_overrides(self, small_graph):
        options = SympleOptions(degree_threshold=10**9)
        engine = SympleGraphEngine(
            OutgoingEdgeCut().partition(small_graph, 4), options=options
        )
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)
        active = small_graph.in_degrees() > 0
        engine.pull(
            break_signal,
            first_wins_slot,
            s,
            active,
            allow_differentiated=False,
        )
        assert engine.counters.dep_bytes > 0


class TestOptions:
    def test_invalid_schedule_rejected(self):
        with pytest.raises(EngineError):
            SympleOptions(schedule="quantum")

    def test_negative_threshold_rejected(self):
        with pytest.raises(EngineError):
            SympleOptions(degree_threshold=-1)

    def test_execution_time_uses_schedule(self, small_graph):
        for schedule in ("circulant", "naive"):
            options = SympleOptions(schedule=schedule, degree_threshold=0)
            engine = SympleGraphEngine(
                OutgoingEdgeCut().partition(small_graph, 4), options=options
            )
            s = engine.new_state()
            s.add_array("flag", bool, True)
            s.add_array("result", np.int64, -1)
            active = small_graph.in_degrees() > 0
            engine.pull(break_signal, first_wins_slot, s, active)
            assert engine.execution_time() > 0
