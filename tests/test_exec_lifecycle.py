"""Shared-memory and worker-pool lifecycle of the process executor.

The parent process is the sole owner of every shared-memory segment it
creates (topology publications, adopted state arrays, delta-arena
buffers); these tests pin the ownership contract down where it is
observable — the ``/dev/shm`` listing: no segment may outlive
``Session.close()``, garbage collection of an unclosed session, or a
worker crash mid-map.  The pool itself must survive crashes by
respawning: one crash is retried transparently, a task that keeps
killing its workers raises, and the executor stays usable afterwards.
"""

import gc
import os
import weakref
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import RunConfig, Session
from repro.engine.state import StateStore
from repro.errors import EngineError
from repro.exec.process import ProcessPoolExecutor
from repro.graph import erdos_renyi, to_undirected
from repro.partition import OutgoingEdgeCut

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="needs a POSIX /dev/shm"
)


def shm_entries() -> set:
    return set(os.listdir(SHM_DIR))


@pytest.fixture()
def graph():
    return to_undirected(erdos_renyi(64, 300, seed=7))


@pytest.fixture()
def bound_executor(graph):
    """A process executor bound to a real 4-machine partition."""
    partition = OutgoingEdgeCut().partition(graph, 4)
    ex = ProcessPoolExecutor(workers=2)
    ex.bind(SimpleNamespace(partition=partition))
    return ex


def make_state(n: int) -> StateStore:
    state = StateStore(n)
    state.add_array("value", np.int64, fill=1)
    state.add_scalar("k", 3)
    return state


# -- task functions: must be module-level so they pickle by reference --


def _sum_task(ctx, shared, item):
    m = item["m"]
    local = ctx.local_in(m)
    return int(local.indptr[-1]) + int(ctx.state.value.sum()) + shared["bias"]


def _crash_task(ctx, shared, item):
    os._exit(13)


def _crash_once_task(ctx, shared, item):
    flag = shared["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("crashed")
        os._exit(13)
    return item["m"]


class TestSegmentLifecycle:
    def test_no_orphans_after_session_close(self, graph):
        before = shm_entries()
        config = RunConfig(machines=4, executor="process", workers=2,
                           bfs_roots=1)
        with Session(graph, config) as session:
            session.run(algorithm="bfs")
            session.run(algorithm="kcore")
        gc.collect()
        assert shm_entries() - before == set()

    def test_no_orphans_after_gc_finalize(self, graph):
        """An unclosed session's finalizer must release every segment."""
        before = shm_entries()
        config = RunConfig(machines=4, executor="process", workers=2,
                           bfs_roots=1)
        session = Session(graph, config)
        session.run(algorithm="bfs")
        ref = weakref.ref(session)
        del session
        gc.collect()
        assert ref() is None
        gc.collect()
        assert shm_entries() - before == set()

    def test_no_orphans_after_worker_crash(self, bound_executor, graph):
        before = shm_entries()
        ex = bound_executor
        state = make_state(graph.num_vertices)
        items = [{"m": m} for m in range(4)]
        with pytest.raises(EngineError):
            ex.map_machines(_crash_task, {}, items, state)
        ex.close()
        del state
        gc.collect()
        assert shm_entries() - before == set()

    def test_state_adoption_zero_republish(self, bound_executor, graph):
        """Warm maps publish no state bytes: mutations flow via adoption."""
        ex = bound_executor
        state = make_state(graph.num_vertices)
        items = [{"m": m} for m in range(4)]
        first = ex.map_machines(_sum_task, {"bias": 0}, items, state)
        adopted = ex.stats()["state_publish_bytes"]
        # parent-side mutation through the store, no re-adoption
        state.value[:] = 2
        second = ex.map_machines(_sum_task, {"bias": 0}, items, state)
        assert ex.stats()["state_publish_bytes"] == adopted
        n = graph.num_vertices
        assert [b - a for a, b in zip(first, second)] == [n] * 4
        ex.close()


class TestPoolRestart:
    def test_crash_raises_and_pool_recovers(self, bound_executor, graph):
        ex = bound_executor
        state = make_state(graph.num_vertices)
        items = [{"m": m} for m in range(4)]
        baseline = ex.map_machines(_sum_task, {"bias": 5}, items, state)
        spawns = ex.spawns
        with pytest.raises(EngineError, match="worker pool"):
            ex.map_machines(_crash_task, {}, items, state)
        assert ex.spawns > spawns  # at least one respawn happened
        # the executor must stay usable after the failed map
        again = ex.map_machines(_sum_task, {"bias": 5}, items, state)
        assert again == baseline
        ex.close()

    def test_single_crash_retried_transparently(self, bound_executor,
                                                graph, tmp_path):
        """One pool loss is absorbed: respawn, retry, same results."""
        ex = bound_executor
        state = make_state(graph.num_vertices)
        items = [{"m": m} for m in range(4)]
        flag = str(tmp_path / "crashed-once")
        out = ex.map_machines(_crash_once_task, {"flag": flag}, items, state)
        assert out == [0, 1, 2, 3]
        assert os.path.exists(flag)
        assert ex.spawns == 2  # initial spawn + one crash respawn
        ex.close()

    def test_mutate_bumps_generation_not_pool(self, graph):
        """Session.mutate must republish topology on the next run —
        never serve the pre-mutation shared-memory CSR — while the
        worker pool itself survives."""
        from repro.graph.dynamic import MutationBatch

        config = RunConfig(machines=4, executor="process", workers=2,
                           bfs_roots=1)
        with Session(graph, config) as session:
            r0 = session.run(algorithm="bfs")
            ex = session._executors[("process", 2)]
            assert (ex.spawns, ex._generation) == (1, 1)
            session.mutate(MutationBatch.inserts(
                np.array([[0, 63], [63, 0]], dtype=np.int64)
            ))
            r1 = session.run(algorithm="bfs")
            # rebind republished the mutated topology, no respawn
            assert (ex.spawns, ex._generation) == (1, 2)
            assert r1.digest() != r0.digest() or \
                graph.has_edge(0, 63)  # digest moves unless edge existed
            # a second run on the same version reuses the publication
            session.run(algorithm="bfs")
            assert (ex.spawns, ex._generation) == (1, 2)

    def test_mutate_never_serves_stale_topology(self, graph):
        """The engine result after mutate must reflect the new edges:
        computed against a fresh session on the equivalent static
        graph under the same (frozen) master placement, bit for bit."""
        from repro.graph.dynamic import MutationBatch
        from repro.partition import partition_with_masters

        config = RunConfig(machines=4, executor="process", workers=2,
                           bfs_roots=1, seed=3)
        with Session(graph, config) as session:
            stale = session.run(algorithm="bfs")
            session.mutate(MutationBatch(
                insert_src=np.array([0, 9], dtype=np.int64),
                insert_dst=np.array([9, 0], dtype=np.int64),
                insert_weights=None,
                delete_src=np.empty(0, dtype=np.int64),
                delete_dst=np.empty(0, dtype=np.int64),
                add_vertices=0,
            ))
            mutated = session.run(algorithm="bfs")
            snapshot, version = session._graph_snapshot()
            assert version == 1
            refreshed = session._partitions[("edgecut", 4, 1)]
        assert mutated.digest() != stale.digest()
        with Session(snapshot, config) as fresh:
            # same master placement as the refreshed partition, built
            # from scratch on the post-mutation static graph
            fresh._partitions[("edgecut", 4, 0)] = partition_with_masters(
                snapshot, refreshed.master_of, "outgoing-edge-cut", 4
            )
            expected = fresh.run(algorithm="bfs")
        assert mutated.digest() == expected.digest()

    def test_no_orphans_after_mutate_and_close(self, graph):
        """Mutation-triggered republication must not leak segments."""
        from repro.graph.dynamic import MutationBatch

        before = shm_entries()
        config = RunConfig(machines=4, executor="process", workers=2,
                           bfs_roots=1)
        with Session(graph, config) as session:
            session.run(algorithm="bfs")
            session.mutate(MutationBatch.inserts(
                np.array([[1, 40], [40, 1]], dtype=np.int64)
            ))
            session.run(algorithm="bfs")
        gc.collect()
        assert shm_entries() - before == set()

    def test_pool_survives_rebind(self, bound_executor, graph):
        """A new graph remaps topology without respawning workers."""
        ex = bound_executor
        state = make_state(graph.num_vertices)
        items = [{"m": m} for m in range(4)]
        ex.map_machines(_sum_task, {"bias": 0}, items, state)
        assert (ex.spawns, ex._generation) == (1, 1)
        other = to_undirected(erdos_renyi(80, 400, seed=9))
        partition = OutgoingEdgeCut().partition(other, 4)
        ex.bind(SimpleNamespace(partition=partition))
        state2 = make_state(other.num_vertices)
        out = ex.map_machines(_sum_task, {"bias": 0}, items, state2)
        assert len(out) == 4
        assert (ex.spawns, ex._generation) == (1, 2)
        ex.close()
