"""The Session/RunConfig entry point and its post-redesign surface.

Covers: RunConfig construction, validation, replace(), and
to_dict/from_dict round-trips (including the async-mode knobs);
Session caching, overrides, lifecycle; and the hard removal of the
legacy surfaces (``run_algorithm``, extended-positional
``make_engine``) retired by the registry redesign.
"""

import pytest

from repro.api import Checkpointing, RunConfig, Session
from repro.engine import SympleOptions, make_engine
from repro.errors import EngineError, UnsupportedAlgorithmError
from repro.exec import SerialExecutor, ThreadPoolExecutor
from repro.fault import FaultPlan
from repro.graph import erdos_renyi, to_undirected
from repro.partition import OutgoingEdgeCut


@pytest.fixture(scope="module")
def graph():
    return to_undirected(erdos_renyi(48, 220, seed=4))


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.engine == "symple"
        assert config.algorithm == "bfs"
        assert config.machines == 16
        assert config.executor == "serial"
        assert config.checkpointing == Checkpointing()
        assert not config.faulted

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunConfig().machines = 8

    def test_replace_returns_new_validated_config(self):
        base = RunConfig(machines=4)
        other = base.replace(machines=8, algorithm="kcore")
        assert base.machines == 4
        assert (other.machines, other.algorithm) == (8, "kcore")
        with pytest.raises(EngineError):
            base.replace(machines=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "nope"},
            {"algorithm": "nope"},
            {"machines": 0},
            {"engine": "gemini", "options": SympleOptions()},
            {"executor": "gpu"},
            {"workers": 0},
            {"mode": "eventual"},
            {"engine": "dgalois", "mode": "async"},
            {"mode": "async", "algorithm": "kmeans"},
            {"async_bucket_width": 2.0},  # only valid with mode="async"
            {"mode": "async", "async_bucket_width": 0.0},
            {"mode": "async", "async_bucket_width": -1.0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(EngineError):
            RunConfig(**kwargs)

    def test_faulted_requires_resumable_algorithm(self):
        with pytest.raises(UnsupportedAlgorithmError):
            RunConfig(algorithm="kmeans", faults=FaultPlan.dep_loss(0.1))
        with pytest.raises(UnsupportedAlgorithmError):
            RunConfig(
                algorithm="sampling", checkpointing=Checkpointing(interval=1)
            )

    def test_faulted_property(self):
        assert RunConfig(faults=FaultPlan.dep_loss(0.1)).faulted
        assert RunConfig(checkpointing=Checkpointing(interval=2)).faulted
        assert not RunConfig(faults=FaultPlan(seed=1)).faulted  # empty plan

    def test_checkpointing_validation(self):
        with pytest.raises(EngineError):
            Checkpointing(interval=-1)
        with pytest.raises(EngineError):
            Checkpointing(retention=0)

    def test_round_trip(self):
        config = RunConfig(
            engine="symple",
            algorithm="kcore",
            machines=8,
            seed=9,
            options=SympleOptions(degree_threshold=4),
            faults=FaultPlan.dep_loss(0.25, seed=3),
            checkpointing=Checkpointing(interval=2, retention=3),
            executor="thread",
            workers=2,
            kcore_k=3,
        )
        payload = config.to_dict()
        restored = RunConfig.from_dict(payload)
        assert restored.to_dict() == payload
        assert restored.options == config.options
        assert restored.checkpointing == config.checkpointing
        assert restored.faults.to_dict() == config.faults.to_dict()

    def test_round_trip_async_mode(self):
        config = RunConfig(
            algorithm="sssp", mode="async", async_bucket_width=2.5
        )
        payload = config.to_dict()
        assert payload["mode"] == "async"
        assert payload["async_bucket_width"] == 2.5
        restored = RunConfig.from_dict(payload)
        assert restored.mode == "async"
        assert restored.async_bucket_width == 2.5
        assert restored.to_dict() == payload

    def test_from_dict_accepts_pre_async_payloads(self):
        # payloads saved before the mode knobs existed must still load
        payload = RunConfig(algorithm="kcore", kcore_k=2).to_dict()
        del payload["mode"]
        del payload["async_bucket_width"]
        restored = RunConfig.from_dict(payload)
        assert restored.mode == "sync"
        assert restored.async_bucket_width is None

    def test_to_dict_serializes_executor_instance_as_kind(self):
        ex = ThreadPoolExecutor(2)
        try:
            config = RunConfig(executor=ex)
            assert config.to_dict()["executor"] == "thread"
        finally:
            ex.close()


class TestSession:
    def test_run_with_overrides(self, graph):
        with Session(graph, RunConfig(machines=4, bfs_roots=1)) as session:
            a = session.run()
            b = session.run(algorithm="kcore", kcore_k=2)
        assert a.algorithm == "bfs"
        assert b.algorithm == "kcore"
        assert a.num_machines == 4

    def test_run_many(self, graph):
        configs = [
            RunConfig(machines=4, bfs_roots=1, seed=s) for s in (1, 2)
        ]
        with Session(graph) as session:
            results = session.run_many(configs)
        assert len(results) == 2

    def test_partition_cache_reused(self, graph):
        with Session(graph, RunConfig(machines=4, bfs_roots=1)) as session:
            session.run()
            first = dict(session._partitions)
            session.run(algorithm="mis")
            assert session._partitions == first

    def test_closed_session_rejects_runs(self, graph):
        session = Session(graph)
        session.close()
        with pytest.raises(EngineError):
            session.run()

    def test_caller_owned_executor_not_closed(self, graph):
        ex = SerialExecutor()
        closes = []
        original_close = ex.close
        ex.close = lambda: (closes.append(True), original_close())
        config = RunConfig(machines=4, bfs_roots=1, executor=ex)
        with Session(graph, config) as session:
            session.run()
        # the session must not close an executor it did not create
        assert not closes
        ex.close()

    def test_digest_distinguishes_configs(self, graph):
        with Session(graph, RunConfig(machines=4, bfs_roots=1)) as session:
            assert session.run().digest() == session.run().digest()
            assert session.run().digest() != session.run(seed=5).digest()


class TestLegacySurfaceRemoved:
    """The PR-5-deprecated wrappers are gone, not just warning."""

    def test_run_algorithm_is_gone(self):
        import repro
        import repro.bench

        assert not hasattr(repro.bench, "run_algorithm")
        assert not hasattr(repro, "run_algorithm")
        with pytest.raises(ImportError):
            from repro.bench import run_algorithm  # noqa: F401

    def test_make_engine_rejects_extended_positionals(self, graph):
        partition = OutgoingEdgeCut().partition(graph, 4)
        with pytest.raises(TypeError):
            # old pile: options (and cost_model, obs) by position
            make_engine("symple", partition, 4, SympleOptions())

    def test_make_engine_rejects_options_for_non_symple(self, graph):
        with pytest.raises(EngineError, match="SympleGraph knob"):
            make_engine("gemini", graph, 4, options=SympleOptions())

    def test_make_engine_validates_machine_count(self, graph):
        with pytest.raises(EngineError):
            make_engine("symple", graph, 0)

    def test_removed_dep_loss_options_name_fault_plan(self):
        with pytest.raises(EngineError, match="FaultPlan.dep_loss"):
            SympleOptions(dep_loss_rate=0.1)


class TestSessionLifecycle:
    """PR 7 satellites: idempotent close + finalizer-backed cleanup."""

    def test_close_is_idempotent(self, graph):
        session = Session(graph)
        session.run(RunConfig(machines=4, bfs_roots=1))
        session.close()
        session.close()  # must not raise or double-free
        assert not session._finalizer.alive

    def test_close_releases_executors(self, graph):
        session = Session(graph)
        session.run(
            RunConfig(machines=4, bfs_roots=1, executor="thread", workers=2)
        )
        assert session._executors
        session.close()
        assert not session._executors

    def test_finalizer_runs_on_garbage_collection(self, graph):
        import gc

        closes = []
        session = Session(graph)
        ex = session._executor(RunConfig(machines=4, executor="thread",
                                         workers=2))
        original_close = ex.close
        ex.close = lambda: (closes.append(True), original_close())
        finalizer = session._finalizer
        del session, ex
        gc.collect()
        # an interrupted run (no explicit close) must not leak pools
        assert not finalizer.alive
        assert closes

    def test_exit_after_manual_close_is_safe(self, graph):
        with Session(graph) as session:
            session.run(RunConfig(machines=4, bfs_roots=1))
            session.close()
        # __exit__ called close() a second time; nothing raised


class TestSessionThreadSafety:
    """PR 7 satellite: concurrent Session.run from multiple threads."""

    def test_concurrent_runs_are_bit_identical(self, graph):
        import threading

        config = RunConfig(machines=4, bfs_roots=1)
        with Session(graph) as session:
            reference = session.run(config).digest()
            digests = [None] * 8
            errors = []

            def worker(i):
                try:
                    # alternate machine counts so the partition cache
                    # fills under contention, not just the run path
                    cfg = config if i % 2 == 0 else config.replace(machines=3)
                    digests[i] = (i % 2, session.run(cfg).digest())
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert None not in digests
            odd = session.run(config.replace(machines=3)).digest()
        assert {d for flavor, d in digests if flavor == 0} == {reference}
        assert {d for flavor, d in digests if flavor == 1} == {odd}
        # exactly one partition per (strategy, machines, graph version)
        # despite the race
        assert sorted(session._partitions) == [
            ("edgecut", 3, 0), ("edgecut", 4, 0),
        ]
