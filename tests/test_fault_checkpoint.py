"""CheckpointStore policy, isolation, and byte accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.state import StateStore
from repro.fault import CheckpointStore, snapshot_nbytes


def make_state(n: int = 16) -> StateStore:
    s = StateStore(n)
    s.add_array("values", np.int64, 1)
    s.add_array("flags", bool, False)
    s.add_scalar("k", 3)
    return s


class TestPolicy:
    def test_disabled_store_is_never_due(self):
        store = CheckpointStore(interval=0)
        assert not store.enabled
        assert not any(store.due(i) for i in range(10))

    def test_interval_schedule(self):
        store = CheckpointStore(interval=3)
        s = make_state()
        due = []
        for i in range(7):
            if store.due(i):
                store.save(i, s, {})
                due.append(i)
        assert due == [0, 3, 6]

    def test_not_due_at_or_before_last_saved(self):
        store = CheckpointStore(interval=2)
        s = make_state()
        store.save(4, s, {})
        # a recovery replay re-enters supersteps <= 4
        assert not store.due(4) and not store.due(2)
        assert store.due(6)

    def test_retention_rolls_window(self):
        store = CheckpointStore(interval=1, retention=2)
        s = make_state()
        for i in range(5):
            store.save(i, s, {})
        assert len(store) == 2
        assert store.latest().superstep == 4
        assert store.checkpoints_taken == 5  # accounting is cumulative

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CheckpointStore(interval=-1)
        with pytest.raises(ValueError):
            CheckpointStore(interval=1, retention=0)


class TestRestoreIsolation:
    def test_restore_round_trips_state_and_ctx(self):
        store = CheckpointStore(interval=1)
        s = make_state()
        s.values[:] = 7
        store.save(2, s, {"rounds": 2, "history": ["a"]})

        s.values[:] = -1
        s.flags[:] = True
        s.k = 99
        restored = store.restore_latest(s)
        assert restored is not None
        checkpoint, ctx = restored
        assert checkpoint.superstep == 2
        assert ctx == {"rounds": 2, "history": ["a"]}
        assert np.all(s.values == 7) and not s.flags.any() and s.k == 3

    def test_replay_cannot_corrupt_snapshot(self):
        store = CheckpointStore(interval=1)
        s = make_state()
        store.save(0, s, {"trace": []})

        # mutate everything the first restore handed back...
        _, ctx = store.restore_latest(s)
        ctx["trace"].append("poison")
        s.values[:] = 123

        # ...and the second restore is untouched by it.
        _, ctx2 = store.restore_latest(s)
        assert ctx2 == {"trace": []}
        assert np.all(s.values == 1)

    def test_save_copies_live_arrays(self):
        store = CheckpointStore(interval=1)
        s = make_state()
        checkpoint = store.save(0, s, {})
        s.values[:] = 55
        assert np.all(checkpoint.state["values"] == 1)

    def test_restore_latest_empty(self):
        store = CheckpointStore(interval=2)
        assert store.restore_latest(make_state()) is None


class TestAccounting:
    def test_snapshot_nbytes(self):
        s = make_state(8)
        snap = s.snapshot()
        expected = 8 * 8 + 8 * 1 + 8  # int64 + bool arrays + scalar
        assert snapshot_nbytes(snap) == expected

    def test_store_byte_counters(self):
        store = CheckpointStore(interval=1)
        s = make_state(8)
        per = snapshot_nbytes(s.snapshot())
        store.save(0, s, {})
        store.save(1, s, {})
        store.restore_latest(s)
        assert store.bytes_written == 2 * per
        assert store.bytes_restored == per
        assert store.restores == 1

    def test_extras_counted_and_copied(self):
        store = CheckpointStore(interval=1)
        s = make_state(8)
        extra = np.arange(4, dtype=np.int64)
        checkpoint = store.save(0, s, {}, extras={"bitmap": extra})
        extra[:] = 0
        assert np.all(checkpoint.extras["bitmap"] == np.arange(4))
        assert checkpoint.nbytes == snapshot_nbytes(s.snapshot()) + 32
