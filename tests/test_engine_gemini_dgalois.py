"""Gemini and D-Galois engine specifics."""

import numpy as np
import pytest

from repro.engine import DGaloisEngine, GeminiEngine, make_engine
from repro.graph import rmat, star_graph, to_undirected
from repro.partition import CartesianVertexCut, OutgoingEdgeCut


def break_signal(v, nbrs, s, emit):
    for u in nbrs:
        if s.flag[u]:
            emit(u)
            break


def first_wins_slot(v, value, s):
    if s.result[v] >= 0:
        return False
    s.result[v] = value
    return True


@pytest.fixture(scope="module")
def graph():
    return to_undirected(rmat(scale=8, edge_factor=6, seed=61))


def run_pull(engine, graph, sync_bytes=4):
    s = engine.new_state()
    s.add_array("flag", bool, True)
    s.add_array("result", np.int64, -1)
    active = graph.in_degrees() > 0
    result = engine.pull(
        break_signal, first_wins_slot, s, active, sync_bytes=sync_bytes
    )
    return result, s


class TestGemini:
    def test_single_step_iterations(self, graph):
        engine = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        run_pull(engine, graph)
        assert len(engine.counters.iterations) == 1
        assert len(engine.counters.iterations[0].steps) == 1

    def test_no_dependency_traffic_ever(self, graph):
        engine = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        run_pull(engine, graph)
        assert engine.counters.dep_bytes == 0

    def test_update_messages_mirror_to_master_only(self, graph):
        engine = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        run_pull(engine, graph, sync_bytes=0)
        traffic = engine.network.traffic["update"]
        part = engine.partition
        for src in range(4):
            for dst in range(4):
                if traffic[src, dst] > 0:
                    # some vertex mastered at dst has in-edges at src
                    masters = part.masters_of(dst)
                    assert part._has_in[src, masters].any()

    def test_slot_applied_once_per_emission(self, graph):
        applications = []

        def counting_slot(v, value, s):
            applications.append(v)
            return False

        engine = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        s = engine.new_state()
        s.add_array("flag", bool, True)
        active = graph.in_degrees() > 0
        result = engine.pull(break_signal, counting_slot, s, active)
        assert len(applications) == result.updates_applied

    def test_bsp_visibility(self, graph):
        """Slot writes must not be visible to signals in the same pull."""
        engine = GeminiEngine(OutgoingEdgeCut().partition(graph, 2))
        s = engine.new_state()
        s.add_array("flag", bool, True)
        s.add_array("result", np.int64, -1)

        def poisoning_slot(v, value, s):
            s.flag[:] = False  # would change other signals if visible
            s.result[v] = value
            return True

        active = graph.in_degrees() > 0
        result = engine.pull(break_signal, poisoning_slot, s, active)
        # every active vertex with in-edges must have emitted (flag was
        # True for everyone during the scan phase)
        assert result.updates_applied >= np.count_nonzero(active)


class TestDGalois:
    def test_sync_goes_both_directions(self, graph):
        """Gluon broadcast: holders of in- OR out-edges receive state."""
        g = star_graph(30)
        part_d = CartesianVertexCut().partition(g, 4)
        part_g = OutgoingEdgeCut().partition(g, 4)
        dgalois = DGaloisEngine(part_d)
        gemini = GeminiEngine(part_g)
        run_pull(dgalois, g, sync_bytes=8)
        run_pull(gemini, g, sync_bytes=8)
        # not directly comparable partitions, but dgalois must count
        # sync traffic at all
        assert dgalois.counters.sync_bytes > 0

    def test_same_results_as_gemini(self, graph):
        gemini = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        dgalois = DGaloisEngine(CartesianVertexCut().partition(graph, 4))
        _, s1 = run_pull(gemini, graph)
        _, s2 = run_pull(dgalois, graph)
        # first-wins slot is order-sensitive in *value*, but here every
        # neighbor has flag=True so the chosen parent may differ; the
        # set of resolved vertices must match
        assert np.array_equal(s1.result >= 0, s2.result >= 0)

    def test_edges_traversed_counts_local_breaks(self, graph):
        dgalois = DGaloisEngine(CartesianVertexCut().partition(graph, 4))
        result, _ = run_pull(dgalois, graph)
        assert result.edges_traversed > 0
        assert result.edges_traversed == dgalois.counters.edges_traversed

    def test_default_cost_heavier(self, graph):
        gemini = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        dgalois = DGaloisEngine(CartesianVertexCut().partition(graph, 4))
        run_pull(gemini, graph)
        run_pull(dgalois, graph)
        assert dgalois.execution_time() > gemini.execution_time()
