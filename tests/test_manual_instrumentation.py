"""Manual analysis and instrumentation (paper Section 4.3).

"SympleGraph also exposes communication primitives to the programmers
so that they can still leverage the optimizations when the code is not
amenable to static analysis."  A hand-built :class:`AnalyzedSignal` is
accepted by every engine exactly like an analyzer-produced one.
"""

import numpy as np
import pytest

from repro.analysis import AnalyzedSignal, DependencyInfo
from repro.engine import GeminiEngine, SympleGraphEngine, SympleOptions
from repro.graph import rmat, to_undirected
from repro.partition import OutgoingEdgeCut


def build_manual_signal():
    """A UDF the analyzer can't see through (dispatch via a dict), so
    the author instruments it by hand with the dep primitives."""

    predicates = {"hot": lambda s, u: s.hot[u], "cold": lambda s, u: not s.hot[u]}

    def original(v, nbrs, s, emit):
        check = predicates[s.mode]
        for u in nbrs:
            if check(s, u):
                emit(u)
                break

    def instrumented(v, nbrs, s, emit, dep):
        if dep.skip:  # receive_dep
            return
        check = predicates[s.mode]
        for u in nbrs:
            if check(s, u):
                emit(u)
                dep.mark_break()  # emit_dep
                break

    info = DependencyInfo(
        has_neighbor_loop=True,
        has_break=True,
        carried_vars=(),
        loop_var="u",
        nbrs_param="nbrs",
    )
    return AnalyzedSignal(
        original=original, info=info, instrumented=instrumented
    )


@pytest.fixture(scope="module")
def graph():
    return to_undirected(rmat(scale=7, edge_factor=8, seed=131))


def run(engine, graph, signal):
    s = engine.new_state()
    rng = np.random.default_rng(7)
    s.set("hot", rng.random(graph.num_vertices) < 0.3)
    s.add_scalar("mode", "hot")
    s.add_array("pick", np.int64, -1)

    def slot(v, value, st):
        if st.pick[v] < 0:
            st.pick[v] = value
            return True
        return False

    active = graph.in_degrees() > 0
    engine.pull(signal, slot, s, active, sync_bytes=0)
    return s.pick


class TestManualSignal:
    def test_runs_on_gemini(self, graph):
        engine = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        pick = run(engine, graph, build_manual_signal())
        assert (pick >= 0).any()

    def test_runs_on_symple_with_dependency(self, graph):
        engine = SympleGraphEngine(
            OutgoingEdgeCut().partition(graph, 4),
            options=SympleOptions(degree_threshold=0),
        )
        pick = run(engine, graph, build_manual_signal())
        assert (pick >= 0).any()
        assert engine.counters.dep_bytes > 0

    def test_same_results_both_engines(self, graph):
        gem = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        sym = SympleGraphEngine(
            OutgoingEdgeCut().partition(graph, 4),
            options=SympleOptions(degree_threshold=0),
        )
        signal = build_manual_signal()
        picked_gem = run(gem, graph, signal) >= 0
        picked_sym = run(sym, graph, signal) >= 0
        assert np.array_equal(picked_gem, picked_sym)

    def test_symple_saves_edges(self, graph):
        gem = GeminiEngine(OutgoingEdgeCut().partition(graph, 4))
        sym = SympleGraphEngine(
            OutgoingEdgeCut().partition(graph, 4),
            options=SympleOptions(degree_threshold=0),
        )
        signal = build_manual_signal()
        run(gem, graph, signal)
        run(sym, graph, signal)
        assert sym.counters.edges_traversed < gem.counters.edges_traversed

    def test_analyzer_would_reject_this_udf(self):
        """The dispatch-dict UDF defeats... actually the analyzer sees a
        plain call in the loop and finds the break, but cannot know the
        carried semantics of `check`; manual instrumentation is about
        trust, and for UDFs defined dynamically (no source), it is the
        only path."""
        from repro.analysis import analyze_signal
        from repro.errors import AnalysisError

        dynamic = eval("lambda v, nbrs, s, emit: None")
        with pytest.raises(AnalysisError):
            analyze_signal(dynamic)
